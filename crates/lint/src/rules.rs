//! The five rule passes (R1–R5) over a lexed + analyzed source file.
//!
//! Every pass is token-level and heuristic — precision is documented per
//! rule, and each exemption the heuristics cannot prove must be written as a
//! `// dwv-lint: allow(<rule>) -- <reason>` annotation so it stays greppable.

use crate::config::{classify, FileClass, ZoneConfig};
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::parser::{parse, Parsed};
use crate::report::{Finding, Report, Rule, Suppression};
use crate::structure::{analyze, suppression, Structure};
use std::collections::{BTreeMap, BTreeSet};

/// Non-directed `std` float methods forbidden in soundness zones (R1). The
/// directed / exact operations (`min`, `max`, `abs`, `next_up`, `next_down`,
/// `to_bits`, comparisons) are not listed and remain allowed.
const FLOAT_METHOD_DENYLIST: &[&str] = &[
    "sqrt",
    "exp",
    "exp2",
    "exp_m1",
    "ln",
    "ln_1p",
    "log",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "asinh",
    "acosh",
    "atanh",
    "powf",
    "powi",
    "mul_add",
    "hypot",
    "cbrt",
    "recip",
    "rem_euclid",
    "div_euclid",
    "to_degrees",
    "to_radians",
    "round",
    "floor",
    "ceil",
    "trunc",
    "fract",
];

/// Binary arithmetic operators checked by R1.
const ARITH_OPS: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

/// Integer-typed cast targets: `x as usize * y` is index math, not float math.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Panicking macros checked by R2.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Allocation patterns banned in the R6 no-alloc zone: `Qual::method` pairs.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];

/// Allocation method calls banned in the R6 no-alloc zone.
const ALLOC_METHODS: &[&str] = &["push", "clone", "to_vec", "to_owned", "collect"];

/// Methods whose return judges to the receiver's head category: `clone`
/// copies the value, and the iterator adaptors preserve the *element*
/// category (which is all the head judgment tracks — `head_ty` strips
/// containers, so `Vec<Interval>` and `Interval` already judge the same).
const IDENTITY_METHODS: &[&str] = &[
    "clone",
    "to_owned",
    "copied",
    "cloned",
    "iter",
    "iter_mut",
    "into_iter",
    "rev",
    "as_slice",
    "as_mut_slice",
];

/// Iterator adaptors whose closure parameter is the receiver's element:
/// `xs.map(|x| …)` binds `x` at the element category of `xs`.
const ELEM_CLOSURE_METHODS: &[&str] = &[
    "map",
    "for_each",
    "filter",
    "filter_map",
    "find",
    "any",
    "all",
    "position",
    "retain",
];

// ---------------------------------------------------------------------------
// Type judgment
// ---------------------------------------------------------------------------

/// The coarse type category the operand-judgment lattice works over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A machine integer (`usize`, `u32`, …): its arithmetic is exact.
    Int,
    /// A raw float (`f64`/`f32`): its arithmetic needs directed rounding.
    Float,
    /// A registered enclosure type (`Interval`, `Polynomial`, …): its
    /// operators are sound overloads.
    Enclosure,
    /// A known non-arithmetic type.
    Other,
    /// No judgment.
    Unknown,
}

/// The coarse head category of a type's rendered text: containers
/// (`Vec<_>`, `Option<_>`, slices, references) are stripped so the element
/// category shows through — exactly what indexing/iteration judgments need.
#[must_use]
pub fn head_ty(ty: &str, zones: &ZoneConfig) -> Ty {
    let mut s = ty.trim();
    loop {
        let before = s;
        s = s.trim_start_matches(['&', '*', '[', '(', ' ']);
        for kw in ["mut ", "mut&", "dyn ", "const ", "impl "] {
            if let Some(r) = s.strip_prefix(kw) {
                s = r;
            }
        }
        for c in ["Vec<", "Option<", "Result<", "Box<", "Rc<", "Arc<", "Cow<"] {
            if let Some(r) = s.strip_prefix(c) {
                s = r;
            }
        }
        if s == before {
            break;
        }
    }
    let word: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if INT_TYPES.contains(&word.as_str()) {
        Ty::Int
    } else if word == "f64" || word == "f32" {
        Ty::Float
    } else if zones.is_enclosure_type(&word) {
        Ty::Enclosure
    } else if word.is_empty() {
        Ty::Unknown
    } else {
        Ty::Other
    }
}

/// The cross-file signature index: method/function return categories and
/// struct-field categories by *name*, built deterministically in sorted
/// file order. A name bound to conflicting categories across the workspace
/// degrades to [`Ty::Unknown`] (sound: no discharge happens through it).
#[derive(Debug, Default, Clone)]
pub struct SigIndex {
    /// fn/method name → return category.
    pub returns: BTreeMap<String, Ty>,
    /// struct field name → field category.
    pub fields: BTreeMap<String, Ty>,
    /// Every fn/method name defined anywhere in the workspace.
    pub fn_names: BTreeSet<String>,
}

impl SigIndex {
    /// Folds one parsed file into the index.
    pub fn absorb(&mut self, parsed: &Parsed, zones: &ZoneConfig) {
        let put = |map: &mut BTreeMap<String, Ty>, name: &str, ty: Ty| {
            map.entry(name.to_string())
                .and_modify(|t| {
                    if *t != ty {
                        *t = Ty::Unknown;
                    }
                })
                .or_insert(ty);
        };
        for f in &parsed.fns {
            self.fn_names.insert(f.name.clone());
            put(&mut self.returns, &f.name, head_ty(&f.ret_ty, zones));
        }
        for s in &parsed.structs {
            for (fname, fty) in &s.fields {
                put(&mut self.fields, fname, head_ty(fty, zones));
            }
        }
    }

    /// Builds the index over a set of parsed files (in the given order).
    #[must_use]
    pub fn build<'a>(parsed: impl IntoIterator<Item = &'a Parsed>, zones: &ZoneConfig) -> Self {
        let mut idx = Self::default();
        for p in parsed {
            idx.absorb(p, zones);
        }
        idx
    }

    fn ret_of(&self, name: &str) -> Ty {
        // Builtins the workspace cannot shadow usefully.
        match name {
            "len" | "count" | "capacity" | "to_bits" => Ty::Int,
            "from_bits" => Ty::Float,
            _ => *self.returns.get(name).unwrap_or(&Ty::Unknown),
        }
    }

    fn field_of(&self, name: &str) -> Ty {
        *self.fields.get(name).unwrap_or(&Ty::Unknown)
    }
}

/// Operand type judgment over one function body: per-variable environment
/// (parameters, `let` bindings, loop variables) plus the workspace
/// [`SigIndex`] for method returns and field types.
struct Judge<'a> {
    toks: &'a [Token],
    type_pos: &'a [bool],
    env: BTreeMap<String, Ty>,
    sigs: &'a SigIndex,
    zones: &'a ZoneConfig,
}

impl<'a> Judge<'a> {
    /// Builds the judgment environment for the function whose body spans
    /// `[start, end]`.
    fn for_fn(
        lexed: &'a Lexed,
        parsed: &'a Parsed,
        f: &crate::parser::FnDef,
        sigs: &'a SigIndex,
        zones: &'a ZoneConfig,
    ) -> Self {
        let toks = &lexed.tokens;
        let mut env = BTreeMap::new();
        for (name, ty) in &f.params {
            if name == "self" {
                // `self` judges as the surrounding impl's self type.
                let owner = f.owner.as_deref().unwrap_or("");
                env.insert(name.clone(), head_ty(owner, zones));
            } else {
                env.insert(name.clone(), head_ty(ty, zones));
            }
        }
        let mut j = Self {
            toks,
            type_pos: &parsed.type_pos,
            env,
            sigs,
            zones,
        };
        if let Some((start, end)) = f.body {
            j.scan_bindings(start, end);
        }
        j
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Records `let` bindings and `for` loop variables in `[start, end]`.
    fn scan_bindings(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i <= end.min(self.toks.len().saturating_sub(1)) {
            match self.text(i) {
                "let" => {
                    // `let [mut] name [: Ty] = expr;` — single-ident
                    // patterns only; destructuring stays Unknown.
                    let mut j = i + 1;
                    if self.text(j) == "mut" {
                        j += 1;
                    }
                    if self.kind(j) != Some(TokKind::Ident) || self.text(j) == "_" {
                        i += 1;
                        continue;
                    }
                    let name = self.text(j).to_string();
                    let after = j + 1;
                    let ty = if self.text(after) == ":" {
                        // Ascription: tokens are already marked type-pos;
                        // render them and take the head.
                        let mut k = after + 1;
                        let mut txt = String::new();
                        while k < self.toks.len() && self.type_pos.get(k).copied().unwrap_or(false)
                        {
                            txt.push_str(self.text(k));
                            k += 1;
                        }
                        head_ty(&txt, self.zones)
                    } else if self.text(after) == "=" {
                        self.expr_ty(after + 1)
                    } else {
                        Ty::Unknown
                    };
                    if ty != Ty::Unknown {
                        self.env.insert(name, ty);
                    }
                    i = j + 1;
                }
                "for" => {
                    // `for name in lo..hi` / `for name in iterable`.
                    let j = i + 1;
                    if self.kind(j) == Some(TokKind::Ident)
                        && self.text(j) != "_"
                        && self.text(j + 1) == "in"
                    {
                        let name = self.text(j).to_string();
                        let ty = self.range_or_iter_ty(j + 2);
                        if ty != Ty::Unknown {
                            self.env.insert(name, ty);
                        }
                    } else if self.text(j) == "(" {
                        // `for (a, b) in xs.iter().enumerate()` / `….zip(ys)`.
                        self.scan_tuple_loop(j);
                    }
                    i += 1;
                }
                "|" => {
                    // `xs.map(|x| …)` / `xs.iter().zip(ys).map(|(a, b)| …)`:
                    // closure parameters bound at the receiver's element
                    // category (tuple patterns only after `.zip`).
                    self.scan_closure_params(i);
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Parses a tuple pattern starting at the `(` at `open`: each top-level
    /// slot is `Some(name)` for a plain `[&][mut] name` binding and `None`
    /// for anything nested. Returns the slots and the index just past the
    /// closing `)`.
    fn tuple_pattern(&self, open: usize) -> (Vec<Option<String>>, usize) {
        let mut slots: Vec<Option<String>> = Vec::new();
        let mut cur: Option<String> = None;
        let mut simple = true;
        let mut depth = 1i32;
        let mut k = open + 1;
        while k < self.toks.len() {
            match self.text(k) {
                "(" | "[" => {
                    depth += 1;
                    simple = false;
                }
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => {
                    slots.push(if simple { cur.take() } else { None });
                    cur = None;
                    simple = true;
                }
                "&" | "mut" | "_" => {}
                _ => {
                    if self.kind(k) == Some(TokKind::Ident) {
                        if cur.is_some() {
                            simple = false;
                        }
                        cur = Some(self.text(k).to_string());
                    } else {
                        simple = false;
                    }
                }
            }
            k += 1;
        }
        slots.push(if simple { cur } else { None });
        (slots, k + 1)
    }

    /// Element categories of an `<chain>.enumerate()` / `<chain>.zip(arg)`
    /// iterator expression spanning `[start, stop)` — the two shapes whose
    /// tuple items the pattern judgments can name.
    fn pair_elem_tys(&self, start: usize, stop: usize) -> Option<(Ty, Ty)> {
        // The last top-level `.seg(` decides the shape.
        let mut depth = 0i32;
        let mut last: Option<(usize, usize)> = None;
        let mut k = start;
        while k < stop {
            match self.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "." if depth == 0
                    && self.kind(k + 1) == Some(TokKind::Ident)
                    && self.text(k + 2) == "(" =>
                {
                    last = Some((k, k + 1));
                }
                _ => {}
            }
            k += 1;
        }
        let (dot, seg) = last?;
        match self.text(seg) {
            "enumerate" => Some((Ty::Int, self.span_ty(start, dot))),
            "zip" => {
                let arg_open = seg + 1;
                let mut depth = 1i32;
                let mut j = arg_open + 1;
                while j < stop && depth > 0 {
                    match self.text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                    j += 1;
                }
                Some((self.span_ty(start, dot), self.span_ty(arg_open + 1, j)))
            }
            _ => None,
        }
    }

    /// Binds `for (a, b) in xs.iter().enumerate()` / `….zip(ys)` tuple
    /// loop variables; `open` is the pattern's `(`.
    fn scan_tuple_loop(&mut self, open: usize) {
        let (slots, after) = self.tuple_pattern(open);
        if slots.len() != 2 || self.text(after) != "in" {
            return;
        }
        let start = after + 1;
        let mut depth = 0i32;
        let mut stop = start;
        while stop < self.toks.len() {
            match self.text(stop) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            stop += 1;
        }
        let Some((t0, t1)) = self.pair_elem_tys(start, stop) else {
            return;
        };
        for (slot, ty) in slots.iter().zip([t0, t1]) {
            if let Some(name) = slot {
                if ty != Ty::Unknown {
                    self.env.insert(name.clone(), ty);
                }
            }
        }
    }

    /// Binds closure parameters of the iterator adaptors: a single
    /// `[&][mut] name` is the receiver's element category; a two-slot
    /// tuple pattern is resolved when the receiver chain ends in `.zip`.
    /// `bar` is a candidate opening `|`.
    fn scan_closure_params(&mut self, bar: usize) {
        if bar < 3 || self.text(bar - 1) != "(" {
            return;
        }
        let seg = bar - 2;
        if self.kind(seg) != Some(TokKind::Ident)
            || !ELEM_CLOSURE_METHODS.contains(&self.text(seg))
            || self.text(seg - 1) != "."
        {
            return;
        }
        let dot = seg - 1;
        let mut k = bar + 1;
        while matches!(self.text(k), "&" | "mut") {
            k += 1;
        }
        if self.kind(k) == Some(TokKind::Ident) && self.text(k) != "_" && self.text(k + 1) == "|" {
            let elem = self.left_operand(dot);
            if elem != Ty::Unknown {
                self.env.insert(self.text(k).to_string(), elem);
            }
            return;
        }
        if self.text(k) == "(" {
            let (slots, after) = self.tuple_pattern(k);
            if slots.len() == 2 && self.text(after) == "|" {
                if let Some((t0, t1)) = self.zip_receiver_tys(dot) {
                    for (slot, ty) in slots.iter().zip([t0, t1]) {
                        if let Some(name) = slot {
                            if ty != Ty::Unknown {
                                self.env.insert(name.clone(), ty);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The pair element categories of a receiver chain ending in
    /// `.zip(arg)` just before the adaptor dot at `dot`.
    fn zip_receiver_tys(&self, dot: usize) -> Option<(Ty, Ty)> {
        if dot == 0 || self.text(dot - 1) != ")" {
            return None;
        }
        let open = match_back(self.toks, dot - 1, "(", ")")?;
        if open < 2 || self.text(open - 1) != "zip" || self.text(open - 2) != "." {
            return None;
        }
        let first = self.left_operand(open - 2);
        let second = self.span_ty(open + 1, dot - 1);
        Some((first, second))
    }

    /// The element type of a `for … in <here>` expression: integer ranges
    /// give `Int`; iterating a judged collection gives its head category.
    fn range_or_iter_ty(&self, start: usize) -> Ty {
        // Range form: `<int-ish> ..` within the next few tokens.
        let first = self.expr_ty(start);
        let mut k = start;
        let mut depth = 0i32;
        while k < self.toks.len() {
            match self.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ".." | "..=" if depth == 0 => {
                    return if first == Ty::Int || self.kind(start) == Some(TokKind::IntLit) {
                        Ty::Int
                    } else {
                        Ty::Unknown
                    };
                }
                "{" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        // Iterator form: judged collection head category = element category
        // (containers are stripped by `head_ty`-style judgment).
        first
    }

    /// Judges the expression starting at token `start` (up to the end of
    /// its statement) by its *final* chain segment.
    fn expr_ty(&self, start: usize) -> Ty {
        // Find the statement end at depth 0.
        let mut end = start;
        let mut depth = 0i32;
        while end < self.toks.len() {
            match self.text(end) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "," if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if end == start {
            return Ty::Unknown;
        }
        self.span_ty(start, end)
    }

    /// Judges the expression spanning exactly `[start, end)` by its last
    /// top-level token.
    fn span_ty(&self, start: usize, end: usize) -> Ty {
        let mut last = end.saturating_sub(1);
        // Trailing `?` / `as T` cast.
        while last > start && self.text(last) == "?" {
            last -= 1;
        }
        if self.type_pos.get(last).copied().unwrap_or(false) {
            // `… as T`: the cast type decides.
            return match self.kind(last) {
                Some(TokKind::Ident) => head_ty(self.text(last), self.zones),
                _ => Ty::Unknown,
            };
        }
        match self.kind(last) {
            Some(TokKind::IntLit) => Ty::Int,
            Some(TokKind::FloatLit) => Ty::Float,
            Some(TokKind::Ident) => {
                let name = self.text(last);
                if last == start {
                    return self.ident_ty(name);
                }
                match self.text(last - 1) {
                    "." => self.sigs.field_of(name),
                    "::" => self.path_end_ty(last),
                    _ => self.ident_ty(name),
                }
            }
            Some(TokKind::Punct) => match self.text(last) {
                ")" => self.call_result_ty(last),
                "]" => self.index_result_ty(last),
                _ => Ty::Unknown,
            },
            _ => Ty::Unknown,
        }
    }

    /// Judges a plain identifier from the environment.
    fn ident_ty(&self, name: &str) -> Ty {
        *self.env.get(name).unwrap_or(&Ty::Unknown)
    }

    /// Judges `Qual::name` at the final path segment `last`.
    fn path_end_ty(&self, last: usize) -> Ty {
        let name = self.text(last);
        if last >= 2 && self.kind(last - 2) == Some(TokKind::Ident) {
            let qual = self.text(last - 2);
            if INT_TYPES.contains(&qual) {
                return Ty::Int;
            }
            if qual == "f64" || qual == "f32" {
                return Ty::Float;
            }
            if self.zones.is_enclosure_type(qual) {
                return Ty::Enclosure;
            }
        }
        self.sigs.ret_of(name)
    }

    /// Judges a call whose closing `)` is at `close`.
    fn call_result_ty(&self, close: usize) -> Ty {
        let open = match_back(self.toks, close, "(", ")");
        let Some(open) = open else { return Ty::Unknown };
        if open == 0 {
            return Ty::Unknown;
        }
        let callee = open - 1;
        if self.kind(callee) != Some(TokKind::Ident) {
            // Grouping parens: the interior expression decides.
            return self.span_ty(open + 1, close);
        }
        let name = self.text(callee);
        if is_stmt_keyword(name) {
            return Ty::Unknown;
        }
        if IDENTITY_METHODS.contains(&name) && callee >= 1 && self.text(callee - 1) == "." {
            // `x.clone()` / `xs.iter()`: the receiver's category.
            return self.left_operand(callee - 1);
        }
        if callee >= 1 && self.text(callee - 1) == "::" {
            // `Qual::ctor(...)`: an enclosure constructor, or a qualified fn.
            if callee >= 2 && self.kind(callee - 2) == Some(TokKind::Ident) {
                let qual = self.text(callee - 2);
                if self.zones.is_enclosure_type(qual) {
                    return Ty::Enclosure;
                }
                if (qual == "f64" || qual == "f32") && name != "to_bits" {
                    return Ty::Float;
                }
                if INT_TYPES.contains(&qual) {
                    return Ty::Int;
                }
            }
        }
        self.sigs.ret_of(name)
    }

    /// Judges an index expression whose closing `]` is at `close`: the
    /// element category of the indexed collection.
    fn index_result_ty(&self, close: usize) -> Ty {
        let open = match_back(self.toks, close, "[", "]");
        let Some(open) = open else { return Ty::Unknown };
        if open == 0 {
            return Ty::Unknown;
        }
        if open >= 2 && self.text(open - 1) == "!" && self.text(open - 2) == "vec" {
            // `vec![elem; n]` / `vec![a, …]`: the first element decides.
            let mut depth = 1i32;
            let mut j = open + 1;
            while j < close {
                match self.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" | "," if depth == 1 => break,
                    _ => {}
                }
                j += 1;
            }
            return self.span_ty(open + 1, j);
        }
        match self.kind(open - 1) {
            Some(TokKind::Ident) => {
                let name = self.text(open - 1);
                if open >= 2 && self.text(open - 2) == "." {
                    self.sigs.field_of(name)
                } else {
                    self.ident_ty(name)
                }
            }
            _ => Ty::Unknown,
        }
    }

    /// Judges the operand to the *right* of the operator at `op`.
    fn right_operand(&self, op: usize) -> Ty {
        let mut i = op + 1;
        while matches!(self.text(i), "-" | "!" | "&" | "*" | "mut") {
            i += 1;
        }
        match self.kind(i) {
            Some(TokKind::IntLit) => Ty::Int,
            Some(TokKind::FloatLit) => Ty::Float,
            Some(TokKind::Ident) => {
                let name = self.text(i);
                if self.text(i + 1) == "::" {
                    if INT_TYPES.contains(&name) {
                        return Ty::Int;
                    }
                    if name == "f64" || name == "f32" {
                        return Ty::Float;
                    }
                    if self.zones.is_enclosure_type(name) {
                        return Ty::Enclosure;
                    }
                    // Module path: judge the final segment.
                    let mut j = i;
                    while self.text(j + 1) == "::" && self.kind(j + 2) == Some(TokKind::Ident) {
                        j += 2;
                    }
                    return if self.text(j + 1) == "(" {
                        self.sigs.ret_of(self.text(j))
                    } else {
                        Ty::Unknown
                    };
                }
                if self.text(i + 1) == "." {
                    return self.chain_ty(i);
                }
                if self.text(i + 1) == "(" {
                    return self.sigs.ret_of(name);
                }
                if self.text(i + 1) == "[" {
                    return self.ident_ty(name);
                }
                self.ident_ty(name)
            }
            _ => Ty::Unknown,
        }
    }

    /// Judges a `base.seg1.seg2(…)…` chain starting at the base ident at
    /// `start`: the last segment's category wins.
    fn chain_ty(&self, start: usize) -> Ty {
        let base = self.text(start);
        let mut cur = self.ident_ty(base);
        let mut i = start;
        loop {
            // Skip an index suffix.
            if self.text(i + 1) == "[" {
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < self.toks.len() {
                    match self.text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            if self.text(i + 1) != "." || self.kind(i + 2) != Some(TokKind::Ident) {
                break;
            }
            let seg = i + 2;
            let name = self.text(seg);
            if self.text(seg + 1) == "(" {
                if !IDENTITY_METHODS.contains(&name) {
                    cur = self.sigs.ret_of(name);
                }
                let mut depth = 0i32;
                let mut j = seg + 1;
                while j < self.toks.len() {
                    match self.text(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            } else {
                cur = self.sigs.field_of(name);
                i = seg;
            }
        }
        cur
    }

    /// Judges the operand to the *left* of the operator at `op`.
    fn left_operand(&self, op: usize) -> Ty {
        if op == 0 {
            return Ty::Unknown;
        }
        let i = op - 1;
        if self.type_pos.get(i).copied().unwrap_or(false) {
            // `x as T <op> …`: the cast type decides.
            return match self.kind(i) {
                Some(TokKind::Ident) => head_ty(self.text(i), self.zones),
                _ => Ty::Unknown,
            };
        }
        match self.kind(i) {
            Some(TokKind::IntLit) => Ty::Int,
            Some(TokKind::FloatLit) => Ty::Float,
            Some(TokKind::Ident) => {
                let name = self.text(i);
                if i >= 1 && self.text(i - 1) == "." {
                    return self.sigs.field_of(name);
                }
                if i >= 1 && self.text(i - 1) == "::" {
                    return self.path_end_ty(i);
                }
                self.ident_ty(name)
            }
            Some(TokKind::Punct) => match self.text(i) {
                ")" => self.call_result_ty(i),
                "]" => self.index_result_ty(i),
                _ => Ty::Unknown,
            },
            _ => Ty::Unknown,
        }
    }
}

/// Finds the opener matching the closer at `close`, scanning backwards.
fn match_back(toks: &[Token], close: usize, open_t: &str, close_t: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        let t = toks.get(i)?.text.as_str();
        if t == close_t {
            depth += 1;
        } else if t == open_t {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}

/// The dotted receiver path ending at the `.` at `dot` (`ws.dom_ext.push`
/// → `"ws.dom_ext"`), or `None` when any segment is not a plain identifier
/// (calls and index expressions stay unproven).
fn receiver_text(toks: &[Token], dot: usize) -> Option<String> {
    let mut parts: Vec<&str> = Vec::new();
    let mut k = dot;
    while k >= 1 && toks[k - 1].kind == TokKind::Ident {
        parts.push(toks[k - 1].text.as_str());
        if k >= 2 && toks[k - 2].text == "." {
            k -= 2;
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Statement keywords that look like callees when followed by `(`.
fn is_stmt_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while" | "match" | "for" | "return" | "loop" | "else" | "in"
    )
}

// ---------------------------------------------------------------------------
// Per-file facts
// ---------------------------------------------------------------------------

/// One panic seed inside a function body.
#[derive(Debug, Clone)]
pub struct Seed {
    /// 1-based line of the seed.
    pub line: u32,
    /// What the seed is (`` `.unwrap()` ``, `` `panic!` ``, …).
    pub what: String,
}

/// One call edge out of a function (unresolved — the call graph resolves).
#[derive(Debug, Clone)]
pub struct CallFact {
    /// Called name (method or last path segment).
    pub name: String,
    /// Qualifier before `::`, if any.
    pub qual: Option<String>,
    /// Whether the call is a method call.
    pub is_method: bool,
    /// 1-based line of the call site.
    pub line: u32,
}

/// Interprocedural facts about one function.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type name.
    pub owner: Option<String>,
    /// Whether the function is `pub`.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the declared return head category is raw float.
    pub ret_float: bool,
    /// Whether the body performs undischarged raw float arithmetic or
    /// calls a denylisted float method (taint producer candidate).
    pub raw_float: bool,
    /// Unexcused panic seeds in the body.
    pub seeds: Vec<Seed>,
    /// Outgoing calls.
    pub calls: Vec<CallFact>,
}

/// One suppression annotation, resolved for interprocedural lookup.
#[derive(Debug, Clone)]
pub struct AllowFact {
    /// Rule id.
    pub rule: String,
    /// Optional sub-pattern.
    pub sub: Option<String>,
    /// Justification.
    pub reason: String,
    /// Line the annotation applies to (annotation line for file scope).
    pub target_line: u32,
    /// Line of the annotation comment itself.
    pub comment_line: u32,
    /// Whether the annotation is file-scoped.
    pub file_scope: bool,
}

/// Everything the interprocedural engine needs from one file: the per-file
/// findings/suppressions plus function facts and resolved annotations.
/// Serializable (see `engine::cache`), so cached files skip re-analysis.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Repo-relative path.
    pub rel_path: String,
    /// File classification.
    pub class: FileClass,
    /// Owning crate name.
    pub krate: String,
    /// Per-file findings (interprocedural findings are added later).
    pub findings: Vec<Finding>,
    /// Per-file suppressions.
    pub suppressed: Vec<Suppression>,
    /// `unsafe` site count.
    pub unsafe_count: usize,
    /// Function facts for the call graph (Lib files only).
    pub fns: Vec<FnFact>,
    /// All suppression annotations in the file.
    pub allows: Vec<AllowFact>,
    /// Annotation-comment lines used by per-file passes (for unused-allow
    /// detection after the interprocedural passes run).
    pub used_allow_lines: Vec<u32>,
    /// Soft panic exposure: index/non-literal-division sites in non-zone
    /// library code (informational, per the audit section).
    pub soft_seeds: usize,
}

/// Lints one file's source text, appending results to `report`.
///
/// `rel_path` must be repo-relative with `/` separators — the zone map and
/// the findings both use it verbatim. This single-file entry builds its
/// signature index from the file alone and runs no interprocedural passes;
/// the workspace engine (`engine::lint_workspace_parallel`) layers those on
/// top of [`analyze_file`].
pub fn lint_source(rel_path: &str, src: &str, zones: &ZoneConfig, report: &mut Report) {
    let lexed = lex(src);
    let parsed = parse(&lexed);
    let sigs = SigIndex::build([&parsed], zones);
    let facts = analyze_file(rel_path, &lexed, &parsed, zones, &sigs);
    report.files_scanned += 1;
    report.findings.extend(facts.findings);
    report.suppressed.extend(facts.suppressed);
    *report.unsafe_census.entry(facts.krate.clone()).or_insert(0) += facts.unsafe_count;
}

/// Runs every per-file pass over an already lexed and parsed file,
/// producing the file's findings and interprocedural facts.
#[must_use]
pub fn analyze_file(
    rel_path: &str,
    lexed: &Lexed,
    parsed: &Parsed,
    zones: &ZoneConfig,
    sigs: &SigIndex,
) -> FileFacts {
    let structure = analyze(lexed);
    let (class, krate) = classify(rel_path);
    let mut facts = FileFacts {
        rel_path: rel_path.to_string(),
        class,
        krate: krate.clone(),
        findings: Vec::new(),
        suppressed: Vec::new(),
        unsafe_count: 0,
        fns: Vec::new(),
        allows: collect_allows(&structure),
        used_allow_lines: Vec::new(),
        soft_seeds: 0,
    };

    let mut ctx = Ctx {
        rel_path,
        lexed,
        structure: &structure,
        parsed,
        sigs,
        zones,
        facts: &mut facts,
    };

    for (line, problem) in &structure.bad_annotations {
        ctx.facts.findings.push(Finding {
            rule: Rule::Annotation,
            sub: None,
            file: rel_path.to_string(),
            line: *line,
            message: format!("malformed dwv-lint annotation: {problem}"),
        });
    }

    if class == FileClass::Lib {
        if zones.in_float_zone(rel_path) {
            ctx.float_hygiene(true);
        } else if zones.is_kernel_module(rel_path) {
            // Designated kernels own their raw f64 loops, but the denylisted
            // (non-directed, libm-backed) methods stay banned even there.
            ctx.float_hygiene(false);
        }
        if !zones.is_rounding_primitive(rel_path) {
            ctx.rounding_containment();
        }
        if zones.in_panic_free_crate(rel_path) {
            ctx.panic_freedom();
        }
        if zones.in_determinism_zone(rel_path) {
            ctx.determinism();
        }
        ctx.no_alloc();
        ctx.doc_coverage();
        ctx.fn_facts();
    }
    ctx.unsafe_audit();
    ctx.simd_safety();
    facts.used_allow_lines.sort_unstable();
    facts.used_allow_lines.dedup();
    facts
}

/// Flattens a file's annotations into [`AllowFact`]s.
fn collect_allows(structure: &Structure) -> Vec<AllowFact> {
    let mut out = Vec::new();
    for (target, allows) in &structure.line_allows {
        for a in allows {
            out.push(AllowFact {
                rule: a.rule.clone(),
                sub: a.sub.clone(),
                reason: a.reason.clone(),
                target_line: *target,
                comment_line: a.line,
                file_scope: false,
            });
        }
    }
    for a in &structure.file_allows {
        out.push(AllowFact {
            rule: a.rule.clone(),
            sub: a.sub.clone(),
            reason: a.reason.clone(),
            target_line: a.line,
            comment_line: a.line,
            file_scope: true,
        });
    }
    out.sort_by(|a, b| (a.comment_line, &a.rule, &a.sub).cmp(&(b.comment_line, &b.rule, &b.sub)));
    out
}

struct Ctx<'a> {
    rel_path: &'a str,
    lexed: &'a Lexed,
    structure: &'a Structure,
    parsed: &'a Parsed,
    sigs: &'a SigIndex,
    zones: &'a ZoneConfig,
    facts: &'a mut FileFacts,
}

impl<'a> Ctx<'a> {
    fn toks(&self) -> &'a [Token] {
        &self.lexed.tokens
    }

    /// Emits a finding unless an annotation suppresses it.
    fn emit(&mut self, rule: Rule, sub: Option<&str>, line: u32, message: String) {
        if let Some(allow) = suppression(self.structure, rule.id(), sub, line) {
            self.facts.used_allow_lines.push(allow.line);
            self.facts.suppressed.push(Suppression {
                rule,
                file: self.rel_path.to_string(),
                line,
                reason: allow.reason.clone(),
            });
        } else {
            self.facts.findings.push(Finding {
                rule,
                sub: sub.map(str::to_string),
                file: self.rel_path.to_string(),
                line,
                message,
            });
        }
    }

    /// Whether `(rule, sub)` is excused at `line` without emitting anything
    /// (seed bookkeeping: the allow is marked used, no suppression entry).
    fn excused(&mut self, rule: &str, sub: Option<&str>, line: u32) -> bool {
        if let Some(allow) = suppression(self.structure, rule, sub, line) {
            self.facts.used_allow_lines.push(allow.line);
            true
        } else {
            false
        }
    }

    /// Whether token `i` is in code the rules skip (tests, attributes).
    fn skipped(&self, i: usize) -> bool {
        let f = self.structure.flags[i];
        f.in_test || f.in_attr
    }

    /// Whether token `i` sits in type position.
    fn type_pos(&self, i: usize) -> bool {
        self.parsed.type_pos.get(i).copied().unwrap_or(false)
    }

    /// The operand judge for the innermost function enclosing token `i`
    /// (a file-scope judge with an empty environment when outside any fn).
    fn judge_at(&self, i: usize) -> Judge<'_> {
        match self.parsed.enclosing_fn(i) {
            Some(f) => Judge::for_fn(self.lexed, self.parsed, f, self.sigs, self.zones),
            None => Judge {
                toks: &self.lexed.tokens,
                type_pos: &self.parsed.type_pos,
                env: BTreeMap::new(),
                sigs: self.sigs,
                zones: self.zones,
            },
        }
    }

    // R1 — float hygiene -----------------------------------------------------
    //
    // Structural version (DESIGN.md §4d): an operator in *type position*
    // (trait bounds, generic arguments — the parser marks these) is never
    // arithmetic. An operator in expression position is flagged unless the
    // operand judgment discharges it: an `Interval`/`Polynomial`/… operand
    // means a sound overload; an integer operand (with no float on the
    // other side) means exact machine arithmetic; `[…]` interiors are index
    // math by construction. Denylisted float methods are flagged at any
    // call site (`x.sqrt()`, `f64::sqrt(x)`) unless the receiver judges to
    // an enclosure type (whose `sqrt` is the directed version).
    //
    // `check_ops = false` runs only the method denylist — the mode for
    // designated kernel modules, whose raw operator loops are the audited
    // compute core but which must still never call libm-backed methods.
    fn float_hygiene(&mut self, check_ops: bool) {
        let toks = self.toks();
        let n = toks.len();
        let mut hits: Vec<(u32, String)> = Vec::new();
        let mut judge: Option<(Option<usize>, Judge<'_>)> = None;
        for i in 0..n {
            if self.skipped(i) || self.type_pos(i) {
                continue;
            }
            let t = &toks[i];
            let wants_judge = (check_ops
                && t.kind == TokKind::Punct
                && ARITH_OPS.contains(&t.text.as_str()))
                || (t.kind == TokKind::Ident && FLOAT_METHOD_DENYLIST.contains(&t.text.as_str()));
            if !wants_judge {
                continue;
            }
            // One judge per enclosing fn; rebuilt only on fn change.
            let fn_key = self.parsed.enclosing_fn(i).map(|f| f.fn_tok);
            if judge.as_ref().map(|(k, _)| *k) != Some(fn_key) {
                judge = Some((fn_key, self.judge_at(i)));
            }
            let Some((_, j)) = judge.as_ref() else {
                continue;
            };
            if check_ops && t.kind == TokKind::Punct && ARITH_OPS.contains(&t.text.as_str()) {
                if self.structure.flags[i].bracket_depth > 0 {
                    continue;
                }
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                let binary = matches!(prev.kind, TokKind::Ident | TokKind::FloatLit)
                    || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]"))
                    || prev.kind == TokKind::IntLit;
                if !binary {
                    continue;
                }
                // Keywords ending an expression never do: `return -x`, etc.
                if prev.kind == TokKind::Ident
                    && matches!(
                        prev.text.as_str(),
                        "return" | "as" | "in" | "if" | "else" | "match" | "break" | "where"
                    )
                {
                    continue;
                }
                let l = j.left_operand(i);
                let mut r = j.right_operand(i);
                if r == Ty::Unknown && j.expr_ty(i + 1) == Ty::Enclosure {
                    // `rem += a * ir`: the immediate right token may be
                    // unjudgeable while the whole right-hand expression
                    // still judges — arithmetic chains are homogeneous, so
                    // an enclosure-typed RHS means an enclosure operator.
                    r = Ty::Enclosure;
                }
                // Sound discharges: an enclosure operand means the operator
                // is an overload; an integer operand (and no float on the
                // other side) means the whole expression is integer-typed.
                if l == Ty::Enclosure
                    || r == Ty::Enclosure
                    || ((l == Ty::Int || r == Ty::Int) && l != Ty::Float && r != Ty::Float)
                {
                    continue;
                }
                hits.push((
                    t.line,
                    format!(
                        "raw float arithmetic `{}` in a soundness zone (route through \
                         Interval ops or the directed rounding primitives)",
                        t.text
                    ),
                ));
            }
            if t.kind == TokKind::Ident && FLOAT_METHOD_DENYLIST.contains(&t.text.as_str()) {
                let is_method = i >= 1
                    && matches!(toks[i - 1].text.as_str(), "." | "::")
                    && toks.get(i + 1).is_some_and(|t| t.text == "(");
                if is_method {
                    // `iv.sqrt()` on an enclosure receiver is the directed
                    // interval version, not the libm one.
                    if toks[i - 1].text == "." && i >= 2 && j.left_operand(i - 1) == Ty::Enclosure {
                        continue;
                    }
                    if toks[i - 1].text == "::"
                        && i >= 2
                        && self.zones.is_enclosure_type(&toks[i - 2].text)
                    {
                        continue;
                    }
                    hits.push((
                        t.line,
                        format!(
                            "non-directed float method `.{}()` in a soundness zone \
                             (use the Interval enclosure or widen the result)",
                            t.text
                        ),
                    ));
                }
            }
        }
        // One finding per line keeps annotations 1:1 with flagged lines.
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::FloatHygiene, None, line, msg);
        }
    }

    // R1#rounding — rounding-primitive containment ---------------------------
    //
    // Directed endpoint math (`next_up`, `next_down`, `outward_lo`,
    // `outward_hi`) is only sound when every caller agrees on when it is
    // applied; a stray nudge outside the interval kernel silently changes
    // enclosure widths. Any call site outside the designated
    // rounding-primitive modules is a finding — kernel modules and ordinary
    // zone files alike.
    fn rounding_containment(&mut self) {
        const ROUNDING_FNS: &[&str] = &["next_up", "next_down", "outward_lo", "outward_hi"];
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && ROUNDING_FNS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
                && !(i >= 1 && toks[i - 1].text == "fn")
            {
                hits.push((
                    t.line,
                    format!(
                        "rounding-sensitive endpoint math `{}` outside the rounding \
                         primitives (route through the interval kernel)",
                        t.text
                    ),
                ));
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::FloatHygiene, Some("rounding"), line, msg);
        }
    }

    // R4#simd — `core::arch` site audit --------------------------------------
    //
    // Every textual `core::arch` / `std::arch` site (imports included) must
    // carry a `SAFETY:` comment within the 5 preceding lines stating the
    // dispatch contract — runtime feature detection and the scalar-path
    // equivalence the SIMD body must preserve.
    fn simd_safety(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<u32> = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && t.text == "arch"
                && i >= 2
                && toks[i - 1].text == "::"
                && matches!(toks[i - 2].text.as_str(), "core" | "std")
            {
                let documented = self.lexed.comments.iter().any(|c| {
                    c.text
                        .trim_start_matches(['/', '*', '!'])
                        .trim_start()
                        .starts_with("SAFETY:")
                        && c.line <= t.line
                        && t.line.saturating_sub(c.line) <= 5
                });
                if !documented {
                    hits.push(t.line);
                }
            }
        }
        hits.dedup();
        for line in hits {
            self.emit(
                Rule::UnsafeAudit,
                Some("simd"),
                line,
                "`core::arch` SIMD site without a `// SAFETY:` comment within the 5 \
                 preceding lines"
                    .to_string(),
            );
        }
    }

    // R2 — panic freedom -----------------------------------------------------
    fn panic_freedom(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, Option<&'static str>, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) || self.type_pos(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_unchecked")
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                // A workspace method merely *named* `expect` (e.g. a parser
                // combinator returning `Result`) is not `Option::expect`:
                // the std one always takes a string-literal message here.
                let std_expect = t.text != "expect"
                    || toks.get(i + 2).is_some_and(|a| a.kind == TokKind::StrLit)
                    || !self.sigs.fn_names.contains("expect");
                if std_expect {
                    hits.push((
                        t.line,
                        None,
                        format!(
                            "`.{}()` in library code of a verified crate (return a Result \
                             or rewrite infallibly)",
                            t.text
                        ),
                    ));
                }
            }
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                hits.push((
                    t.line,
                    None,
                    format!("`{}!` in library code of a verified crate", t.text),
                ));
            }
            // Slice/array indexing: `expr[…]` panics on out-of-bounds —
            // unless the index is structurally bounded by its loop header.
            if t.text == "[" && !self.structure.flags[i].in_attr && i >= 1 {
                let prev = &toks[i - 1];
                let indexes = (prev.kind == TokKind::Ident
                    && !matches!(
                        prev.text.as_str(),
                        "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as"
                    ))
                    || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]"));
                if indexes && !self.index_bounded(i) {
                    hits.push((
                        t.line,
                        Some("index"),
                        "slice/array indexing can panic (prefer `get`, iterators, or a \
                         justified allow)"
                            .to_string(),
                    ));
                }
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, sub, msg) in hits {
            self.emit(Rule::PanicFreedom, sub, line, msg);
        }
    }

    /// The bounds prover for `base[i]`: discharged when the enclosing
    /// function contains `for i in <lo>..base.len()` (or `..=`-free `..`
    /// over `base.len().min(…)` prefixes is NOT accepted — only the exact
    /// `.len()` bound is) with the same index variable and the same base
    /// token sequence. `open` is the `[` token index.
    fn index_bounded(&self, open: usize) -> bool {
        let toks = self.toks();
        // Index expression must be a single identifier.
        if toks.get(open + 2).is_none_or(|t| t.text != "]") {
            return false;
        }
        let Some(idx) = toks.get(open + 1) else {
            return false;
        };
        if idx.kind != TokKind::Ident {
            return false;
        }
        // The indexed base: walk back over a `a.b.c` / `self.xs` chain.
        let mut start = open; // exclusive end is `open`
        let mut k = open;
        while k >= 1 {
            let p = &toks[k - 1];
            let part_of_base =
                p.kind == TokKind::Ident && !is_stmt_keyword(&p.text) || p.text == ".";
            if !part_of_base {
                break;
            }
            start = k - 1;
            k -= 1;
        }
        if start == open {
            return false;
        }
        let base: Vec<&str> = toks[start..open].iter().map(|t| t.text.as_str()).collect();
        if base.first().is_some_and(|t| *t == ".") {
            return false;
        }
        // Search the enclosing fn body for a dominating bound on the same
        // index variable: `for <idx> in <int-lit> .. <P> . len ( )` or
        // `while <idx> < <P> . len ( )`, where `P` is the indexed base or
        // a prefix of it (`for r in 0..v.len()` bounds `v.keys[r]` — the
        // container's paired-slice length invariant).
        let Some(f) = self.parsed.enclosing_fn(open) else {
            return false;
        };
        let Some((bs, be)) = f.body else { return false };
        let mut i = bs;
        while i + 4 < be.min(toks.len()) {
            let bound_start = if toks[i].text == "for"
                && toks[i + 1].text == idx.text
                && toks[i + 2].text == "in"
                && toks[i + 3].kind == TokKind::IntLit
                && toks[i + 4].text == ".."
            {
                Some(i + 5)
            } else if toks[i].text == "while"
                && toks[i + 1].text == idx.text
                && toks[i + 2].text == "<"
            {
                Some(i + 3)
            } else {
                None
            };
            if let Some(start) = bound_start {
                if i < open && self.bound_matches(&base, start, open) {
                    return true;
                }
            }
            i += 1;
        }
        false
    }

    /// Whether the token run at `start` reads `<P>.len()` for `P` the
    /// indexed `base` or a `.`-boundary prefix of it, with `P` not
    /// length-shrunk before the index site at `open`.
    fn bound_matches(&self, base: &[&str], start: usize, open: usize) -> bool {
        let toks = self.toks();
        for plen in (1..=base.len()).rev() {
            // Prefixes end at `.` boundaries only (never mid-segment).
            if plen < base.len() && base[plen] != "." {
                continue;
            }
            let prefix = &base[..plen];
            let matches = prefix
                .iter()
                .enumerate()
                .all(|(k, want)| toks.get(start + k).is_some_and(|t| t.text == *want));
            let j = start + plen;
            if matches
                && toks.get(j).is_some_and(|t| t.text == ".")
                && toks.get(j + 1).is_some_and(|t| t.text == "len")
                && toks.get(j + 2).is_some_and(|t| t.text == "(")
                && toks.get(j + 3).is_some_and(|t| t.text == ")")
                && !self.base_shrunk_between(prefix, j + 4, open)
            {
                return true;
            }
        }
        false
    }

    /// The zero-guard prover for `x / n` and `x % n`: discharged when the
    /// enclosing function tests the divisor against zero anywhere before
    /// the division (`n == 0`, `n != 0`, `n > 0`, `n >= 1`, `0 < n`, or
    /// `assert!(n > 0)`-style, which all lower to the same comparison
    /// tokens). `op` is the operator token index; the divisor must be the
    /// single identifier right after it.
    fn div_guarded(&self, op: usize) -> bool {
        let toks = self.toks();
        let Some(n) = toks.get(op + 1) else {
            return false;
        };
        if n.kind != TokKind::Ident {
            return false;
        }
        let Some(f) = self.parsed.enclosing_fn(op) else {
            return false;
        };
        let Some((bs, _)) = f.body else { return false };
        for j in bs..op {
            if toks[j].text == n.text
                && toks
                    .get(j + 1)
                    .is_some_and(|t| matches!(t.text.as_str(), "==" | "!=" | ">" | ">="))
                && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::IntLit)
            {
                return true;
            }
            if toks[j].kind == TokKind::IntLit
                && toks.get(j + 1).is_some_and(|t| t.text == "<")
                && toks.get(j + 2).is_some_and(|t| t.text == n.text)
            {
                return true;
            }
        }
        false
    }

    /// Whether `base` is length-shrunk between the loop header and the
    /// index site (which would invalidate the `.len()` bound).
    fn base_shrunk_between(&self, base: &[&str], from: usize, to: usize) -> bool {
        const SHRINKERS: &[&str] = &[
            "truncate",
            "clear",
            "pop",
            "remove",
            "drain",
            "resize",
            "retain",
            "swap_remove",
        ];
        let toks = self.toks();
        let mut i = from;
        while i + base.len() + 1 < to.min(toks.len()) {
            let matches_base = base
                .iter()
                .enumerate()
                .all(|(k, want)| toks.get(i + k).is_some_and(|t| t.text == *want));
            if matches_base
                && toks.get(i + base.len()).is_some_and(|t| t.text == ".")
                && toks
                    .get(i + base.len() + 1)
                    .is_some_and(|t| SHRINKERS.contains(&t.text.as_str()))
            {
                return true;
            }
            i += 1;
        }
        false
    }

    // R3 — determinism -------------------------------------------------------
    fn determinism(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "HashMap" | "HashSet" => hits.push((
                    t.line,
                    format!(
                        "`{}` in a determinism zone: iteration order is randomized \
                         per process (justify lookup-only use or switch to BTreeMap)",
                        t.text
                    ),
                )),
                "SystemTime" | "Instant" => hits.push((
                    t.line,
                    format!(
                        "`{}` in a determinism zone: wall-clock values must not \
                         reach result-bearing code",
                        t.text
                    ),
                )),
                "current" | "ThreadId" => {
                    let thread_qualified = t.text == "ThreadId"
                        || (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread");
                    if thread_qualified {
                        hits.push((
                            t.line,
                            "thread-identity value in a determinism zone: results must \
                             not depend on which worker computed them"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::Determinism, None, line, msg);
        }
    }

    // R4 — unsafe audit ------------------------------------------------------
    fn unsafe_audit(&mut self) {
        let toks = self.toks();
        let mut census = 0usize;
        let mut hits: Vec<u32> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "unsafe" || self.structure.flags[i].in_attr {
                continue;
            }
            census += 1;
            // The comment must *start* with `SAFETY:` (after the comment
            // markers) — prose mentioning the convention does not count.
            let documented = self.lexed.comments.iter().any(|c| {
                c.text
                    .trim_start_matches(['/', '*', '!'])
                    .trim_start()
                    .starts_with("SAFETY:")
                    && c.line <= t.line
                    && t.line.saturating_sub(c.line) <= 3
            });
            if !documented {
                hits.push(t.line);
            }
        }
        self.facts.unsafe_count += census;
        for line in hits {
            self.emit(
                Rule::UnsafeAudit,
                None,
                line,
                "`unsafe` without a `// SAFETY:` comment within the 3 preceding lines".to_string(),
            );
        }
    }

    // R5 — doc coverage ------------------------------------------------------
    fn doc_coverage(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) || toks[i].text != "pub" {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if toks.get(i + 1).is_some_and(|t| t.text == "(") {
                continue;
            }
            // Find the item keyword, skipping modifiers.
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| {
                matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
                    || t.kind == TokKind::StrLit
            }) {
                // `pub const NAME` — `const` is the item keyword when the
                // next token is an identifier that is not `fn`.
                if toks[j].text == "const" && toks.get(j + 1).is_some_and(|t| t.text != "fn") {
                    break;
                }
                j += 1;
            }
            let Some(kw) = toks.get(j) else { continue };
            // `mod` is exempt: module docs conventionally live inside the
            // module file as `//!`, which a per-file scan cannot see.
            let item_kind = match kw.text.as_str() {
                "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" => kw.text.clone(),
                _ => continue, // `pub use`, `pub mod`, `pub impl`(n/a), …
            };
            let name = toks
                .get(j + 1)
                .map_or_else(|| "?".to_string(), |t| t.text.clone());
            // Attached attributes may sit between the docs and the item:
            // walk backwards over attribute spans.
            let mut first = i;
            while first > 0 && self.structure.flags[first - 1].in_attr {
                first -= 1;
            }
            let start_line = toks[first].line;
            let prev_line = if first == 0 { 0 } else { toks[first - 1].line };
            let documented = self
                .lexed
                .comments
                .iter()
                .any(|c| c.doc && c.line >= prev_line && c.line <= start_line)
                || toks[first..i].iter().any(|t| t.text == "doc");
            if !documented {
                hits.push((
                    toks[i].line,
                    format!("public {item_kind} `{name}` has no doc comment"),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit(Rule::DocCoverage, None, line, msg);
        }
    }

    // R6 — no-alloc zone -----------------------------------------------------
    //
    // The zero-copy kernels (PR 2/6) must never allocate on the steady-state
    // path: `Vec::new`/`vec!`/`.push(`/`.clone(`/`.to_vec(`/`Box::new` and
    // friends are findings inside every function the zone map places in the
    // no-alloc zone. Cold-start/fallback allocations carry reasoned allows.
    fn no_alloc(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for f in &self.parsed.fns {
            if !self.zones.in_no_alloc_zone(self.rel_path, &f.name) {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            // Amortized-reuse prover: a `.push(` whose receiver was
            // `.clear()`ed or `.reserve(`d earlier in the same body appends
            // into retained capacity — the workspace-buffer idiom the zone
            // exists to enforce — and is discharged.
            let mut reused: Vec<(String, usize)> = Vec::new();
            for i in bs..=be.min(toks.len().saturating_sub(1)) {
                if toks[i].kind == TokKind::Ident
                    && matches!(toks[i].text.as_str(), "clear" | "reserve")
                    && i >= 1
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    if let Some(r) = receiver_text(toks, i - 1) {
                        reused.push((r, i));
                    }
                }
            }
            for i in bs..=be.min(toks.len().saturating_sub(1)) {
                if self.skipped(i) || self.type_pos(i) {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokKind::Ident {
                    continue;
                }
                // `Qual::method(` constructors.
                if toks.get(i + 1).is_some_and(|n| n.text == "::") {
                    if let Some(m) = toks.get(i + 2) {
                        if ALLOC_PATHS
                            .iter()
                            .any(|(q, mm)| *q == t.text && *mm == m.text)
                            && toks.get(i + 3).is_some_and(|n| n.text == "(")
                        {
                            hits.push((
                                t.line,
                                format!(
                                    "`{}::{}` allocates inside the no-alloc kernel zone \
                                     (reuse a workspace buffer)",
                                    t.text, m.text
                                ),
                            ));
                        }
                    }
                }
                // `vec![…]`.
                if t.text == "vec" && toks.get(i + 1).is_some_and(|n| n.text == "!") {
                    hits.push((
                        t.line,
                        "`vec!` allocates inside the no-alloc kernel zone (reuse a \
                         workspace buffer)"
                            .to_string(),
                    ));
                }
                // `.push(` / `.clone(` / `.to_vec(` / `.collect(` / `.to_owned(`.
                if i >= 1
                    && toks[i - 1].text == "."
                    && ALLOC_METHODS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    if t.text == "push" {
                        if let Some(r) = receiver_text(toks, i - 1) {
                            if reused.iter().any(|(rr, ri)| *rr == r && *ri < i) {
                                continue;
                            }
                        }
                    }
                    hits.push((
                        t.line,
                        format!(
                            "`.{}()` may allocate inside the no-alloc kernel zone \
                             (reserve capacity outside the kernel or reuse buffers)",
                            t.text
                        ),
                    ));
                }
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::NoAlloc, None, line, msg);
        }
    }

    // Fn facts — seeds, calls, and float-taint producer flags ----------------
    //
    // Collected for every non-test function in Lib files of any crate: the
    // call graph routes panic-reachability and float-taint through them.
    fn fn_facts(&mut self) {
        let toks = self.toks();
        let in_zone_crate = self.zones.in_panic_free_crate(self.rel_path);
        let float_zone = self.zones.in_float_zone(self.rel_path)
            || self.zones.is_rounding_primitive(self.rel_path)
            || self.zones.is_kernel_module(self.rel_path);
        let mut soft = 0usize;
        let fn_count = self.parsed.fns.len();
        for fi in 0..fn_count {
            let f = self.parsed.fns[fi].clone();
            let Some((bs, be)) = f.body else { continue };
            if self
                .structure
                .flags
                .get(f.fn_tok)
                .is_some_and(|fl| fl.in_test)
            {
                continue;
            }
            let judge = Judge::for_fn(self.lexed, self.parsed, &f, self.sigs, self.zones);
            let mut seeds: Vec<Seed> = Vec::new();
            let mut raw_float = false;
            let be = be.min(toks.len().saturating_sub(1));
            for i in bs..=be {
                if self.structure.flags[i].in_test
                    || self.structure.flags[i].in_attr
                    || self.type_pos(i)
                {
                    continue;
                }
                // Skip tokens of nested fns: their seeds are their own.
                if self
                    .parsed
                    .enclosing_fn(i)
                    .is_some_and(|g| g.fn_tok != f.fn_tok)
                {
                    continue;
                }
                let t = &toks[i];
                if t.kind == TokKind::Ident {
                    // Hard seeds: panicking macros and `.unwrap()`-style calls.
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.text == "!")
                    {
                        seeds.push(Seed {
                            line: t.line,
                            what: format!("`{}!`", t.text),
                        });
                    }
                    if matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_unchecked")
                        && i >= 1
                        && toks[i - 1].text == "."
                        && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    {
                        let std_expect = t.text != "expect"
                            || toks.get(i + 2).is_some_and(|a| a.kind == TokKind::StrLit)
                            || !self.sigs.fn_names.contains("expect");
                        if std_expect {
                            seeds.push(Seed {
                                line: t.line,
                                what: format!("`.{}()`", t.text),
                            });
                        }
                    }
                    // Denylisted float methods mark the fn a raw-float
                    // producer wherever it lives.
                    if FLOAT_METHOD_DENYLIST.contains(&t.text.as_str())
                        && i >= 1
                        && matches!(toks[i - 1].text.as_str(), "." | "::")
                        && toks.get(i + 1).is_some_and(|n| n.text == "(")
                        && !(toks[i - 1].text == "." && judge.left_operand(i - 1) == Ty::Enclosure)
                    {
                        raw_float = true;
                    }
                }
                if t.kind == TokKind::Punct && ARITH_OPS.contains(&t.text.as_str()) {
                    let l = judge.left_operand(i);
                    let r = judge.right_operand(i);
                    let floatish = l == Ty::Float
                        || r == Ty::Float
                        || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::FloatLit)
                        || (i >= 1 && toks[i - 1].kind == TokKind::FloatLit);
                    if floatish && l != Ty::Enclosure && r != Ty::Enclosure {
                        raw_float = true;
                    }
                    // Integer division by a non-constant divisor is a panic
                    // seed (division by zero) in the proof zone.
                    if matches!(t.text.as_str(), "/" | "%" | "/=" | "%=")
                        && l == Ty::Int
                        && r == Ty::Int
                        && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                        && !toks
                            .get(i + 1)
                            .is_some_and(|n| n.text.chars().all(|c| c.is_uppercase() || c == '_'))
                        && !self.div_guarded(i)
                    {
                        if in_zone_crate {
                            if !self.excused("panic-freedom", Some("div"), t.line) {
                                seeds.push(Seed {
                                    line: t.line,
                                    what: "integer division by a non-constant".to_string(),
                                });
                            }
                        } else {
                            soft += 1;
                        }
                    }
                }
                // Indexing: a seed inside the proof zone only when neither
                // proved in-bounds nor excused by a reasoned allow; soft
                // exposure elsewhere.
                if t.text == "[" && i >= 1 {
                    let prev = &toks[i - 1];
                    let indexes = (prev.kind == TokKind::Ident
                        && !matches!(
                            prev.text.as_str(),
                            "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as"
                        ))
                        || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]"));
                    if indexes && !self.index_bounded(i) {
                        if in_zone_crate {
                            if !self.excused("panic-freedom", Some("index"), t.line) {
                                seeds.push(Seed {
                                    line: t.line,
                                    what: "slice indexing".to_string(),
                                });
                            }
                        } else {
                            soft += 1;
                        }
                    }
                }
            }
            // Seeds excused by a per-line allow don't taint the fn (the
            // annotation asserts the site cannot fire); seeds excused by a
            // fn-level `#reach` audit annotation are handled by the
            // reachability pass, not here.
            let excused: Vec<bool> = seeds
                .iter()
                .map(|s| self.excused("panic-freedom", None, s.line))
                .collect();
            let mut keep = excused.iter().map(|e| !e);
            seeds.retain(|_| keep.next().unwrap_or(true));
            let calls = self
                .parsed
                .calls_in(self.lexed, &f)
                .into_iter()
                .filter(|c| {
                    !self
                        .structure
                        .flags
                        .get(c.tok)
                        .is_some_and(|fl| fl.in_test || fl.in_attr)
                })
                .map(|c| CallFact {
                    name: c.name,
                    qual: c.qual,
                    is_method: c.is_method,
                    line: c.line,
                })
                .collect();
            self.facts.fns.push(FnFact {
                name: f.name.clone(),
                owner: f.owner.clone(),
                is_pub: f.is_pub,
                line: f.line,
                ret_float: head_ty(&f.ret_ty, self.zones) == Ty::Float && !float_zone,
                raw_float,
                seeds,
                calls,
            });
        }
        self.facts.soft_seeds = soft;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zones_for(path: &str) -> ZoneConfig {
        ZoneConfig {
            float_zone_files: vec![path.to_string()],
            float_primitive_files: vec![],
            kernel_module_files: vec![],
            panic_free_crates: vec!["design-while-verify".to_string()],
            determinism_zone_files: vec![path.to_string()],
            no_alloc_files: vec![],
            no_alloc_fns: vec![],
            no_alloc_suffix_files: vec![],
            ..ZoneConfig::default()
        }
    }

    fn run(path: &str, src: &str) -> Report {
        let mut r = Report::default();
        lint_source(path, src, &zones_for(path), &mut r);
        r
    }

    fn rules_hit(r: &Report) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule.id()).collect()
    }

    #[test]
    fn float_literal_arithmetic_flagged() {
        let r = run(
            "src/zone.rs",
            "fn f(a: f64, b: f64) -> f64 { 0.5 * (a + b) }\n",
        );
        assert!(rules_hit(&r).contains(&"float-hygiene"));
    }

    #[test]
    fn integer_arithmetic_exempt() {
        // Literal-adjacent ops, index-bracket interiors, and int-cast
        // adjacency are all provably-integer and exempt.
        let r = run(
            "src/zone.rs",
            "fn f(i: usize, s: usize) -> usize { let j = i + 1; idx[j * s + 1] + 2 + i as usize * s }\n",
        );
        assert!(
            !rules_hit(&r).contains(&"float-hygiene"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn trait_bounds_are_not_arithmetic() {
        let r = run(
            "src/zone.rs",
            "fn f<C: Clone + ?Sized>(c: &C) {}\nimpl<C: Clone + Sync> Foo for C {}\n",
        );
        assert!(
            !rules_hit(&r).contains(&"float-hygiene"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn denied_method_flagged_and_annotation_suppresses() {
        let src = "\
fn f(x: f64) -> f64 { x.sqrt() }
// dwv-lint: allow(float-hygiene) -- distance heuristic, not a bound
fn g(x: f64) -> f64 { x.sqrt() }
";
        let r = run("src/zone.rs", src);
        let fh: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::FloatHygiene)
            .map(|f| f.line)
            .collect();
        assert_eq!(fh, vec![1]);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].line, 3);
    }

    #[test]
    fn panic_patterns_flagged_outside_tests_only() {
        let src = "\
pub fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[1] }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"ok\"); }
}
";
        let r = run("src/lib.rs", src);
        let pf: Vec<(u32, Option<String>)> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicFreedom)
            .map(|f| (f.line, f.sub.clone()))
            .collect();
        assert_eq!(pf, vec![(1, None), (1, Some("index".into()))]);
    }

    #[test]
    fn panic_free_files_zone_is_file_granular() {
        // A crate outside `panic_free_crates` gets R2 only for files listed
        // in `panic_free_files` — the serve wire-codec configuration.
        let zones = ZoneConfig {
            panic_free_crates: vec![],
            panic_free_files: vec!["crates/serve/src/proto.rs".to_string()],
            ..zones_for("crates/serve/src/proto.rs")
        };
        let src = "pub fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[1] }\n";
        let mut in_zone = Report::default();
        lint_source("crates/serve/src/proto.rs", src, &zones, &mut in_zone);
        assert!(
            in_zone
                .findings
                .iter()
                .any(|f| f.rule == Rule::PanicFreedom),
            "listed file must carry R2: {:?}",
            in_zone.findings
        );
        let mut out_of_zone = Report::default();
        lint_source("crates/serve/src/server.rs", src, &zones, &mut out_of_zone);
        assert!(
            !out_of_zone
                .findings
                .iter()
                .any(|f| f.rule == Rule::PanicFreedom),
            "unlisted sibling must not: {:?}",
            out_of_zone.findings
        );
    }

    #[test]
    fn determinism_zone_flags_hash_and_time() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let r = run("src/zone.rs", src);
        let d: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Determinism)
            .map(|f| f.line)
            .collect();
        assert_eq!(d, vec![1, 2]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "\
fn a() { unsafe { x() } }
// SAFETY: documented invariant
fn b() { unsafe { y() } }
";
        let r = run("crates/demo/src/lib.rs", src);
        let ua: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnsafeAudit)
            .map(|f| f.line)
            .collect();
        assert_eq!(ua, vec![1]);
        assert_eq!(r.unsafe_census.get("demo"), Some(&2));
    }

    #[test]
    fn doc_coverage_flags_undocumented_pub() {
        let src = "\
/// Documented.
pub fn ok() {}
pub fn bad() {}
#[derive(Debug)]
pub struct AlsoBad;
/// Documented struct.
#[derive(Debug)]
pub struct Fine;
pub(crate) fn internal() {}
";
        let r = run("crates/demo/src/lib.rs", src);
        let dc: Vec<String> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::DocCoverage)
            .map(|f| f.message.clone())
            .collect();
        assert_eq!(dc.len(), 2, "{dc:?}");
        assert!(dc[0].contains("`bad`"));
        assert!(dc[1].contains("`AlsoBad`"));
    }

    #[test]
    fn test_like_files_only_get_unsafe_audit() {
        let src = "pub fn undocumented() { v[0]; x.unwrap(); unsafe { y() } }\n";
        let mut r = Report::default();
        lint_source(
            "crates/demo/tests/t.rs",
            src,
            &ZoneConfig::default(),
            &mut r,
        );
        assert_eq!(rules_hit(&r), vec!["unsafe-audit"]);
    }
}
