//! Findings, suppressions, the unsafe census, and the output formats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The rule that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — raw float arithmetic / non-directed std float methods in a
    /// soundness zone.
    FloatHygiene,
    /// R2 — panicking patterns in library code of the verified crates.
    PanicFreedom,
    /// R3 — iteration-order / wall-clock / thread-identity dependence in
    /// result-bearing code.
    Determinism,
    /// R4 — `unsafe` without a `// SAFETY:` comment.
    UnsafeAudit,
    /// R5 — undocumented public items.
    DocCoverage,
    /// R6 — allocation in a designated no-alloc kernel zone.
    NoAlloc,
    /// Malformed `dwv-lint:` annotations.
    Annotation,
}

impl Rule {
    /// The stable string id used in annotations, output, and `--deny`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::FloatHygiene => "float-hygiene",
            Rule::PanicFreedom => "panic-freedom",
            Rule::Determinism => "determinism",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::DocCoverage => "doc-coverage",
            Rule::NoAlloc => "no-alloc",
            Rule::Annotation => "annotation",
        }
    }

    /// The process exit-code bit for the rule (findings OR these together).
    #[must_use]
    pub fn exit_bit(self) -> i32 {
        match self {
            Rule::FloatHygiene => 1,
            Rule::PanicFreedom => 2,
            Rule::Determinism => 4,
            Rule::UnsafeAudit => 8,
            Rule::DocCoverage => 16,
            Rule::Annotation => 32,
            Rule::NoAlloc => 64,
        }
    }

    /// All enforceable rules (annotation hygiene is always enforced).
    #[must_use]
    pub fn all() -> &'static [Rule] {
        &[
            Rule::FloatHygiene,
            Rule::PanicFreedom,
            Rule::Determinism,
            Rule::UnsafeAudit,
            Rule::DocCoverage,
            Rule::NoAlloc,
        ]
    }

    /// Parses a rule id (as accepted by `--deny`).
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().iter().copied().find(|r| r.id() == id)
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Optional sub-pattern (e.g. `index` for slice-indexing under R2).
    pub sub: Option<String>,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One suppressed (annotated) finding, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule that would have fired.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The annotation's justification.
    pub reason: String,
}

/// The suppression-debt / proof-obligation audit attached to a workspace
/// run by the interprocedural engine.
#[derive(Debug, Default, Clone)]
pub struct Audit {
    /// Suppression count recorded when the interprocedural engine landed
    /// (the debt-paydown baseline the report is measured against).
    pub suppression_baseline: usize,
    /// Current suppressions per rule id.
    pub suppressed_by_rule: BTreeMap<String, usize>,
    /// Public functions of the proof crates shown transitively panic-free.
    pub pub_fns_proved: usize,
    /// Public functions of the proof crates carrying a reasoned
    /// `panic-freedom#reach` audit annotation instead of a proof.
    pub pub_fns_audited: usize,
    /// Per-crate counts of *soft* panic exposure outside the proof zone
    /// (indexing / non-literal division in non-zone library code). These
    /// are informational proof obligations, not findings.
    pub soft_seeds: BTreeMap<String, usize>,
}

/// Aggregated results of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, in file/line order.
    pub findings: Vec<Finding>,
    /// Suppressed findings (annotation audit trail).
    pub suppressed: Vec<Suppression>,
    /// `unsafe` occurrence count per crate (the R4 census) — includes
    /// annotated-and-passing sites.
    pub unsafe_census: BTreeMap<String, usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Proof/suppression audit (workspace engine runs only).
    pub audit: Option<Audit>,
}

impl Report {
    /// The exit code for this report given the denied rule set.
    #[must_use]
    pub fn exit_code(&self, denied: &[Rule]) -> i32 {
        let mut code = 0;
        for f in &self.findings {
            if f.rule == Rule::Annotation || denied.contains(&f.rule) {
                code |= f.rule.exit_bit();
            }
        }
        code
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn to_text(&self, denied: &[Rule]) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let sub = f
                .sub
                .as_deref()
                .map(|s| format!("#{s}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{}:{}: [{}{}] {}",
                f.file,
                f.line,
                f.rule.id(),
                sub,
                f.message
            );
        }
        let unsafe_total: usize = self.unsafe_census.values().sum();
        let _ = writeln!(
            out,
            "dwv-lint: {} file(s), {} finding(s), {} suppressed, {} unsafe site(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            unsafe_total
        );
        if unsafe_total > 0 {
            for (krate, n) in &self.unsafe_census {
                if *n > 0 {
                    let _ = writeln!(out, "  unsafe census: {krate}: {n}");
                }
            }
        }
        if let Some(a) = &self.audit {
            let _ = writeln!(
                out,
                "audit: suppressions {} (baseline {}, {:+})",
                self.suppressed.len(),
                a.suppression_baseline,
                self.suppressed.len() as i64 - a.suppression_baseline as i64,
            );
            for (rule, n) in &a.suppressed_by_rule {
                let _ = writeln!(out, "  suppressed[{rule}]: {n}");
            }
            let _ = writeln!(
                out,
                "  panic-reachability: {} pub fn(s) proved, {} audited",
                a.pub_fns_proved, a.pub_fns_audited
            );
            for (krate, n) in &a.soft_seeds {
                let _ = writeln!(out, "  soft panic exposure: {krate}: {n}");
            }
        }
        let code = self.exit_code(denied);
        if code != 0 {
            let _ = writeln!(out, "exit code {code} (rule bit mask)");
        }
        out
    }

    /// Renders the machine-readable JSON report (schema version 1).
    #[must_use]
    pub fn to_json(&self, denied: &[Rule]) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"exit_code\": {},", self.exit_code(denied));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
            if let Some(sub) = &f.sub {
                let _ = write!(out, ", \"sub\": {}", json_str(sub));
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, sup) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}",
                json_str(sup.rule.id()),
                json_str(&sup.file),
                sup.line,
                json_str(&sup.reason)
            );
            out.push('}');
        }
        out.push_str("\n  ],\n  \"unsafe_census\": {");
        for (i, (krate, n)) in self.unsafe_census.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(krate), n);
        }
        out.push_str("\n  }");
        if let Some(a) = &self.audit {
            out.push_str(",\n  \"audit\": {\n");
            let _ = writeln!(
                out,
                "    \"suppression_baseline\": {},",
                a.suppression_baseline
            );
            let _ = writeln!(out, "    \"suppressions\": {},", self.suppressed.len());
            out.push_str("    \"suppressed_by_rule\": {");
            for (i, (rule, n)) in a.suppressed_by_rule.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n      {}: {}", json_str(rule), n);
            }
            out.push_str("\n    },\n");
            let _ = writeln!(out, "    \"pub_fns_proved\": {},", a.pub_fns_proved);
            let _ = writeln!(out, "    \"pub_fns_audited\": {},", a.pub_fns_audited);
            out.push_str("    \"soft_seeds\": {");
            for (i, (krate, n)) in a.soft_seeds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n      {}: {}", json_str(krate), n);
            }
            out.push_str("\n    }\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: Rule::PanicFreedom,
            sub: Some("index".into()),
            file: "a.rs".into(),
            line: 3,
            message: "slice indexing".into(),
        });
        r.findings.push(Finding {
            rule: Rule::FloatHygiene,
            sub: None,
            file: "b.rs".into(),
            line: 7,
            message: "raw `*`".into(),
        });
        r.suppressed.push(Suppression {
            rule: Rule::Determinism,
            file: "c.rs".into(),
            line: 1,
            reason: "lookup-only".into(),
        });
        r.unsafe_census.insert("obs".into(), 1);
        r
    }

    #[test]
    fn exit_code_masks_by_denied_rules() {
        let r = sample();
        assert_eq!(r.exit_code(&[Rule::PanicFreedom]), 2);
        assert_eq!(r.exit_code(&[Rule::FloatHygiene]), 1);
        assert_eq!(r.exit_code(Rule::all()), 3);
        assert_eq!(r.exit_code(&[Rule::Determinism]), 0);
    }

    #[test]
    fn annotation_findings_always_deny() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: Rule::Annotation,
            sub: None,
            file: "a.rs".into(),
            line: 1,
            message: "bad".into(),
        });
        assert_eq!(r.exit_code(&[]), 32);
    }

    #[test]
    fn text_contains_findings_and_census() {
        let r = sample();
        let t = r.to_text(Rule::all());
        assert!(t.contains("a.rs:3: [panic-freedom#index] slice indexing"));
        assert!(t.contains("b.rs:7: [float-hygiene]"));
        assert!(t.contains("unsafe census: obs: 1"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
