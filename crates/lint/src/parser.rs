//! A structural item/signature/expression parser over the token stream.
//!
//! The lexer ([`crate::lexer`]) gives the rule passes tokens; this module
//! gives them *structure*: which tokens form function definitions (with
//! owner types, parameter types, and return types), which tokens sit in
//! **type position** (generic parameter lists, trait bounds, type
//! ascriptions, casts, turbofish) where operators like `+` are syntax
//! rather than arithmetic, which struct fields have which declared types,
//! and where the call sites, method calls, and macro invocations inside
//! each function body are.
//!
//! The parser is deliberately *approximate where Rust is hard* (it does
//! not resolve imports, expand macros, or infer types) and *exact where
//! the rules need it*: item boundaries, signature spans, and the
//! type-position marking that replaced the token-skip heuristics the old
//! line rules used for trait bounds. Like the lexer it must never fail:
//! on malformed input it degrades to recording fewer facts, not to
//! aborting the lint run.

use crate::lexer::{Lexed, TokKind, Token};

/// One parsed function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The surrounding `impl`/`trait` self-type name, if any.
    pub owner: Option<String>,
    /// The trait being implemented when the surrounding block is an
    /// `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Whether the item is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range `[start, end]` of the body braces, if the item has a
    /// body (`None` for trait-method signatures).
    pub body: Option<(usize, usize)>,
    /// Parameter `(name, type-text)` pairs, `self` receivers included as
    /// `("self", "Self")`.
    pub params: Vec<(String, String)>,
    /// Return type text (`""` for unit).
    pub ret_ty: String,
}

/// One parsed struct definition with its named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// Named fields as `(name, type-text)` pairs (tuple structs record
    /// none).
    pub fields: Vec<(String, String)>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment / method name).
    pub name: String,
    /// The path segment immediately before the name (`Interval` in
    /// `Interval::point`, `bernstein` in `bernstein::range_enclosure`).
    pub qual: Option<String>,
    /// Whether the call is a method call (`x.name(...)`).
    pub is_method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
    /// Whether the first argument token is a string literal (used to
    /// distinguish `Option::expect("msg")` from workspace methods that
    /// happen to be named `expect`).
    pub str_arg: bool,
}

/// One macro invocation (`name!(...)`) inside a function body.
#[derive(Debug, Clone)]
pub struct MacroSite {
    /// Macro name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the macro name.
    pub tok: usize,
}

/// The parser's output for one file.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Every function definition, methods included, in source order.
    pub fns: Vec<FnDef>,
    /// Every struct definition with named fields.
    pub structs: Vec<StructDef>,
    /// `type_pos[i]` is true when token `i` sits in type position
    /// (signatures, generic argument lists, bounds, ascriptions, casts).
    pub type_pos: Vec<bool>,
}

impl Parsed {
    /// The calls inside `f`'s body (empty for bodiless signatures).
    #[must_use]
    pub fn calls_in(&self, lexed: &Lexed, f: &FnDef) -> Vec<CallSite> {
        let Some((start, end)) = f.body else {
            return Vec::new();
        };
        collect_calls(&lexed.tokens, &self.type_pos, start, end)
    }

    /// The macro invocations inside `f`'s body.
    #[must_use]
    pub fn macros_in(&self, lexed: &Lexed, f: &FnDef) -> Vec<MacroSite> {
        let Some((start, end)) = f.body else {
            return Vec::new();
        };
        collect_macros(&lexed.tokens, start, end)
    }

    /// The innermost function whose body contains token `i`.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= i && i <= e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }
}

/// Parses the lexed file into items, signatures, and type positions.
#[must_use]
pub fn parse(lexed: &Lexed) -> Parsed {
    let mut p = Parser {
        toks: &lexed.tokens,
        out: Parsed {
            fns: Vec::new(),
            structs: Vec::new(),
            type_pos: vec![false; lexed.tokens.len()],
        },
    };
    let end = p.toks.len();
    p.items(0, end, None, None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    out: Parsed,
}

/// Item keywords that `pub`/modifiers may precede.
fn is_modifier(text: &str) -> bool {
    matches!(
        text,
        "pub" | "const" | "unsafe" | "async" | "extern" | "default"
    )
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn mark(&mut self, from: usize, to: usize) {
        for f in self
            .out
            .type_pos
            .iter_mut()
            .take(to.min(self.toks.len()))
            .skip(from)
        {
            *f = true;
        }
    }

    /// Skips a balanced `<...>` generic list starting at `open` (which must
    /// be `<`), marking it as type position. Returns the index after `>`.
    fn skip_generics(&mut self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.text(i) {
                "<" | "<<" => depth += i32::from(self.text(i) == "<<") + 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.mark(open, i + 1);
                        return i + 1;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        self.mark(open, i + 1);
                        return i + 1;
                    }
                }
                // A generic list never contains these at any depth; bail
                // out so a stray `<` comparison cannot swallow the file.
                ";" | "{" | "}" => return open + 1,
                _ => {}
            }
            i += 1;
        }
        open + 1
    }

    /// Skips a type expression starting at `i`, marking it as type
    /// position, until one of `stops` appears at zero bracket depth.
    /// Returns the index of the stopping token.
    fn skip_type(&mut self, start: usize, stops: &[&str]) -> usize {
        let mut i = start;
        let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
        while i < self.toks.len() {
            let t = self.text(i);
            if angle <= 0 && paren <= 0 && bracket <= 0 && stops.contains(&t) {
                self.mark(start, i);
                return i;
            }
            match t {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" => paren += 1,
                ")" => {
                    if paren == 0 {
                        // Closing a surrounding delimiter: stop before it.
                        self.mark(start, i);
                        return i;
                    }
                    paren -= 1;
                }
                "[" => bracket += 1,
                "]" => {
                    if bracket == 0 {
                        self.mark(start, i);
                        return i;
                    }
                    bracket -= 1;
                }
                "{" | "}" => {
                    // Types contain no braces; a brace always ends the
                    // type span (body start / item end).
                    self.mark(start, i);
                    return i;
                }
                _ => {}
            }
            i += 1;
        }
        self.mark(start, i);
        i
    }

    /// The matching `}` for the `{` at `open` (or the last token index).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for (j, t) in self.toks.iter().enumerate().skip(open) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Parses the items in `[start, end)` with the given `impl`/`trait`
    /// context.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>, trait_name: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.text(i) {
                "fn" => i = self.item_fn(i, end, owner, trait_name),
                "impl" => i = self.item_impl(i, end),
                "trait" => i = self.item_trait(i, end),
                "struct" => i = self.item_struct(i, end),
                "enum" | "union" => i = self.item_enum(i, end),
                "mod" => {
                    // `mod name { ... }` recurses with no owner; `mod name;`
                    // just advances.
                    if self.text(i + 2) == "{" {
                        let close = self.match_brace(i + 2);
                        self.items(i + 3, close.min(end), None, None);
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                "type" => {
                    // `type Alias = Ty;` — the whole item is type position.
                    let mut j = i + 1;
                    while j < end && self.text(j) != ";" && self.text(j) != "{" {
                        j += 1;
                    }
                    self.mark(i, j);
                    i = j + 1;
                }
                "static" | "const"
                    if self
                        .toks
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Ident && t.text != "fn") =>
                {
                    // `static NAME: Ty = init;` / `const NAME: Ty = init;` —
                    // mark the ascribed type, then let the initializer fall
                    // through to ordinary scanning.
                    let mut j = i + 1;
                    while j < end && !matches!(self.text(j), ":" | "=" | ";") {
                        j += 1;
                    }
                    if self.text(j) == ":" {
                        i = self.skip_type(j + 1, &["=", ";"]);
                    } else {
                        i = j;
                    }
                }
                "let" => i = self.stmt_let(i, end),
                "as" => {
                    // Cast: the following path (with generics) is a type.
                    i = self.cast_type(i + 1, end);
                }
                "::" if self.text(i + 1) == "<" => {
                    // Turbofish: `collect::<Vec<_>>()`.
                    i = self.skip_generics(i + 1);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses `fn name<G>(params) -> Ret where ... { body }` starting at
    /// the `fn` keyword index. Returns the index after the item.
    fn item_fn(
        &mut self,
        fn_tok: usize,
        end: usize,
        owner: Option<&str>,
        trait_name: Option<&str>,
    ) -> usize {
        let name_at = fn_tok + 1;
        let Some(name_tok) = self.toks.get(name_at) else {
            return fn_tok + 1;
        };
        if name_tok.kind != TokKind::Ident {
            // `fn(f64) -> f64` pointer type or malformed input.
            return fn_tok + 1;
        }
        let name = name_tok.text.clone();
        // `pub` visibility: walk back over modifiers.
        let mut vis = fn_tok;
        while vis > 0 && is_modifier(self.text(vis - 1)) {
            vis -= 1;
        }
        let is_pub = self.text(vis) == "pub" && self.text(vis + 1) != "(";

        let mut i = name_at + 1;
        if self.text(i) == "<" {
            i = self.skip_generics(i);
        }
        // Parameter list.
        let mut params = Vec::new();
        if self.text(i) == "(" {
            i = self.params(i, &mut params);
        }
        // Return type.
        let mut ret_ty = String::new();
        if self.text(i) == "->" {
            let start = i + 1;
            i = self.skip_type(start, &["{", ";", "where"]);
            ret_ty = self.type_text(start, i);
        }
        // Where clause.
        if self.text(i) == "where" {
            i = self.skip_type(i + 1, &["{", ";"]);
        }
        // Body or signature-only.
        let body = if self.text(i) == "{" {
            let close = self.match_brace(i);
            Some((i, close))
        } else {
            None
        };
        self.out.fns.push(FnDef {
            name,
            owner: owner.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            is_pub,
            line: self.toks[fn_tok].line,
            fn_tok,
            body,
            params,
            ret_ty,
        });
        if let Some((open, close)) = body {
            // Recurse into the body: nested fns, closures' let-ascriptions,
            // casts, and turbofish all get their type spans marked.
            self.items(open + 1, close.min(end), owner, trait_name);
            return close + 1;
        }
        i + 1
    }

    /// Parses a parenthesized parameter list starting at `open` (`(`).
    /// Returns the index after `)`.
    fn params(&mut self, open: usize, out: &mut Vec<(String, String)>) -> usize {
        let mut i = open + 1;
        let mut depth = 1i32;
        while i < self.toks.len() && depth > 0 {
            match self.text(i) {
                ")" => {
                    depth -= 1;
                    i += 1;
                }
                "(" => {
                    depth += 1;
                    i += 1;
                }
                "self" if depth == 1 => {
                    out.push(("self".to_string(), "Self".to_string()));
                    i += 1;
                }
                ":" if depth == 1 => {
                    // The ident before `:` is the parameter name (skipping
                    // destructuring patterns, whose bindings we ignore).
                    let pname = (open + 1..i)
                        .rev()
                        .map(|j| &self.toks[j])
                        .find(|t| t.kind == TokKind::Ident)
                        .map_or_else(String::new, |t| t.text.clone());
                    let start = i + 1;
                    let stop = self.skip_type(start, &[","]);
                    let ty = self.type_text(start, stop);
                    if !pname.is_empty() {
                        out.push((pname, ty));
                    }
                    i = stop;
                }
                _ => i += 1,
            }
        }
        i
    }

    /// Renders the type span `[start, end)` as compact text.
    fn type_text(&self, start: usize, end: usize) -> String {
        let mut s = String::new();
        for t in &self.toks[start.min(self.toks.len())..end.min(self.toks.len())] {
            if !s.is_empty()
                && t.kind == TokKind::Ident
                && self.toks[start..end].iter().next().is_some()
                && s.chars().next_back().is_some_and(char::is_alphanumeric)
                && t.text.chars().next().is_some_and(char::is_alphanumeric)
            {
                s.push(' ');
            }
            s.push_str(&t.text);
        }
        s
    }

    /// Parses `impl<G> Trait for Type { ... }` / `impl<G> Type { ... }`
    /// starting at the `impl` keyword. Returns the index after the block.
    fn item_impl(&mut self, impl_tok: usize, end: usize) -> usize {
        let mut i = impl_tok + 1;
        if self.text(i) == "<" {
            i = self.skip_generics(i);
        }
        // Header: everything to the block `{` is type position. Find the
        // `for` at zero angle depth, if any.
        let header_start = i;
        let mut for_at = None;
        let mut angle = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle <= 0 => for_at = Some(j),
                "{" | ";" => break,
                _ => {}
            }
            j += 1;
        }
        let open = j;
        self.mark(impl_tok, open);
        // The self type is the last path segment before `<`/`{` of the
        // `for`-part (or of the whole header when there is no `for`).
        let ty_start = for_at.map_or(header_start, |f| f + 1);
        let self_ty = self.last_path_segment(ty_start, open);
        let trait_name = for_at.and_then(|f| self.last_path_segment(header_start, f));
        if self.text(open) == "{" {
            let close = self.match_brace(open);
            self.items(
                open + 1,
                close.min(end),
                self_ty.as_deref(),
                trait_name.as_deref(),
            );
            return close + 1;
        }
        open + 1
    }

    /// The last top-level path-segment identifier in `[start, end)`,
    /// ignoring generic arguments and reference/pointer sigils.
    fn last_path_segment(&self, start: usize, end: usize) -> Option<String> {
        let mut angle = 0i32;
        let mut seg = None;
        for j in start..end.min(self.toks.len()) {
            match self.text(j) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {
                    if angle <= 0 && self.toks[j].kind == TokKind::Ident {
                        let t = &self.toks[j].text;
                        if !matches!(t.as_str(), "dyn" | "mut" | "const" | "where") {
                            seg = Some(t.clone());
                        }
                    }
                }
            }
        }
        seg
    }

    /// Parses `trait Name { ... }` starting at the `trait` keyword.
    fn item_trait(&mut self, trait_tok: usize, end: usize) -> usize {
        let Some(name_tok) = self.toks.get(trait_tok + 1) else {
            return trait_tok + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return trait_tok + 1;
        }
        let name = name_tok.text.clone();
        // Header (generics, supertrait bounds, where clause) to the `{`.
        let mut j = trait_tok + 2;
        while j < end && !matches!(self.text(j), "{" | ";") {
            j += 1;
        }
        self.mark(trait_tok + 2, j);
        if self.text(j) == "{" {
            let close = self.match_brace(j);
            self.items(j + 1, close.min(end), Some(&name), None);
            return close + 1;
        }
        j + 1
    }

    /// Parses `struct Name<G> { fields }` / tuple / unit structs.
    fn item_struct(&mut self, struct_tok: usize, end: usize) -> usize {
        let Some(name_tok) = self.toks.get(struct_tok + 1) else {
            return struct_tok + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return struct_tok + 1;
        }
        let name = name_tok.text.clone();
        let mut i = struct_tok + 2;
        if self.text(i) == "<" {
            i = self.skip_generics(i);
        }
        if self.text(i) == "where" {
            i = self.skip_type(i + 1, &["{", ";", "("]);
        }
        let mut fields = Vec::new();
        match self.text(i) {
            "{" => {
                let close = self.match_brace(i);
                let mut j = i + 1;
                while j < close {
                    if self.text(j) == ":" {
                        let fname = (i + 1..j)
                            .rev()
                            .map(|k| &self.toks[k])
                            .find(|t| t.kind == TokKind::Ident)
                            .map_or_else(String::new, |t| t.text.clone());
                        let start = j + 1;
                        let stop = self.skip_type(start, &[","]);
                        if !fname.is_empty() {
                            fields.push((fname, self.type_text(start, stop)));
                        }
                        j = stop + 1;
                    } else {
                        j += 1;
                    }
                }
                i = close + 1;
            }
            "(" => {
                // Tuple struct: the payload is all type position.
                let mut depth = 0i32;
                let start = i;
                while i < end {
                    match self.text(i) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                self.mark(start, i + 1);
                i += 1;
            }
            _ => i += 1, // unit struct `struct S;`
        }
        self.out.structs.push(StructDef { name, fields });
        i
    }

    /// Parses `enum`/`union` bodies, marking payload types.
    fn item_enum(&mut self, kw_tok: usize, end: usize) -> usize {
        let mut i = kw_tok + 2;
        if self.text(i) == "<" {
            i = self.skip_generics(i);
        }
        if self.text(i) == "where" {
            i = self.skip_type(i + 1, &["{", ";"]);
        }
        if self.text(i) != "{" {
            return i + 1;
        }
        let close = self.match_brace(i);
        let mut j = i + 1;
        while j < close.min(end) {
            match self.text(j) {
                "(" => {
                    // Variant payload tuple: all type position.
                    let mut depth = 0i32;
                    let start = j;
                    while j < close {
                        match self.text(j) {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    self.mark(start, j + 1);
                    j += 1;
                }
                ":" => {
                    // Struct-variant field or discriminant `= n`; treat the
                    // span to `,`/`}` as type position.
                    j = self.skip_type(j + 1, &[",", "}"]);
                }
                _ => j += 1,
            }
        }
        close + 1
    }

    /// Parses a `let` statement's optional type ascription.
    fn stmt_let(&mut self, let_tok: usize, end: usize) -> usize {
        // `let [mut] pat [: Ty] = ...` — scan to `:`/`=`/`;` at depth 0.
        let mut j = let_tok + 1;
        let (mut paren, mut bracket) = (0i32, 0i32);
        while j < end {
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ":" if paren == 0 && bracket == 0 => {
                    return self.skip_type(j + 1, &["=", ";"]);
                }
                "=" | ";" if paren == 0 && bracket == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Marks the type after an `as` cast: a path with optional generics,
    /// references, and pointers. Returns the index after the type.
    fn cast_type(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        // Leading sigils.
        while i < end && matches!(self.text(i), "&" | "*" | "mut" | "const" | "dyn") {
            i += 1;
        }
        // Path segments.
        while i < end {
            if self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident) {
                i += 1;
                if self.text(i) == "::" {
                    i += 1;
                    continue;
                }
                if self.text(i) == "<" {
                    i = self.skip_generics(i);
                }
            }
            break;
        }
        self.mark(start, i);
        i
    }
}

/// Expression keywords that cannot be callee names.
fn is_expr_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "in"
            | "let"
            | "fn"
            | "as"
            | "where"
            | "unsafe"
            | "mut"
            | "ref"
            | "dyn"
            | "impl"
    )
}

/// Collects call sites in the token range `[start, end]`.
fn collect_calls(toks: &[Token], type_pos: &[bool], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || type_pos[i] || is_expr_keyword(&t.text) {
            continue;
        }
        let next = toks.get(i + 1).map_or("", |t| t.text.as_str());
        if next != "(" {
            // Allow one turbofish between name and parens:
            // `name::<T>(...)`.
            if !(next == "::" && toks.get(i + 2).is_some_and(|t| t.text == "<")) {
                continue;
            }
        }
        let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
        if prev == "fn" || prev == "!" {
            continue;
        }
        let is_method = prev == ".";
        let qual = if prev == "::" && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            Some(toks[i - 2].text.clone())
        } else {
            None
        };
        // First argument token: after the `(` (which may follow a
        // turbofish).
        let mut open = i + 1;
        if toks.get(open).is_some_and(|t| t.text == "::") {
            let mut depth = 0i32;
            let mut j = open + 1;
            while j <= end {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
            }
            open = j + 1;
        }
        let str_arg = toks
            .get(open + 1)
            .is_some_and(|t| t.kind == TokKind::StrLit);
        out.push(CallSite {
            name: t.text.clone(),
            qual,
            is_method,
            line: t.line,
            tok: i,
            str_arg,
        });
    }
    out
}

/// Collects macro invocations in the token range `[start, end]`.
fn collect_macros(toks: &[Token], start: usize, end: usize) -> Vec<MacroSite> {
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
            && toks
                .get(i + 2)
                .is_some_and(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
        {
            out.push(MacroSite {
                name: t.text.clone(),
                line: t.line,
                tok: i,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (crate::lexer::Lexed, Parsed) {
        let l = lex(src);
        let p = parse(&l);
        (l, p)
    }

    #[test]
    fn finds_free_and_method_fns() {
        let src = "\
pub fn free(a: f64, b: usize) -> f64 { a }
struct S { x: f64 }
impl S {
    pub fn method(&self, k: u32) -> Interval { Interval::point(1.0) }
    fn private(&self) {}
}
trait T {
    fn sig_only(&self) -> f64;
    fn with_default(&self) -> f64 { 0.0 }
}
impl T for S {
    fn sig_only(&self) -> f64 { 1.0 }
}
";
        let (_, p) = parse_src(src);
        let names: Vec<(String, Option<String>, Option<String>, bool)> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    f.owner.clone(),
                    f.trait_name.clone(),
                    f.is_pub,
                )
            })
            .collect();
        assert_eq!(names.len(), 6, "{names:?}");
        assert_eq!(names[0], ("free".into(), None, None, true));
        assert_eq!(names[1], ("method".into(), Some("S".into()), None, true));
        assert_eq!(names[2], ("private".into(), Some("S".into()), None, false));
        assert_eq!(names[3], ("sig_only".into(), Some("T".into()), None, false));
        assert!(p.fns[3].body.is_none(), "trait signature has no body");
        assert!(p.fns[4].body.is_some(), "default method has a body");
        assert_eq!(
            names[5],
            ("sig_only".into(), Some("S".into()), Some("T".into()), false)
        );
    }

    #[test]
    fn params_and_return_types() {
        let (_, p) =
            parse_src("fn f(x: f64, ys: &[Interval], n: usize) -> Vec<Interval> { Vec::new() }");
        let f = &p.fns[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0], ("x".into(), "f64".into()));
        assert_eq!(f.params[1].0, "ys");
        assert!(f.params[1].1.contains("Interval"));
        assert_eq!(f.params[2], ("n".into(), "usize".into()));
        assert!(f.ret_ty.contains("Vec") && f.ret_ty.contains("Interval"));
    }

    #[test]
    fn trait_bound_plus_is_type_position() {
        let src = "fn f<C: Clone + ?Sized>(c: &C) -> f64 where C: Send + Sync { 1.0 + 2.0 }\n\
                   impl<C: Enclosure + Sync> Foo for Bar<C> {}\n";
        let (l, p) = parse_src(src);
        let plus_flags: Vec<(u32, bool)> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "+")
            .map(|(i, t)| (t.line, p.type_pos[i]))
            .collect();
        // Bounds on line 1 (generics + where) and line 2 (impl header) are
        // type position; the `1.0 + 2.0` in the body is not.
        assert_eq!(
            plus_flags,
            vec![(1, true), (1, true), (1, false), (2, true)],
            "{plus_flags:?}"
        );
    }

    #[test]
    fn let_ascription_and_turbofish_marked() {
        let src = "fn f() { let x: Foo<A + B> = g(); let v = h::<T>(); let y = a < b; }";
        let (l, p) = parse_src(src);
        for (i, t) in l.tokens.iter().enumerate() {
            if t.text == "+" {
                assert!(p.type_pos[i], "ascription bound must be type position");
            }
        }
        // `a < b` must NOT start a generic span.
        let lt = l
            .tokens
            .iter()
            .enumerate()
            .rfind(|(_, t)| t.text == "<")
            .map(|(i, _)| i)
            .expect("comparison token");
        assert!(!p.type_pos[lt], "comparison `<` is not type position");
    }

    #[test]
    fn struct_fields_collected() {
        let (_, p) = parse_src(
            "pub struct TaylorModel { pub poly: Polynomial, pub remainder: Interval, n: usize }",
        );
        let s = &p.structs[0];
        assert_eq!(s.name, "TaylorModel");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0], ("poly".into(), "Polynomial".into()));
        assert_eq!(s.fields[1], ("remainder".into(), "Interval".into()));
        assert_eq!(s.fields[2], ("n".into(), "usize".into()));
    }

    #[test]
    fn calls_and_macros_collected() {
        let src = "\
fn f(v: &[f64]) -> f64 {
    let a = helper(v);
    let b = Interval::point(a);
    let c = v.first().expect(\"non-empty\");
    let d = self.expect(b'x');
    assert!(a > 0.0);
    vec![1, 2]
}
";
        let (l, p) = parse_src(src);
        let f = &p.fns[0];
        let calls = p.calls_in(&l, f);
        let names: Vec<(&str, Option<&str>, bool, bool)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.qual.as_deref(), c.is_method, c.str_arg))
            .collect();
        assert!(names.contains(&("helper", None, false, false)));
        assert!(names.contains(&("point", Some("Interval"), false, false)));
        assert!(names.contains(&("expect", None, true, true)), "{names:?}");
        assert!(names.contains(&("expect", None, true, false)), "{names:?}");
        let macros = p.macros_in(&l, f);
        let mnames: Vec<&str> = macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(mnames, vec!["assert", "vec"]);
    }

    #[test]
    fn nested_fn_and_enclosing_lookup() {
        let src = "fn outer() { fn inner(x: u32) -> u32 { x } inner(3); }";
        let (l, p) = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        let inner_body_tok = l
            .tokens
            .iter()
            .position(|t| t.text == "x" && t.line == 1)
            .expect("x token");
        // The innermost enclosing fn of `x` is `inner`, not `outer`.
        // (First `x` ident inside inner's parens is a param — use the body
        // occurrence.)
        let body_x = (inner_body_tok + 1..l.tokens.len())
            .find(|&i| l.tokens[i].text == "x")
            .expect("body x");
        assert_eq!(
            p.enclosing_fn(body_x).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn impl_trait_for_generic_type() {
        let src = "impl<C: Controller> Verifier<C> for IntervalReach<C> { fn reach(&self) {} }";
        let (_, p) = parse_src(src);
        let f = &p.fns[0];
        assert_eq!(f.owner.as_deref(), Some("IntervalReach"));
        assert_eq!(f.trait_name.as_deref(), Some("Verifier"));
    }

    #[test]
    fn enum_payloads_are_type_position() {
        let src = "enum Repr { Packed(PackedTerms), Boxed(Vec<(Vec<u32>, f64)>) }\n\
                   fn f() -> f64 { 1.0 + 2.0 }";
        let (l, p) = parse_src(src);
        for (i, t) in l.tokens.iter().enumerate() {
            if t.line == 1 && t.kind == TokKind::Ident && t.text == "f64" {
                assert!(p.type_pos[i], "enum payload is type position");
            }
            if t.line == 2 && t.text == "+" {
                assert!(!p.type_pos[i], "body arithmetic is not type position");
            }
        }
    }
}
