//! The zone map: which parts of the workspace each rule applies to.
//!
//! Paths are repo-relative with `/` separators. The default configuration
//! encodes the project's soundness contract (see `DESIGN.md` §4d); tests
//! construct custom configurations pointing at fixture files.

/// How a source file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under some `src/` (rules apply fully).
    Lib,
    /// Binary targets (`src/bin/`, `src/main.rs`): panic/doc rules relaxed.
    Bin,
    /// Tests, examples, benches: only the unsafe audit applies.
    TestLike,
}

/// Classifies a repo-relative path (also extracting the owning crate name).
#[must_use]
pub fn classify(rel_path: &str) -> (FileClass, String) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let krate = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "design-while-verify".to_string()
    };
    let class =
        if parts.contains(&"tests") || parts.contains(&"examples") || parts.contains(&"benches") {
            FileClass::TestLike
        } else if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
            FileClass::Bin
        } else {
            FileClass::Lib
        };
    (class, krate)
}

/// The zone map consulted by the rule passes.
#[derive(Debug, Clone)]
pub struct ZoneConfig {
    /// Files whose float arithmetic must be directed (R1 soundness zones).
    pub float_zone_files: Vec<String>,
    /// Zone files exempt from R1 because they *are* the rounding primitives.
    pub float_primitive_files: Vec<String>,
    /// Designated coefficient-kernel modules (the SIMD zone's compute core):
    /// raw f64 arithmetic is their job, so R1's operator heuristic is waived
    /// there — but the denylisted float methods and the rounding-primitive
    /// containment check (R1#rounding) still apply.
    pub kernel_module_files: Vec<String>,
    /// Crates whose library code must be panic-free (R2).
    pub panic_free_crates: Vec<String>,
    /// Individual files under the R2 panic-freedom contract even though
    /// their crate as a whole is not (e.g. the serve wire-protocol parser,
    /// which decodes attacker-controlled bytes).
    pub panic_free_files: Vec<String>,
    /// Files whose results must be deterministic (R3).
    pub determinism_zone_files: Vec<String>,
    /// Files every function of which is in the R6 no-alloc zone.
    pub no_alloc_files: Vec<String>,
    /// Function names in the R6 no-alloc zone wherever they are defined
    /// (the workspace-arena kernels and the arena flow step).
    pub no_alloc_fns: Vec<String>,
    /// Function-name suffixes placing a function in the R6 no-alloc zone
    /// when its file is listed in `no_alloc_suffix_files`.
    pub no_alloc_fn_suffixes: Vec<String>,
    /// Files whose `_into`/`_in_place`-style kernels join the R6 zone.
    pub no_alloc_suffix_files: Vec<String>,
    /// Type names whose arithmetic operators are sound overloads (interval
    /// and enclosure types): an operand of one of these types discharges
    /// the R1 raw-float-operator obligation.
    pub enclosure_types: Vec<String>,
    /// Crates whose public functions the panic-reachability pass must prove
    /// transitively panic-free.
    pub proof_crates: Vec<String>,
}

impl Default for ZoneConfig {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect();
        Self {
            // The verified enclosure arithmetic: interval boxes, Bernstein
            // range enclosures, Taylor-model remainder bookkeeping, and the
            // SIMD zone around the coefficient kernels (packed polynomial
            // storage, workspaces, and the flowpipe's defect tape).
            float_zone_files: v(&[
                "crates/interval/src/lib.rs",
                "crates/interval/src/boxes.rs",
                "crates/poly/src/bernstein.rs",
                "crates/poly/src/polynomial.rs",
                "crates/poly/src/workspace.rs",
                "crates/taylor/src/model.rs",
                "crates/taylor/src/defect.rs",
                "crates/reach/src/interval_reach.rs",
                "crates/reach/src/portfolio.rs",
            ]),
            // The rounding primitives themselves: one-ulp outward nudges and
            // the widened libm endpoint evaluations.
            float_primitive_files: v(&[
                "crates/interval/src/interval.rs",
                "crates/interval/src/transcendental.rs",
            ]),
            // The vectorized coefficient kernels: the one module whose raw
            // f64 loops are the designated scalar/SIMD compute core.
            kernel_module_files: v(&["crates/poly/src/kernels.rs"]),
            // The verified core: a panic mid-flowpipe would abort a whole
            // training run, so library paths must be Result-carrying.
            panic_free_crates: v(&["interval", "poly", "taylor", "reach", "core", "trace"]),
            // Hostile-input parsers outside the verified crates: the serve
            // frame codec must reject truncated/garbage bytes, never panic.
            panic_free_files: v(&["crates/serve/src/proto.rs"]),
            // Result-bearing parallel/caching code: the bit-identity contract
            // (serial vs parallel, cached vs fresh) forbids iteration-order,
            // wall-clock, and thread-identity dependence. The trace analyzer
            // joins the zone: its reports must be byte-identical at every
            // worker-pool width, so its aggregation must be order-stable.
            determinism_zone_files: v(&[
                "crates/core/src/parallel.rs",
                "crates/reach/src/cache.rs",
                "crates/reach/src/taylor_reach.rs",
                "crates/reach/src/sweep.rs",
                "crates/poly/src/bernstein.rs",
                "crates/poly/src/tables.rs",
                "crates/trace/src/model.rs",
                "crates/trace/src/forest.rs",
                "crates/trace/src/attribution.rs",
                "crates/trace/src/critical.rs",
                "crates/trace/src/folded.rs",
                "crates/trace/src/bill.rs",
                "crates/trace/src/lib.rs",
                "crates/obs/src/recorder.rs",
            ]),
            // The zero-copy hot core (PR 2/6): the coefficient kernels, the
            // workspace-arena in-place polynomial kernels, and the arena
            // flow step must never allocate on the steady-state path.
            no_alloc_files: v(&["crates/poly/src/kernels.rs"]),
            no_alloc_fns: v(&["flow_step_ws"]),
            no_alloc_fn_suffixes: v(&["_into", "_in_place"]),
            no_alloc_suffix_files: v(&[
                "crates/poly/src/polynomial.rs",
                "crates/taylor/src/model.rs",
            ]),
            enclosure_types: v(&[
                "Interval",
                "IntervalBox",
                "Polynomial",
                "TaylorModel",
                "Zonotope",
            ]),
            proof_crates: v(&["interval", "poly", "taylor", "reach"]),
        }
    }
}

impl ZoneConfig {
    /// Whether `rel_path` is in the R1 float-hygiene zone (and neither a
    /// rounding-primitive module nor a designated kernel module).
    #[must_use]
    pub fn in_float_zone(&self, rel_path: &str) -> bool {
        self.float_zone_files.iter().any(|f| f == rel_path)
            && !self.is_rounding_primitive(rel_path)
            && !self.is_kernel_module(rel_path)
    }

    /// Whether `rel_path` is one of the rounding-primitive modules (the only
    /// places `next_up`/`next_down`-style endpoint math may live).
    #[must_use]
    pub fn is_rounding_primitive(&self, rel_path: &str) -> bool {
        self.float_primitive_files.iter().any(|f| f == rel_path)
    }

    /// Whether `rel_path` is a designated coefficient-kernel module.
    #[must_use]
    pub fn is_kernel_module(&self, rel_path: &str) -> bool {
        self.kernel_module_files.iter().any(|f| f == rel_path)
    }

    /// Whether `rel_path` carries the R2 panic-freedom contract: its crate
    /// is listed in `panic_free_crates`, or the file itself is singled out
    /// in `panic_free_files`.
    #[must_use]
    pub fn in_panic_free_crate(&self, rel_path: &str) -> bool {
        let (_, krate) = classify(rel_path);
        self.panic_free_crates.contains(&krate)
            || self.panic_free_files.iter().any(|f| f == rel_path)
    }

    /// Whether `rel_path` is in the R3 determinism zone.
    #[must_use]
    pub fn in_determinism_zone(&self, rel_path: &str) -> bool {
        self.determinism_zone_files.iter().any(|f| f == rel_path)
    }

    /// Whether function `fn_name` defined in `rel_path` is in the R6
    /// no-alloc zone.
    #[must_use]
    pub fn in_no_alloc_zone(&self, rel_path: &str, fn_name: &str) -> bool {
        self.no_alloc_files.iter().any(|f| f == rel_path)
            || self.no_alloc_fns.iter().any(|f| f == fn_name)
            || (self.no_alloc_suffix_files.iter().any(|f| f == rel_path)
                && self
                    .no_alloc_fn_suffixes
                    .iter()
                    .any(|s| fn_name.ends_with(s.as_str())))
    }

    /// Whether `name` is a registered enclosure type (whose operators are
    /// sound overloads, not raw float arithmetic).
    #[must_use]
    pub fn is_enclosure_type(&self, name: &str) -> bool {
        self.enclosure_types.iter().any(|t| t == name)
    }

    /// Whether `rel_path` belongs to a crate under the public-API
    /// panic-reachability proof.
    #[must_use]
    pub fn in_proof_crate(&self, rel_path: &str) -> bool {
        let (_, krate) = classify(rel_path);
        self.proof_crates.contains(&krate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/interval/src/interval.rs"),
            (FileClass::Lib, "interval".to_string())
        );
        assert_eq!(
            classify("crates/bench/src/bin/bench_core.rs").0,
            FileClass::Bin
        );
        assert_eq!(
            classify("crates/poly/tests/properties.rs").0,
            FileClass::TestLike
        );
        assert_eq!(classify("examples/quickstart.rs").0, FileClass::TestLike);
        assert_eq!(
            classify("src/lib.rs"),
            (FileClass::Lib, "design-while-verify".to_string())
        );
    }

    #[test]
    fn default_zones() {
        let z = ZoneConfig::default();
        assert!(z.in_float_zone("crates/interval/src/boxes.rs"));
        assert!(z.in_float_zone("crates/reach/src/interval_reach.rs"));
        assert!(z.in_float_zone("crates/reach/src/portfolio.rs"));
        assert!(!z.in_float_zone("crates/interval/src/interval.rs"));
        assert!(z.in_panic_free_crate("crates/reach/src/cache.rs"));
        assert!(z.in_panic_free_crate("crates/trace/src/forest.rs"));
        assert!(!z.in_panic_free_crate("crates/obs/src/trace.rs"));
        // File-granular R2: the serve codec is in the zone, the rest of
        // the serve crate is not.
        assert!(z.in_panic_free_crate("crates/serve/src/proto.rs"));
        assert!(!z.in_panic_free_crate("crates/serve/src/server.rs"));
        assert!(z.in_determinism_zone("crates/core/src/parallel.rs"));
        assert!(z.in_determinism_zone("crates/trace/src/attribution.rs"));
        assert!(z.in_determinism_zone("crates/obs/src/recorder.rs"));
    }
}
