//! The `dwv-lint` command-line interface.
//!
//! ```text
//! dwv-lint --workspace [--deny all|<rule>[,<rule>]*] [--json] [--quiet]
//! dwv-lint <file.rs>... [--deny ...] [--json]
//! ```
//!
//! The exit code is a bitmask over the denied rules that fired:
//! float-hygiene=1, panic-freedom=2, determinism=4, unsafe-audit=8,
//! doc-coverage=16; malformed annotations (32) always fail.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dwv_lint::{lint_source, walk, Report, Rule, ZoneConfig};

struct Options {
    workspace: bool,
    paths: Vec<PathBuf>,
    denied: Vec<Rule>,
    json: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        paths: Vec::new(),
        denied: Rule::all().to_vec(),
        json: false,
        quiet: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--deny" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| "--deny requires an argument".to_string())?;
                if spec == "all" {
                    opts.denied = Rule::all().to_vec();
                } else {
                    opts.denied = spec
                        .split(',')
                        .map(|id| {
                            Rule::from_id(id.trim())
                                .ok_or_else(|| format!("unknown rule id `{}`", id.trim()))
                        })
                        .collect::<Result<Vec<Rule>, String>>()?;
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dwv-lint (--workspace | <file.rs>...) [--deny all|<rules>] \
                     [--json] [--quiet]"
                        .to_string(),
                );
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or one or more files".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Report, String> {
    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = walk::find_workspace_root(&cwd);
    let zones = ZoneConfig::default();
    let mut report = Report::default();
    if opts.workspace {
        report = dwv_lint::lint_workspace(&root).map_err(|e| format!("workspace walk: {e}"))?;
    }
    for path in &opts.paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            cwd.join(path)
        };
        let rel = abs.strip_prefix(&root).unwrap_or(&abs);
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src =
            fs::read_to_string(&abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        lint_source(&rel, &src, &zones, &mut report);
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("dwv-lint: {msg}");
            return ExitCode::from(64);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("dwv-lint: {msg}");
            return ExitCode::from(65);
        }
    };
    if opts.json {
        print!("{}", report.to_json(&opts.denied));
    } else if !opts.quiet {
        print!("{}", report.to_text(&opts.denied));
    }
    let code = report.exit_code(&opts.denied);
    // Exit codes are a u8; the bitmask tops out at 63 so this cannot clip.
    ExitCode::from(u8::try_from(code).unwrap_or(u8::MAX))
}
