//! The `dwv-lint` command-line interface.
//!
//! ```text
//! dwv-lint --workspace [--deny all|<rule>[,<rule>]*] [--json] [--quiet]
//!          [--threads N | --serial] [--cache] [--why <fn>]
//! dwv-lint <file.rs>... [--deny ...] [--json]
//! ```
//!
//! Workspace runs go through the interprocedural engine (parallel lex /
//! parse / per-file analysis, serial call-graph passes); explicit file
//! arguments are linted standalone with per-file rules only. `--why <fn>`
//! prints the panic-reachability status and call chain of every workspace
//! function with that name instead of a report.
//!
//! The exit code is a bitmask over the denied rules that fired:
//! float-hygiene=1, panic-freedom=2, determinism=4, unsafe-audit=8,
//! doc-coverage=16, no-alloc=64; malformed or unused annotations (32)
//! always fail.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dwv_lint::{lint_source, walk, EngineOptions, Report, Rule, ZoneConfig};

struct Options {
    workspace: bool,
    paths: Vec<PathBuf>,
    denied: Vec<Rule>,
    json: bool,
    quiet: bool,
    threads: Option<usize>,
    serial: bool,
    cache: bool,
    why: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        paths: Vec::new(),
        denied: Rule::all().to_vec(),
        json: false,
        quiet: false,
        threads: None,
        serial: false,
        cache: false,
        why: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--serial" => opts.serial = true,
            "--cache" => opts.cache = true,
            "--threads" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| "--threads requires a count".to_string())?;
                let n: usize = spec
                    .parse()
                    .map_err(|_| format!("invalid thread count `{spec}`"))?;
                if n == 0 {
                    return Err("--threads requires a positive count".to_string());
                }
                opts.threads = Some(n);
            }
            "--why" => {
                i += 1;
                let name = args
                    .get(i)
                    .ok_or_else(|| "--why requires a function name".to_string())?;
                opts.why = Some(name.clone());
            }
            "--deny" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| "--deny requires an argument".to_string())?;
                if spec == "all" {
                    opts.denied = Rule::all().to_vec();
                } else {
                    opts.denied = spec
                        .split(',')
                        .map(|id| {
                            Rule::from_id(id.trim())
                                .ok_or_else(|| format!("unknown rule id `{}`", id.trim()))
                        })
                        .collect::<Result<Vec<Rule>, String>>()?;
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dwv-lint (--workspace | <file.rs>...) [--deny all|<rules>] \
                     [--json] [--quiet] [--threads N | --serial] [--cache] [--why <fn>]"
                        .to_string(),
                );
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if opts.serial && opts.threads.is_some() {
        return Err("--serial and --threads are mutually exclusive".to_string());
    }
    if !opts.workspace && opts.paths.is_empty() && opts.why.is_none() {
        return Err("nothing to lint: pass --workspace, --why <fn>, or files".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Report, String> {
    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = walk::find_workspace_root(&cwd);
    let zones = ZoneConfig::default();
    let mut report = Report::default();
    if opts.workspace {
        let engine_opts = EngineOptions {
            threads: opts.threads,
            serial: opts.serial,
            cache_dir: opts
                .cache
                .then(|| root.join("target").join("dwv-lint-cache")),
        };
        report = dwv_lint::engine::lint_workspace(&root, &engine_opts)
            .map_err(|e| format!("workspace walk: {e}"))?;
    }
    for path in &opts.paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            cwd.join(path)
        };
        let rel = abs.strip_prefix(&root).unwrap_or(&abs);
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src =
            fs::read_to_string(&abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        lint_source(&rel, &src, &zones, &mut report);
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("dwv-lint: {msg}");
            return ExitCode::from(64);
        }
    };
    if let Some(name) = &opts.why {
        let cwd = match env::current_dir() {
            Ok(cwd) => cwd,
            Err(e) => {
                eprintln!("dwv-lint: cannot read cwd: {e}");
                return ExitCode::from(65);
            }
        };
        let root = walk::find_workspace_root(&cwd);
        return match dwv_lint::why_workspace(&root, name) {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dwv-lint: {e}");
                ExitCode::from(65)
            }
        };
    }
    let report = match run(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("dwv-lint: {msg}");
            return ExitCode::from(65);
        }
    };
    if opts.json {
        print!("{}", report.to_json(&opts.denied));
    } else if !opts.quiet {
        print!("{}", report.to_text(&opts.denied));
    }
    let code = report.exit_code(&opts.denied);
    // Exit codes are a u8; the bitmask tops out at 127 so this cannot clip.
    ExitCode::from(u8::try_from(code).unwrap_or(u8::MAX))
}
