//! dwv-lint: the soundness & determinism static-analysis pass for the
//! verified core.
//!
//! A zero-dependency token-level scanner (no `syn` — the build is offline)
//! enforcing the project's soundness contract:
//!
//! | rule            | what it forbids                                      |
//! |-----------------|------------------------------------------------------|
//! | `float-hygiene` | raw `f64` arithmetic / non-directed float methods in soundness zones |
//! | `panic-freedom` | `unwrap`/`expect`/panicking macros/indexing in verified library code |
//! | `determinism`   | iteration-order, wall-clock, thread-identity dependence in result-bearing code |
//! | `unsafe-audit`  | `unsafe` without a `// SAFETY:` comment (plus census) |
//! | `doc-coverage`  | undocumented public items                            |
//!
//! Findings are suppressible only via an inline, reasoned annotation:
//!
//! ```text
//! // dwv-lint: allow(panic-freedom#index) -- bounds established by loop guard
//! ```
//!
//! which the linter records in the report's audit trail. Malformed
//! annotations are findings themselves and always fail the run.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod structure;
pub mod walk;

pub use config::{classify, FileClass, ZoneConfig};
pub use engine::{lint_sources, read_workspace, why_workspace, EngineOptions};
pub use report::{Finding, Report, Rule, Suppression};
pub use rules::lint_source;

use std::io;
use std::path::Path;

/// Lints every source file in the workspace rooted at `root` with the
/// default zone configuration, through the full interprocedural engine
/// (parallel phases at the machine's default width).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    engine::lint_workspace(root, &EngineOptions::default())
}
