//! Structural analysis over the token stream: attribute spans, test-code
//! spans, bracket nesting, and `dwv-lint:` suppression annotations.

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeMap;

/// Per-token structural facts derived in one pass over a [`Lexed`] file.
#[derive(Debug, Default)]
pub struct Structure {
    /// `flags[i]` holds the [`TokenFlags`] of token `i`.
    pub flags: Vec<TokenFlags>,
    /// Line-level suppression annotations, keyed by the source line they
    /// apply to (resolved: a standalone comment targets the next code line).
    pub line_allows: BTreeMap<u32, Vec<Allow>>,
    /// File-level suppression annotations.
    pub file_allows: Vec<Allow>,
    /// Malformed `dwv-lint:` annotations: `(line, problem)`.
    pub bad_annotations: Vec<(u32, String)>,
}

/// Structural facts about one token.
#[derive(Debug, Default, Clone, Copy)]
pub struct TokenFlags {
    /// Inside `#[cfg(test)] mod … { }` or a `#[test]` item body.
    pub in_test: bool,
    /// Inside an attribute `#[…]` / `#![…]`.
    pub in_attr: bool,
    /// `[…]` nesting depth outside attributes (index / array context).
    pub bracket_depth: u32,
}

/// One parsed `dwv-lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id the annotation suppresses (e.g. `panic-freedom`).
    pub rule: String,
    /// Optional sub-pattern after `#` (e.g. `index` in `panic-freedom#index`).
    pub sub: Option<String>,
    /// The justification after `--`.
    pub reason: String,
    /// Source line of the annotation comment itself.
    pub line: u32,
}

/// Rule ids an annotation may name.
pub const RULE_IDS: &[&str] = &[
    "float-hygiene",
    "panic-freedom",
    "determinism",
    "unsafe-audit",
    "doc-coverage",
    "no-alloc",
];

/// Analyzes `lexed`, producing per-token flags and parsed annotations.
#[must_use]
pub fn analyze(lexed: &Lexed) -> Structure {
    let toks = &lexed.tokens;
    let mut flags = vec![TokenFlags::default(); toks.len()];

    mark_attrs(toks, &mut flags);
    mark_brackets(toks, &flags.clone(), &mut flags);
    mark_tests(toks, &mut flags);

    let mut s = Structure {
        flags,
        ..Structure::default()
    };
    parse_annotations(lexed, &mut s);
    s
}

/// Marks tokens inside `#[…]` / `#![…]` attribute spans.
fn mark_attrs(toks: &[Token], flags: &mut [TokenFlags]) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" {
            let open = if toks.get(i + 1).is_some_and(|t| t.text == "[") {
                Some(i + 1)
            } else if toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "[")
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = open {
                let mut depth = 0i32;
                let mut j = open;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for f in flags.iter_mut().take((j + 1).min(toks.len())).skip(i) {
                    f.in_attr = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Computes `[…]` nesting depth, ignoring attribute brackets.
fn mark_brackets(toks: &[Token], attr: &[TokenFlags], flags: &mut [TokenFlags]) {
    let mut depth: u32 = 0;
    for (i, t) in toks.iter().enumerate() {
        if attr[i].in_attr {
            flags[i].bracket_depth = depth;
            continue;
        }
        match t.text.as_str() {
            "[" => {
                flags[i].bracket_depth = depth;
                depth += 1;
            }
            "]" => {
                depth = depth.saturating_sub(1);
                flags[i].bracket_depth = depth;
            }
            _ => flags[i].bracket_depth = depth,
        }
    }
}

/// Marks the body of every item annotated with an attribute that mentions
/// `test` (`#[cfg(test)] mod`, `#[test] fn`, `#[cfg(all(test, …))] …`).
fn mark_tests(toks: &[Token], flags: &mut [TokenFlags]) {
    let mut i = 0;
    while i < toks.len() {
        // Find an attribute span start.
        if toks[i].text != "#" || !flags[i].in_attr {
            i += 1;
            continue;
        }
        // Walk to the end of this attribute span.
        let start = i;
        let mut end = i;
        while end < toks.len() && flags[end].in_attr {
            // Stop at the first `]` that closes this attribute: spans of
            // consecutive attributes are contiguous, so detect the matching
            // close by bracket counting.
            end += 1;
            if toks[end - 1].text == "]" && !brackets_open(toks, start, end) {
                break;
            }
        }
        let mentions_test = toks[start..end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
        i = end;
        if !mentions_test {
            continue;
        }
        // Scan forward to the item body `{ … }`, stopping at `;` (e.g.
        // `#[cfg(test)] use …;` or `mod tests;`).
        let mut j = end;
        let mut paren = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                ";" if paren == 0 => break,
                "{" if paren == 0 => {
                    let close = match_brace(toks, j);
                    for f in flags.iter_mut().take(close + 1).skip(j) {
                        f.in_test = true;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Whether the bracket count over `toks[start..end]` is still open.
fn brackets_open(toks: &[Token], start: usize, end: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[start..end] {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses `dwv-lint:` annotations out of the comment stream.
///
/// Grammar (one annotation per comment):
///
/// ```text
/// // dwv-lint: allow(<rule>[, <rule>]*) -- <reason>
/// // dwv-lint: allow-file(<rule>[, <rule>]*) -- <reason>
/// ```
///
/// where `<rule>` is a rule id, optionally with a `#<sub>` pattern
/// (`panic-freedom#index`). A trailing comment applies to its own line; a
/// standalone comment applies to the next line holding code.
fn parse_annotations(lexed: &Lexed, s: &mut Structure) {
    for c in &lexed.comments {
        // Only a comment that *starts* with the directive is an annotation;
        // prose mentioning `dwv-lint:` mid-sentence is left alone.
        let stripped = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(body) = stripped.strip_prefix("dwv-lint:") else {
            continue;
        };
        let body = body.trim();
        // Prose that merely *begins* with `dwv-lint:` is not an annotation
        // attempt; only `allow`-shaped bodies are parsed (and then policed).
        let (file_scope, rest) = if let Some(r) = body.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = body.strip_prefix("allow") {
            (false, r)
        } else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.find(')') else {
            s.bad_annotations
                .push((c.line, "missing `(` … `)` rule list".to_string()));
            continue;
        };
        if !rest.starts_with('(') {
            s.bad_annotations
                .push((c.line, "missing `(` … `)` rule list".to_string()));
            continue;
        }
        let rules_part = &rest[1..close];
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix("--").map(str::trim) else {
            s.bad_annotations
                .push((c.line, "missing `-- <reason>` justification".to_string()));
            continue;
        };
        if reason.is_empty() {
            s.bad_annotations
                .push((c.line, "empty `-- <reason>` justification".to_string()));
            continue;
        }
        let mut parsed = Vec::new();
        let mut ok = true;
        for spec in rules_part.split(',') {
            let spec = spec.trim();
            let (rule, sub) = match spec.split_once('#') {
                Some((r, sub)) => (r, Some(sub.to_string())),
                None => (spec, None),
            };
            if !RULE_IDS.contains(&rule) {
                s.bad_annotations
                    .push((c.line, format!("unknown rule `{spec}`")));
                ok = false;
                continue;
            }
            parsed.push(Allow {
                rule: rule.to_string(),
                sub,
                reason: reason.to_string(),
                line: c.line,
            });
        }
        if !ok {
            continue;
        }
        if file_scope {
            s.file_allows.extend(parsed);
        } else {
            // Resolve the target line: same line if code shares it,
            // otherwise the next line holding a token.
            let target = if lexed.tokens.iter().any(|t| t.line == c.line) {
                c.line
            } else {
                lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .filter(|&l| l > c.line)
                    .min()
                    .unwrap_or(c.line)
            };
            s.line_allows.entry(target).or_default().extend(parsed);
        }
    }
}

/// Looks up a suppression for `(rule, sub)` at `line`, returning its reason.
///
/// A plain `allow(rule)` covers all sub-patterns of the rule; an
/// `allow(rule#sub)` covers only findings carrying that sub-pattern.
#[must_use]
pub fn suppression<'a>(
    s: &'a Structure,
    rule: &str,
    sub: Option<&str>,
    line: u32,
) -> Option<&'a Allow> {
    let matches = |a: &Allow| {
        a.rule == rule
            && match (&a.sub, sub) {
                (None, _) => true,
                (Some(have), Some(want)) => have == want,
                (Some(_), None) => false,
            }
    };
    if let Some(allows) = s.line_allows.get(&line) {
        if let Some(a) = allows.iter().find(|a| matches(a)) {
            return Some(a);
        }
    }
    s.file_allows.iter().find(|a| matches(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mod_bodies_are_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\n";
        let l = lex(src);
        let s = analyze(&l);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .zip(&s.flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| f.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_fn_attr_marks_body() {
        let src = "#[test]\nfn t() { z.unwrap(); }\nfn lib() { w.unwrap(); }";
        let l = lex(src);
        let s = analyze(&l);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .zip(&s.flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| f.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_use_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse super::*;\nfn lib() { w.unwrap(); }";
        let l = lex(src);
        let s = analyze(&l);
        let f = l
            .tokens
            .iter()
            .zip(&s.flags)
            .find(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| f.in_test);
        assert_eq!(f, Some(false));
    }

    #[test]
    fn attr_tokens_flagged() {
        let src = "#[derive(Debug)]\nstruct S;";
        let l = lex(src);
        let s = analyze(&l);
        let derive = l
            .tokens
            .iter()
            .zip(&s.flags)
            .find(|(t, _)| t.text == "derive")
            .map(|(_, f)| f.in_attr);
        assert_eq!(derive, Some(true));
        let st = l
            .tokens
            .iter()
            .zip(&s.flags)
            .find(|(t, _)| t.text == "struct")
            .map(|(_, f)| f.in_attr);
        assert_eq!(st, Some(false));
    }

    #[test]
    fn bracket_depth_inside_index() {
        let src = "let x = a[i + 1] + b;";
        let l = lex(src);
        let s = analyze(&l);
        let plus_depths: Vec<u32> = l
            .tokens
            .iter()
            .zip(&s.flags)
            .filter(|(t, _)| t.text == "+")
            .map(|(_, f)| f.bracket_depth)
            .collect();
        assert_eq!(plus_depths, vec![1, 0]);
    }

    #[test]
    fn annotations_parse_and_resolve() {
        let src = "\
// dwv-lint: allow(panic-freedom) -- standalone targets next line
let a = x.unwrap();
let b = y.unwrap(); // dwv-lint: allow(panic-freedom#index, float-hygiene) -- trailing
";
        let l = lex(src);
        let s = analyze(&l);
        assert!(s.bad_annotations.is_empty());
        assert!(suppression(&s, "panic-freedom", None, 2).is_some());
        assert!(suppression(&s, "panic-freedom", Some("index"), 3).is_some());
        assert!(suppression(&s, "float-hygiene", None, 3).is_some());
        // Plain allow covers sub-patterns; sub-allow does not cover plain.
        assert!(suppression(&s, "panic-freedom", Some("index"), 2).is_some());
        assert!(suppression(&s, "panic-freedom", None, 3).is_none());
    }

    #[test]
    fn file_allow_and_bad_annotations() {
        let src = "\
// dwv-lint: allow-file(determinism) -- lookup-only map
// dwv-lint: allow(bogus) -- nope
// dwv-lint: allow(panic-freedom)
fn f() {}
";
        let l = lex(src);
        let s = analyze(&l);
        assert!(suppression(&s, "determinism", None, 99).is_some());
        assert_eq!(s.bad_annotations.len(), 2);
        assert!(s.bad_annotations[0].1.contains("bogus"));
        assert!(s.bad_annotations[1].1.contains("reason"));
    }
}
