//! A comment- and string-aware token-level lexer for Rust source.
//!
//! The build environment is offline, so `dwv-lint` cannot use `syn` or any
//! other parser crate; this hand-rolled lexer produces exactly the token
//! stream the rule passes need: identifiers, literals (with the int/float
//! distinction that the float-hygiene rule relies on), punctuation, and a
//! separate comment list (with doc-comment classification) for the
//! suppression-annotation and `SAFETY:` checks.
//!
//! The lexer is deliberately forgiving: on malformed input it degrades to
//! single-character punctuation tokens instead of failing, so a lint run
//! never aborts on a file the compiler itself would reject.

/// The classification of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `self`, `usize`, …).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    IntLit,
    /// A floating-point literal (`1.0`, `1e-9`, `2f64`).
    FloatLit,
    /// A string or byte-string literal (raw forms included).
    StrLit,
    /// A character literal (`'a'`, `'\n'`).
    CharLit,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operators, longest-match (`::`, `->`, `+=`, `+`, …).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body including the delimiters (`// …`, `/* … */`).
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// The output of [`lex`]: tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so greedy matching is correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "->", "=>", "::", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `src` into tokens and comments.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                ch if ch.is_ascii_digit() => self.number(line),
                ch if ch == '_' || ch.is_alphanumeric() => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `////…` is a plain comment; `///` and `//!` are docs.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment { text, line, doc });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        // `/**/` and `/***/`-style separators are not docs.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 5)
            || text.starts_with("/*!");
        self.out.comments.push(Comment { text, line, doc });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` prefixes. Returns false if
    /// the `r`/`b` turns out to start a plain identifier.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            // `b'x'` byte char literal.
            if hashes == 0 && self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
                self.bump();
                self.char_or_lifetime(line);
                return true;
            }
            return false; // identifier like `radius` or `bits`
        }
        let raw = ahead > 1 || self.peek(0) == Some('r');
        let mut text = String::new();
        for _ in 0..=ahead {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' && !raw {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                if hashes == 0 {
                    break;
                }
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    text.push('#');
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
        self.push(TokKind::StrLit, text, line);
        true
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::StrLit, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // Lifetime when the quote is followed by ident chars not closed by a
        // quote (`'a`, `'static`); char literal otherwise (`'a'`, `'\n'`).
        let mut ahead = 1;
        let mut is_lifetime = false;
        if let Some(c) = self.peek(1) {
            if c == '_' || c.is_alphanumeric() {
                let mut j = 2;
                while let Some(n) = self.peek(j) {
                    if n == '_' || n.is_alphanumeric() {
                        j += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(j) != Some('\'') {
                    is_lifetime = true;
                    ahead = j;
                }
            }
        }
        let mut text = String::new();
        if is_lifetime {
            for _ in 0..ahead {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        text.push(self.bump().unwrap_or('\''));
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.push(TokKind::CharLit, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('b') | Some('o') | Some('X'))
        {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::IntLit, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but `1..n` is a range, and `1.method()` is a call.
        if self.peek(0) == Some('.') {
            if let Some(n) = self.peek(1) {
                if n.is_ascii_digit() {
                    float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                } else if n != '.' && !n.is_alphanumeric() && n != '_' {
                    // Trailing-dot float like `1.`
                    float = true;
                    text.push('.');
                    self.bump();
                }
            } else {
                float = true;
                text.push('.');
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                text.push(self.bump().unwrap_or('e'));
                if sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Suffix (`u64`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.contains("f32") || suffix.contains("f64") {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float {
            TokKind::FloatLit
        } else {
            TokKind::IntLit
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self, line: u32) {
        for p in PUNCTS {
            if self.matches_str(p) {
                for _ in 0..p.chars().count() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*p).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }

    fn matches_str(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn numbers_int_vs_float() {
        let ks = kinds("1 1.0 1e-9 0xFF 1_000u64 2f64 1..n 3.5_f32");
        assert_eq!(ks[0], (TokKind::IntLit, "1".into()));
        assert_eq!(ks[1], (TokKind::FloatLit, "1.0".into()));
        assert_eq!(ks[2], (TokKind::FloatLit, "1e-9".into()));
        assert_eq!(ks[3], (TokKind::IntLit, "0xFF".into()));
        assert_eq!(ks[4], (TokKind::IntLit, "1_000u64".into()));
        assert_eq!(ks[5], (TokKind::FloatLit, "2f64".into()));
        // `1..n` must lex as int, range, ident.
        assert_eq!(ks[6], (TokKind::IntLit, "1".into()));
        assert_eq!(ks[7], (TokKind::Punct, "..".into()));
        assert_eq!(ks[8], (TokKind::Ident, "n".into()));
        assert_eq!(ks[9], (TokKind::FloatLit, "3.5_f32".into()));
    }

    #[test]
    fn comments_and_docs() {
        let l = lex("/// doc\n// plain\n//! inner\nfn f() {} /* block */ /** docblock */");
        assert_eq!(l.comments.len(), 5);
        assert!(l.comments[0].doc);
        assert!(!l.comments[1].doc);
        assert!(l.comments[2].doc);
        assert!(!l.comments[3].doc);
        assert!(l.comments[4].doc);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_and_chars_hide_contents() {
        let l = lex(r#"let s = "a + b /* x */"; let c = 'n'; let lt: &'static str = r"raw";"#);
        assert!(l.comments.is_empty());
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::StrLit && t.text.contains("a + b")));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::CharLit));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"quote " inside"#; let t = 1;"##);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::StrLit && t.text.contains("quote")));
        assert!(l.tokens.iter().any(|t| t.text == "1"));
    }

    #[test]
    fn multichar_puncts_greedy() {
        let ks = kinds("a += b; c -> d; e :: f; g..=h");
        assert!(ks.contains(&(TokKind::Punct, "+=".into())));
        assert!(ks.contains(&(TokKind::Punct, "->".into())));
        assert!(ks.contains(&(TokKind::Punct, "::".into())));
        assert!(ks.contains(&(TokKind::Punct, "..=".into())));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert_eq!(l.tokens[0].text, "fn");
    }

    #[test]
    fn lines_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
