//! Wire-protocol fuzz/property tests: codec round-trips, hostile-input
//! rejection without panics, and exact-byte handshake fixtures.

use dwv_serve::proto::{error_code, Frame, FrameBuffer, ProtoError, MAX_FRAME, VERSION};
use dwv_serve::{
    Client, JobEvent, JobKind, JobSpec, JobState, ProblemId, RejectCode, ServeConfig, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// SplitMix64 — the repo's standard deterministic test RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.next() % (1u64 << 62)) // avoid inf/nan-heavy space but keep spread
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn sample_frames(rng: &mut Rng) -> Vec<Frame> {
    vec![
        Frame::Hello { version: VERSION },
        Frame::HelloAck { version: VERSION },
        Frame::Submit {
            tenant: rng.next(),
            job_id: rng.next(),
            deadline_ms: rng.range(10_000) as u32,
            spec: JobSpec {
                problem: ProblemId::Acc,
                kind: JobKind::VerifyLinear {
                    gains: vec![rng.f64(), rng.f64()],
                    grid: 1 + rng.range(4) as u32,
                    samples: 10 + rng.range(100) as u32,
                },
            },
        },
        Frame::Submit {
            tenant: rng.next(),
            job_id: rng.next(),
            deadline_ms: 0,
            spec: JobSpec {
                problem: ProblemId::VanDerPol,
                kind: JobKind::AssessNn {
                    hidden: vec![8],
                    output_scale: 1.0,
                    order: 2,
                    params: (0..10).map(|_| rng.f64()).collect(),
                },
            },
        },
        Frame::Submit {
            tenant: 3,
            job_id: 4,
            deadline_ms: 0,
            spec: JobSpec {
                problem: ProblemId::ThreeDim,
                kind: JobKind::LearnLinear {
                    seed: rng.next(),
                    max_updates: 50,
                    portfolio: rng.range(2) == 0,
                },
            },
        },
        Frame::Submit {
            tenant: 9,
            job_id: 9,
            deadline_ms: 0,
            spec: JobSpec {
                problem: ProblemId::Acc,
                kind: JobKind::AssessLinear {
                    gains: vec![rng.f64(), rng.f64()],
                },
            },
        },
        Frame::Accepted { job_id: rng.next() },
        Frame::Rejected {
            job_id: rng.next(),
            code: RejectCode::Overloaded,
            retry_after_ms: 25,
        },
        Frame::Poll {
            tenant: rng.next(),
            job_id: rng.next(),
        },
        Frame::Status {
            job_id: rng.next(),
            state: JobState::Running,
        },
        Frame::Stream {
            tenant: rng.next(),
            job_id: rng.next(),
        },
        Frame::Event {
            job_id: rng.next(),
            event: JobEvent::Verdict("reach-avoid".to_string()),
        },
        Frame::Event {
            job_id: rng.next(),
            event: JobEvent::Segment {
                index: rng.range(100) as u32,
                t0: rng.f64(),
                t1: rng.f64(),
                bounds: (0..4).map(|_| rng.f64()).collect(),
            },
        },
        Frame::Event {
            job_id: rng.next(),
            event: JobEvent::Report(vec![b'a'; rng.range(64) as usize]),
        },
        Frame::Event {
            job_id: 1,
            event: JobEvent::Failed("broken".to_string()),
        },
        Frame::Event {
            job_id: 1,
            event: JobEvent::Done,
        },
        Frame::Event {
            job_id: 1,
            event: JobEvent::Cancelled,
        },
        Frame::Cancel {
            tenant: rng.next(),
            job_id: rng.next(),
        },
        Frame::Drain,
        Frame::DrainAck {
            queued: rng.range(100) as u32,
            running: rng.range(8) as u32,
        },
        Frame::Error {
            code: error_code::BAD_FRAME,
            message: "nope".to_string(),
        },
    ]
}

#[test]
fn every_frame_round_trips() {
    let mut rng = Rng(0xF00D);
    for round in 0..50 {
        for frame in sample_frames(&mut rng) {
            let body = frame.encode_body();
            let back = Frame::decode_body(&body)
                .unwrap_or_else(|e| panic!("round {round}: {frame:?} failed to decode: {e}"));
            assert_eq!(back, frame, "round {round}");
            // Full wire form through the incremental assembler too.
            let mut fb = FrameBuffer::new();
            fb.feed(&frame.encode());
            assert_eq!(fb.next_frame(), Ok(Some(frame)));
            assert_eq!(fb.next_frame(), Ok(None));
            assert_eq!(fb.pending(), 0);
        }
    }
}

#[test]
fn f64_bit_patterns_survive_the_wire() {
    for bits in [
        0u64,
        f64::to_bits(-0.0),
        f64::to_bits(f64::NAN),
        f64::to_bits(f64::INFINITY),
        f64::to_bits(f64::MIN_POSITIVE),
        0x0000_0000_0000_0001, // subnormal
        f64::to_bits(0.5867),
    ] {
        let frame = Frame::Submit {
            tenant: 1,
            job_id: 1,
            deadline_ms: 0,
            spec: JobSpec {
                problem: ProblemId::Acc,
                kind: JobKind::AssessLinear {
                    gains: vec![f64::from_bits(bits), -2.0],
                },
            },
        };
        let Frame::Submit { spec, .. } = Frame::decode_body(&frame.encode_body()).expect("decodes")
        else {
            panic!("wrong frame kind back");
        };
        let JobKind::AssessLinear { gains } = spec.kind else {
            panic!("wrong kind back");
        };
        assert_eq!(gains[0].to_bits(), bits, "bit pattern {bits:#x} mangled");
    }
}

#[test]
fn every_truncation_of_every_frame_errors_not_panics() {
    let mut rng = Rng(0xBEEF);
    for frame in sample_frames(&mut rng) {
        let body = frame.encode_body();
        for cut in 0..body.len() {
            let sliced = &body[..cut];
            let r = Frame::decode_body(sliced);
            assert!(
                r.is_err(),
                "prefix of {} bytes of {frame:?} decoded as {r:?}",
                cut
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut body = Frame::Drain.encode_body();
    body.push(0xAA);
    assert_eq!(Frame::decode_body(&body), Err(ProtoError::TrailingBytes(1)));
}

#[test]
fn garbage_bytes_never_panic_the_decoder() {
    let mut rng = Rng(0xDEAD_BEEF);
    for _ in 0..2000 {
        let n = rng.range(96) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| (rng.next() & 0xFF) as u8).collect();
        // Any result is fine; a panic is the only failure.
        let _ = Frame::decode_body(&bytes);
        let mut fb = FrameBuffer::new();
        fb.feed(&bytes);
        // Drain until it errors or wants more input.
        while let Ok(Some(_)) = fb.next_frame() {}
    }
}

#[test]
fn oversized_and_zero_length_prefixes_are_rejected_before_buffering() {
    let mut fb = FrameBuffer::new();
    fb.feed(&(MAX_FRAME + 1).to_le_bytes());
    assert_eq!(fb.next_frame(), Err(ProtoError::BadLength(MAX_FRAME + 1)));
    let mut fb = FrameBuffer::new();
    fb.feed(&0u32.to_le_bytes());
    assert_eq!(fb.next_frame(), Err(ProtoError::BadLength(0)));
}

#[test]
fn split_feeds_reassemble() {
    let frame = Frame::Status {
        job_id: 42,
        state: JobState::Done,
    };
    let wire = frame.encode();
    // Feed byte-by-byte: exactly one frame must come out, at the end.
    let mut fb = FrameBuffer::new();
    let mut seen = 0;
    for (i, b) in wire.iter().enumerate() {
        fb.feed(&[*b]);
        match fb.next_frame() {
            Ok(Some(f)) => {
                assert_eq!(i, wire.len() - 1, "frame completed early");
                assert_eq!(f, frame);
                seen += 1;
            }
            Ok(None) => {}
            Err(e) => panic!("byte {i}: {e}"),
        }
    }
    assert_eq!(seen, 1);
}

#[test]
fn hello_with_bad_magic_is_rejected() {
    let good = Frame::Hello { version: VERSION }.encode_body();
    let mut evil = good.clone();
    evil[1] = b'X'; // corrupt first magic byte
    assert_eq!(Frame::decode_body(&evil), Err(ProtoError::BadMagic));
    assert!(Frame::decode_body(&good).is_ok());
}

/// The version-mismatch handshake, pinned to exact bytes on a live server.
#[test]
fn version_mismatch_reply_bytes_are_pinned() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Hello at version 9 — well-formed, wrong version.
    let hello = Frame::Hello { version: 9 }.encode();
    // Fixture: the exact bytes of a v9 Hello under the v1 grammar.
    assert_eq!(
        hello,
        vec![0x07, 0x00, 0x00, 0x00, 0x01, b'D', b'W', b'V', b'S', 0x09, 0x00],
        "Hello wire bytes changed — protocol break"
    );
    stream.write_all(&hello).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read until close");
    // Fixture: Error{code=1, "unsupported protocol version 9; server speaks 1"},
    // then the server closes the connection.
    let msg = b"unsupported protocol version 9; server speaks 1";
    let mut expect = Vec::new();
    let body_len = 1 + 2 + 4 + msg.len();
    expect.extend_from_slice(&(body_len as u32).to_le_bytes());
    expect.push(0x0D); // Error tag
    expect.extend_from_slice(&error_code::VERSION_MISMATCH.to_le_bytes());
    expect.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    expect.extend_from_slice(msg);
    assert_eq!(reply, expect, "version-mismatch reply bytes drifted");
    server.shutdown();
}

/// The happy handshake, pinned to exact bytes.
#[test]
fn hello_ack_bytes_are_pinned() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(&Frame::Hello { version: VERSION }.encode())
        .expect("send");
    let mut ack = [0u8; 7];
    stream.read_exact(&mut ack).expect("ack");
    assert_eq!(
        ack,
        [0x03, 0x00, 0x00, 0x00, 0x02, 0x01, 0x00],
        "HelloAck wire bytes drifted"
    );
    server.shutdown();
}

/// Garbage after a valid handshake must produce a BAD_FRAME error, not a
/// hung or crashed server — and the server must survive to serve the next
/// client.
#[test]
fn mid_session_garbage_gets_error_and_server_survives() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    {
        let mut client = Client::connect(server.addr()).expect("handshake");
        // A length prefix claiming more than MAX_FRAME.
        client
            .send_raw(&(MAX_FRAME + 7).to_le_bytes())
            .expect("send");
        // Server replies Error{BAD_FRAME} and closes; reading a frame sees it.
    }
    // A fresh client still works.
    let mut client = Client::connect(server.addr()).expect("second handshake");
    let state = client.poll(1, 1).expect("poll");
    assert_eq!(state, JobState::Unknown);
    server.shutdown();
}
