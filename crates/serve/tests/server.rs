//! Server lifecycle integration tests: admission control, duplicate
//! detection, cancellation, tenant isolation, and drain semantics — all
//! over real loopback TCP.

use dwv_core::parallel::{CancelToken, WorkerPool};
use dwv_reach::ReachCache;
use dwv_serve::{
    run_job, Client, Frame, JobKind, JobSpec, JobState, ProblemId, RejectCode, ServeConfig, Server,
};
use std::sync::Arc;
use std::time::Duration;

fn acc_verify_spec() -> JobSpec {
    JobSpec {
        problem: ProblemId::Acc,
        kind: JobKind::VerifyLinear {
            gains: vec![0.5867, -2.0],
            grid: 2,
            samples: 100,
        },
    }
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("bind loopback")
}

#[test]
fn served_job_matches_in_process_run() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let spec = acc_verify_spec();
    let reply = client.submit(7, 1, 0, spec.clone()).expect("submit");
    assert!(matches!(reply, Frame::Accepted { job_id: 1 }));
    let served = client.stream_result(7, 1).expect("result");

    let pool = WorkerPool::new(2);
    let cache = Arc::new(ReachCache::new());
    let batch = run_job(&spec, 7, &pool, &cache, &CancelToken::new()).expect("batch run");
    assert_eq!(served.verdict, batch.verdict);
    assert_eq!(served.segments, batch.segments);
    assert_eq!(served.report_csv, batch.report_csv);

    // Poll after completion reports Done.
    assert_eq!(client.poll(7, 1).expect("poll"), JobState::Done);
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_retry_hint_instead_of_buffering() {
    // Zero workers: nothing drains the queue, so capacity is exact.
    let server = start(ServeConfig {
        workers: 0,
        queue_capacity: 2,
        retry_after_ms: 40,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    for job_id in 1..=2 {
        let reply = client
            .submit(1, job_id, 0, acc_verify_spec())
            .expect("submit");
        assert!(
            matches!(reply, Frame::Accepted { .. }),
            "job {job_id}: {reply:?}"
        );
    }
    let reply = client.submit(1, 3, 0, acc_verify_spec()).expect("submit");
    match reply {
        Frame::Rejected {
            job_id,
            code,
            retry_after_ms,
        } => {
            assert_eq!(job_id, 3);
            assert_eq!(code, RejectCode::Overloaded);
            assert_eq!(retry_after_ms, 40, "retry hint must come from config");
        }
        other => panic!("expected Rejected{{Overloaded}}, got {other:?}"),
    }
    // The rejected job must leave no residue: the same id is usable after
    // the queue clears.
    assert_eq!(client.poll(1, 3).expect("poll"), JobState::Unknown);
    server.shutdown();
}

#[test]
fn duplicate_job_ids_are_rejected_per_tenant() {
    let server = start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let first = client.submit(5, 42, 0, acc_verify_spec()).expect("submit");
    assert!(matches!(first, Frame::Accepted { .. }));
    let dup = client.submit(5, 42, 0, acc_verify_spec()).expect("submit");
    assert!(
        matches!(
            dup,
            Frame::Rejected {
                code: RejectCode::DuplicateJob,
                ..
            }
        ),
        "{dup:?}"
    );
    // Same job id under a different tenant is a different job.
    let other_tenant = client.submit(6, 42, 0, acc_verify_spec()).expect("submit");
    assert!(
        matches!(other_tenant, Frame::Accepted { .. }),
        "{other_tenant:?}"
    );
    server.shutdown();
}

#[test]
fn invalid_specs_are_rejected_at_admission() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let bad_specs = vec![
        // Wrong gain count for ACC (needs n_input × n_state = 2).
        JobSpec {
            problem: ProblemId::Acc,
            kind: JobKind::AssessLinear {
                gains: vec![1.0, 2.0, 3.0],
            },
        },
        // VerifyLinear on a non-affine problem.
        JobSpec {
            problem: ProblemId::VanDerPol,
            kind: JobKind::VerifyLinear {
                gains: vec![1.0, 2.0],
                grid: 2,
                samples: 10,
            },
        },
        // NN params not matching the architecture.
        JobSpec {
            problem: ProblemId::VanDerPol,
            kind: JobKind::AssessNn {
                hidden: vec![8],
                output_scale: 1.0,
                order: 2,
                params: vec![0.0; 3],
            },
        },
        // Non-finite output scale.
        JobSpec {
            problem: ProblemId::VanDerPol,
            kind: JobKind::AssessNn {
                hidden: vec![8],
                output_scale: f64::NAN,
                order: 2,
                params: vec![0.0; 33],
            },
        },
    ];
    for (i, spec) in bad_specs.into_iter().enumerate() {
        let reply = client.submit(1, 100 + i as u64, 0, spec).expect("submit");
        assert!(
            matches!(
                reply,
                Frame::Rejected {
                    code: RejectCode::BadSpec,
                    retry_after_ms: 0,
                    ..
                }
            ),
            "spec {i}: {reply:?}"
        );
    }
    server.shutdown();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    let server = start(ServeConfig {
        workers: 0, // never executes, stays Queued
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(2, 9, 0, acc_verify_spec()).expect("submit");
    assert_eq!(client.poll(2, 9).expect("poll"), JobState::Queued);
    assert_eq!(client.cancel(2, 9).expect("cancel"), JobState::Cancelled);
    // Cancellation is terminal and streamable.
    let events = client.stream_events(2, 9).expect("stream");
    assert_eq!(events.len(), 1);
    assert!(events[0].is_terminal());
    // Cancel of an unknown job reports Unknown, not an error.
    assert_eq!(client.cancel(2, 777).expect("cancel"), JobState::Unknown);
    server.shutdown();
}

#[test]
fn deadline_expiry_cancels_queued_jobs() {
    let server = start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(3, 1, 30, acc_verify_spec()).expect("submit");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let state = client.poll(3, 1).expect("poll");
        if state == JobState::Cancelled {
            break;
        }
        assert_eq!(state, JobState::Queued);
        assert!(
            std::time::Instant::now() < deadline,
            "deadline never enforced"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn tenants_share_results_but_not_caches() {
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let spec = acc_verify_spec();
    client.submit(10, 1, 0, spec.clone()).expect("submit");
    client.submit(11, 1, 0, spec).expect("submit");
    let a = client.stream_result(10, 1).expect("tenant 10");
    let b = client.stream_result(11, 1).expect("tenant 11");
    // Identical specs give identical bytes regardless of tenant: caches are
    // isolated (correctness), results are deterministic (parity).
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.segments, b.segments);
    server.shutdown();
}

#[test]
fn drain_rejects_new_work_and_reports_backlog() {
    let server = start(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(4, 1, 0, acc_verify_spec()).expect("submit");
    let (queued, running) = client.drain().expect("drain");
    assert_eq!((queued, running), (1, 0));
    assert!(server.is_draining());
    let reply = client.submit(4, 2, 0, acc_verify_spec()).expect("submit");
    assert!(
        matches!(
            reply,
            Frame::Rejected {
                code: RejectCode::Draining,
                ..
            }
        ),
        "{reply:?}"
    );
    // Forced drain cancels the stuck queued job and reports it.
    let forced = server.drain(Duration::from_millis(50));
    assert_eq!(forced, 1);
    assert_eq!(client.poll(4, 1).expect("poll"), JobState::Cancelled);
    server.shutdown();
}

#[test]
fn concurrent_clients_all_complete() {
    let server = start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .submit(20 + t, 1, 0, acc_verify_spec())
                    .expect("submit");
                client.stream_result(20 + t, 1).expect("result").verdict
            })
        })
        .collect();
    let verdicts: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
    server.shutdown();
}
