//! A small blocking client for the `dwv-serve` protocol.
//!
//! Used by the binary's `--smoke`/`--drain` modes, the parity tests, and
//! the `serve` dwv-check family. One connection, synchronous
//! request/response; [`Client::stream_result`] collects a job's full event
//! stream and reassembles it into a [`JobOutput`] for byte-exact
//! comparison against batch runs.

use crate::job::{JobOutput, SegmentData};
use crate::proto::{read_frame, write_frame, Frame, JobEvent, JobSpec, JobState, VERSION};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects and performs the `Hello`/`HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// Connection errors, or `InvalidData` when the server refuses the
    /// handshake (e.g. version mismatch).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut client = Self { stream };
        write_frame(&mut client.stream, &Frame::Hello { version: VERSION })?;
        match read_frame(&mut client.stream)? {
            Frame::HelloAck { .. } => Ok(client),
            Frame::Error { code, message } => {
                Err(bad_data(format!("handshake refused ({code}): {message}")))
            }
            other => Err(bad_data(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Submits a job; returns the server's `Accepted` or `Rejected` frame.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply.
    pub fn submit(
        &mut self,
        tenant: u64,
        job_id: u64,
        deadline_ms: u32,
        spec: JobSpec,
    ) -> io::Result<Frame> {
        write_frame(
            &mut self.stream,
            &Frame::Submit {
                tenant,
                job_id,
                deadline_ms,
                spec,
            },
        )?;
        match read_frame(&mut self.stream)? {
            reply @ (Frame::Accepted { .. } | Frame::Rejected { .. }) => Ok(reply),
            other => Err(bad_data(format!("unexpected submit reply: {other:?}"))),
        }
    }

    /// Polls a job's lifecycle state.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply.
    pub fn poll(&mut self, tenant: u64, job_id: u64) -> io::Result<JobState> {
        write_frame(&mut self.stream, &Frame::Poll { tenant, job_id })?;
        match read_frame(&mut self.stream)? {
            Frame::Status { state, .. } => Ok(state),
            other => Err(bad_data(format!("unexpected poll reply: {other:?}"))),
        }
    }

    /// Cancels a job; returns its state after the cancel took effect.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply.
    pub fn cancel(&mut self, tenant: u64, job_id: u64) -> io::Result<JobState> {
        write_frame(&mut self.stream, &Frame::Cancel { tenant, job_id })?;
        match read_frame(&mut self.stream)? {
            Frame::Status { state, .. } => Ok(state),
            other => Err(bad_data(format!("unexpected cancel reply: {other:?}"))),
        }
    }

    /// Asks the server to drain; returns `(queued, running)` at the instant
    /// the drain started.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply.
    pub fn drain(&mut self) -> io::Result<(u32, u32)> {
        write_frame(&mut self.stream, &Frame::Drain)?;
        match read_frame(&mut self.stream)? {
            Frame::DrainAck { queued, running } => Ok((queued, running)),
            other => Err(bad_data(format!("unexpected drain reply: {other:?}"))),
        }
    }

    /// Streams a job until its terminal event, returning every event in
    /// order. An `Unknown` status comes back as `InvalidData`.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` for unknown jobs/replies.
    pub fn stream_events(&mut self, tenant: u64, job_id: u64) -> io::Result<Vec<JobEvent>> {
        write_frame(&mut self.stream, &Frame::Stream { tenant, job_id })?;
        let mut events = Vec::new();
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Event { event, .. } => {
                    let terminal = event.is_terminal();
                    events.push(event);
                    if terminal {
                        return Ok(events);
                    }
                }
                Frame::Status {
                    state: JobState::Unknown,
                    ..
                } => return Err(bad_data("job unknown".to_string())),
                other => return Err(bad_data(format!("unexpected stream reply: {other:?}"))),
            }
        }
    }

    /// Streams a job and reassembles the events into the deterministic
    /// [`JobOutput`] the batch path produces for the same spec.
    ///
    /// # Errors
    ///
    /// Transport errors; `Other` when the job failed or was cancelled.
    pub fn stream_result(&mut self, tenant: u64, job_id: u64) -> io::Result<JobOutput> {
        let events = self.stream_events(tenant, job_id)?;
        reassemble(&events).map_err(io::Error::other)
    }

    /// Sends raw bytes down the connection (protocol-fuzz helper).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }
}

/// Rebuilds a [`JobOutput`] from a terminal event stream.
///
/// # Errors
///
/// A description when the stream ended in `Failed`/`Cancelled` or was
/// malformed (no verdict, no terminal event).
pub fn reassemble(events: &[JobEvent]) -> Result<JobOutput, String> {
    let mut verdict: Option<String> = None;
    let mut segments: Vec<SegmentData> = Vec::new();
    let mut report_csv: Option<Vec<u8>> = None;
    let mut done = false;
    for event in events {
        match event {
            JobEvent::Verdict(v) => verdict = Some(v.clone()),
            JobEvent::Segment {
                index,
                t0,
                t1,
                bounds,
            } => segments.push(SegmentData {
                index: *index,
                t0: *t0,
                t1: *t1,
                bounds: bounds.clone(),
            }),
            JobEvent::Report(bytes) => report_csv = Some(bytes.clone()),
            JobEvent::Done => {
                done = true;
                break;
            }
            JobEvent::Failed(m) => return Err(format!("job failed: {m}")),
            JobEvent::Cancelled => return Err("job cancelled".to_string()),
        }
    }
    if !done {
        return Err("stream ended without a terminal event".to_string());
    }
    verdict
        .map(|verdict| JobOutput {
            verdict,
            segments,
            report_csv,
        })
        .ok_or_else(|| "stream completed without a verdict".to_string())
}
