//! The `dwv-serve` binary: server mode plus tiny client modes for CI.
//!
//! ```sh
//! dwv-serve [--addr 127.0.0.1:4777] [--workers N] [--queue-cap N]
//!           [--pool-threads N] [--addr-file PATH]
//! dwv-serve --smoke ADDR    # submit one ACC verify job, print the verdict
//! dwv-serve --drain ADDR    # ask a running server to drain and exit
//! ```
//!
//! In server mode the process serves until a client sends `Drain`, then
//! finishes in-flight work (force-cancelling after a grace period) and
//! exits 0 — the contract `ci.sh --all`'s forced-drain gate checks.

use dwv_serve::{Client, JobKind, JobSpec, ProblemId, ServeConfig, Server};
use std::io::Write;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("dwv-serve: {msg}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => v,
        _ => fail(&format!("{flag} needs a valid value")),
    }
}

fn smoke(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect {addr}: {e}")),
    };
    let spec = JobSpec {
        problem: ProblemId::Acc,
        kind: JobKind::VerifyLinear {
            gains: vec![0.5867, -2.0],
            grid: 2,
            samples: 100,
        },
    };
    if let Err(e) = client.submit(0xC1, 1, 0, spec) {
        fail(&format!("submit: {e}"));
    }
    match client.stream_result(0xC1, 1) {
        Ok(out) => println!("smoke verdict: {}", out.verdict),
        Err(e) => fail(&format!("stream: {e}")),
    }
}

fn drain(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect {addr}: {e}")),
    };
    match client.drain() {
        Ok((queued, running)) => {
            println!("drain started: {queued} queued, {running} running");
        }
        Err(e) => fail(&format!("drain: {e}")),
    }
}

fn main() {
    let mut args = std::env::args();
    let _bin = args.next();
    let mut cfg = ServeConfig::default();
    let mut addr_file: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse_flag(&mut args, "--addr"),
            "--workers" => cfg.workers = parse_flag(&mut args, "--workers"),
            "--queue-cap" => cfg.queue_capacity = parse_flag(&mut args, "--queue-cap"),
            "--pool-threads" => cfg.pool_threads = parse_flag(&mut args, "--pool-threads"),
            "--addr-file" => addr_file = Some(parse_flag(&mut args, "--addr-file")),
            "--smoke" => {
                let addr: String = parse_flag(&mut args, "--smoke");
                smoke(&addr);
                return;
            }
            "--drain" => {
                let addr: String = parse_flag(&mut args, "--drain");
                drain(&addr);
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: dwv-serve [--addr A] [--workers N] [--queue-cap N] \
                     [--pool-threads N] [--addr-file PATH] | --smoke ADDR | --drain ADDR"
                );
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let tracing = dwv_obs::init_from_env();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => fail(&format!("bind: {e}")),
    };
    println!("dwv-serve listening on {}", server.addr());
    if let Some(path) = addr_file {
        // CI starts us with port 0 and reads the real address from here.
        match std::fs::File::create(&path).and_then(|mut f| {
            writeln!(f, "{}", server.addr())?;
            f.flush()
        }) {
            Ok(()) => {}
            Err(e) => fail(&format!("--addr-file {path}: {e}")),
        }
    }
    let forced = server.wait_for_drain(Duration::from_secs(5));
    println!("drained ({forced} jobs force-cancelled)");
    server.shutdown();
    if tracing {
        dwv_obs::flush();
    }
}
