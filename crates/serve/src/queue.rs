//! Bounded admission queue with batch-aware dequeue.
//!
//! The backpressure contract of the server lives here: the queue holds at
//! most `capacity` jobs, [`AdmissionQueue::try_push`] fails *immediately*
//! when full (the connection layer turns that into a
//! `Rejected{Overloaded, retry_after}` frame), and nothing in the server
//! ever buffers submissions anywhere else. Memory for pending work is
//! bounded by construction, not by hope.
//!
//! [`AdmissionQueue::pop_batch`] dequeues up to `max_batch` jobs sharing a
//! batch key (tenant, problem, kind) in FIFO-of-first-match order: the
//! oldest job decides the batch, and compatible jobs behind it join.
//! Workers then run a batch back-to-back on the same warm per-tenant cache
//! shard — that is what "batching compatible verifier calls" buys.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Identifies one job: `(tenant, job_id)`.
pub type JobKey = (u64, u64);

/// Groups batch-compatible jobs: `(tenant, problem_tag, kind_tag)`.
pub type BatchKey = (u64, u8, u8);

/// The queue is at capacity; the submission must be rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

#[derive(Debug, Default)]
struct Inner {
    entries: VecDeque<(JobKey, BatchKey)>,
}

/// A bounded FIFO of admitted-but-unstarted jobs.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` jobs (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a job, returning the new depth — or [`QueueFull`] without
    /// blocking, without buffering.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue already holds `capacity` jobs.
    pub fn try_push(&self, key: JobKey, batch: BatchKey) -> Result<usize, QueueFull> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.entries.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.entries.push_back((key, batch));
        let depth = inner.entries.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Dequeues up to `max_batch` jobs sharing the oldest entry's batch
    /// key. Blocks up to `timeout` for the queue to become non-empty;
    /// returns an empty vec on timeout (callers re-check shutdown flags and
    /// loop).
    #[must_use]
    pub fn pop_batch(&self, max_batch: usize, timeout: Duration) -> Vec<JobKey> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.entries.is_empty() {
            let (guard, _timed_out) = self
                .cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
        let Some(&(_, lead_batch)) = inner.entries.front() else {
            return Vec::new();
        };
        let max = max_batch.max(1);
        let mut picked = Vec::with_capacity(max);
        let mut kept = VecDeque::with_capacity(inner.entries.len());
        for (key, batch) in inner.entries.drain(..) {
            if picked.len() < max && batch == lead_batch {
                picked.push(key);
            } else {
                kept.push_back((key, batch));
            }
        }
        inner.entries = kept;
        picked
    }

    /// Removes a specific pending job (used by cancel and deadline expiry).
    /// Returns whether it was still queued.
    pub fn remove(&self, key: JobKey) -> bool {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = inner.entries.len();
        inner.entries.retain(|(k, _)| *k != key);
        before != inner.entries.len()
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wakes every blocked [`AdmissionQueue::pop_batch`] (shutdown path).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(1);

    #[test]
    fn rejects_when_full_instead_of_buffering() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push((1, 1), (1, 0, 0)), Ok(1));
        assert_eq!(q.try_push((1, 2), (1, 0, 0)), Ok(2));
        assert_eq!(q.try_push((1, 3), (1, 0, 0)), Err(QueueFull));
        assert_eq!(q.len(), 2, "a rejected push must not grow the queue");
    }

    #[test]
    fn batches_group_by_key_in_fifo_order() {
        let q = AdmissionQueue::new(16);
        // Tenant 1 ACC verifies interleaved with tenant 2 work.
        let _ = q.try_push((1, 10), (1, 0, 0));
        let _ = q.try_push((2, 20), (2, 0, 0));
        let _ = q.try_push((1, 11), (1, 0, 0));
        let _ = q.try_push((1, 12), (1, 0, 1));
        let batch = q.pop_batch(8, T);
        assert_eq!(batch, vec![(1, 10), (1, 11)], "same-key jobs batch");
        assert_eq!(q.pop_batch(8, T), vec![(2, 20)]);
        assert_eq!(q.pop_batch(8, T), vec![(1, 12)]);
        assert!(q.is_empty());
    }

    #[test]
    fn batch_size_is_capped() {
        let q = AdmissionQueue::new(16);
        for i in 0..6 {
            let _ = q.try_push((1, i), (1, 0, 0));
        }
        assert_eq!(q.pop_batch(4, T).len(), 4);
        assert_eq!(q.pop_batch(4, T).len(), 2);
    }

    #[test]
    fn remove_unqueues_pending_jobs() {
        let q = AdmissionQueue::new(4);
        let _ = q.try_push((1, 1), (1, 0, 0));
        assert!(q.remove((1, 1)));
        assert!(!q.remove((1, 1)), "second remove finds nothing");
        assert!(q.pop_batch(4, T).is_empty());
    }

    #[test]
    fn pop_times_out_empty() {
        let q = AdmissionQueue::new(4);
        assert!(q.pop_batch(4, Duration::from_millis(5)).is_empty());
    }
}
