//! The job server: accept loop, connection handlers, worker threads,
//! deadline timer, and graceful drain.
//!
//! # Threading model
//!
//! One nonblocking accept loop, one handler thread per connection, a
//! thread-per-core worker pack draining the [`AdmissionQueue`], and a 20 ms
//! deadline timer. Workers run whole jobs; each job's *internal* fan-out
//! (gradient probes, cell sweeps) runs on a [`WorkerPool`], so results are
//! bit-identical to batch runs at any width.
//!
//! # Drain semantics
//!
//! `Drain` (frame or [`Server::drain`]) flips the draining flag: new
//! submissions are rejected with `Rejected{Draining}`, queued and running
//! jobs finish normally. After `force_after`, still-unfinished jobs are
//! cancelled through their [`CancelToken`]s (forced drain). [`Server::shutdown`]
//! then stops the accept loop, wakes every waiter, and joins all threads.

use crate::job::{self, JobError};
use crate::proto::{
    error_code, Frame, FrameBuffer, JobEvent, JobSpec, JobState, RejectCode, VERSION,
};
use crate::queue::{AdmissionQueue, JobKey};
use dwv_core::parallel::CancelToken;
use dwv_core::WorkerPool;
use dwv_reach::ShardedReachCache;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads draining the job queue (thread-per-core default).
    /// `0` runs the server admission-only — jobs queue but never execute —
    /// which tests use to exercise backpressure deterministically.
    pub workers: usize,
    /// Admission-queue capacity — the backpressure bound.
    pub queue_capacity: usize,
    /// Max jobs per worker batch (compatible jobs share a warm cache).
    pub max_batch: usize,
    /// Retry hint attached to `Overloaded`/`Draining` rejections.
    pub retry_after_ms: u32,
    /// Width of each job's internal [`WorkerPool`].
    pub pool_threads: usize,
    /// Connection read poll interval (shutdown responsiveness).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
            queue_capacity: 64,
            max_batch: 4,
            retry_after_ms: 25,
            pool_threads: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get),
            read_timeout: Duration::from_millis(50),
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    events: Vec<JobEvent>,
    cancel: CancelToken,
    deadline: Option<Instant>,
}

#[derive(Debug, Default)]
struct JobTable {
    entries: HashMap<JobKey, JobEntry>,
}

struct Shared {
    cfg: ServeConfig,
    jobs: Mutex<JobTable>,
    jobs_cv: Condvar,
    queue: AdmissionQueue,
    caches: ShardedReachCache,
    draining: AtomicBool,
    shutdown: AtomicBool,
    running: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn obs_queue_depth(&self) {
        if dwv_obs::enabled() {
            dwv_obs::gauge("serve.queue_depth").set(self.queue.len() as f64);
        }
    }

    fn reject(&self, reason: &'static str) {
        if dwv_obs::enabled() {
            dwv_obs::counter("serve.rejections").inc();
            dwv_obs::counter(match reason {
                "overloaded" => "serve.rejections.overloaded",
                "draining" => "serve.rejections.draining",
                "duplicate" => "serve.rejections.duplicate",
                _ => "serve.rejections.bad_spec",
            })
            .inc();
        }
    }
}

/// A running server. Dropping it does *not* stop it — call
/// [`Server::shutdown`] (tests) or let the binary's drain loop own it.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr)
            .field("draining", &self.is_draining())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            cfg,
            jobs: Mutex::new(JobTable::default()),
            jobs_cv: Condvar::new(),
            caches: ShardedReachCache::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::new();
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&s, &listener)));
        }
        for _ in 0..workers {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&s)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || deadline_loop(&s)));
        }
        Ok(Self {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a drain has been initiated (by frame or call).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs currently executing.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Initiates a drain and waits for in-flight work to finish.
    ///
    /// Rejects new submissions immediately; waits up to `force_after` for
    /// the queue to empty and running jobs to complete, then *cancels*
    /// everything still unfinished and waits (briefly) for the workers to
    /// observe the tokens. Returns the number of jobs that had to be
    /// force-cancelled.
    pub fn drain(&self, force_after: Duration) -> usize {
        let _span = dwv_obs::span("serve.drain");
        if dwv_obs::enabled() {
            dwv_obs::counter("serve.drain").inc();
        }
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.notify_all();
        let deadline = Instant::now() + force_after;
        while Instant::now() < deadline {
            if self.shared.queue.is_empty() && self.running() == 0 {
                return 0;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Forced drain: cancel whatever is left.
        let mut forced = 0usize;
        {
            let mut jobs = self
                .shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (key, entry) in &mut jobs.entries {
                match entry.state {
                    JobState::Queued => {
                        self.shared.queue.remove(*key);
                        entry.cancel.cancel();
                        entry.state = JobState::Cancelled;
                        entry.events.push(JobEvent::Cancelled);
                        forced += 1;
                    }
                    JobState::Running => {
                        entry.cancel.cancel();
                        forced += 1;
                    }
                    _ => {}
                }
            }
        }
        self.shared.jobs_cv.notify_all();
        // Give running jobs a moment to observe their tokens.
        let grace = Instant::now() + Duration::from_secs(10);
        while self.running() > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(5));
        }
        forced
    }

    /// Stops everything and joins all threads. Call after [`Server::drain`]
    /// for a graceful exit; calling it cold is an abrupt (but clean) stop
    /// for tests.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.notify_all();
        self.shared.jobs_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns = {
            let mut guard = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for c in conns {
            let _ = c.join();
        }
    }

    /// Blocks until a peer initiates a drain (the binary's main loop),
    /// then performs the graceful-then-forced drain and returns the forced
    /// count. The caller should then call [`Server::shutdown`].
    pub fn wait_for_drain(&self, force_after: Duration) -> usize {
        while !self.is_draining() && !self.shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain(force_after)
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if dwv_obs::enabled() {
                    dwv_obs::counter("serve.accept").inc();
                }
                let s = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let _ = handle_connection(&s, stream);
                });
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(handle);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let pool = WorkerPool::new(shared.cfg.pool_threads);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let batch = shared
            .queue
            .pop_batch(shared.cfg.max_batch, Duration::from_millis(50));
        if batch.is_empty() {
            continue;
        }
        shared.obs_queue_depth();
        if dwv_obs::enabled() {
            dwv_obs::histogram("serve.batch_size").record(batch.len() as f64);
        }
        for key in batch {
            run_one(shared, &pool, key);
        }
    }
}

fn run_one(shared: &Arc<Shared>, pool: &WorkerPool, key: JobKey) {
    let (spec, cancel) = {
        let mut jobs = shared
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(entry) = jobs.entries.get_mut(&key) else {
            return;
        };
        if entry.state != JobState::Queued {
            return; // cancelled (or expired) while waiting
        }
        entry.state = JobState::Running;
        (entry.spec.clone(), entry.cancel.clone())
    };
    shared.running.fetch_add(1, Ordering::AcqRel);
    let (tenant, _) = key;
    let cache = shared.caches.shard(tenant);
    let result = job::run_job(&spec, tenant, pool, &cache, &cancel);
    let mut jobs = shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(entry) = jobs.entries.get_mut(&key) {
        match result {
            Ok(output) => {
                entry.events.push(JobEvent::Verdict(output.verdict));
                for seg in output.segments {
                    entry.events.push(JobEvent::Segment {
                        index: seg.index,
                        t0: seg.t0,
                        t1: seg.t1,
                        bounds: seg.bounds,
                    });
                }
                if let Some(csv) = output.report_csv {
                    entry.events.push(JobEvent::Report(csv));
                }
                entry.events.push(JobEvent::Done);
                entry.state = JobState::Done;
            }
            Err(JobError::Cancelled) => {
                entry.events.push(JobEvent::Cancelled);
                entry.state = JobState::Cancelled;
            }
            Err(e @ JobError::Invalid(_)) => {
                entry.events.push(JobEvent::Failed(e.to_string()));
                entry.state = JobState::Failed;
            }
        }
    }
    drop(jobs);
    shared.running.fetch_sub(1, Ordering::AcqRel);
    shared.jobs_cv.notify_all();
}

fn deadline_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
        let now = Instant::now();
        let mut expired_queued: Vec<JobKey> = Vec::new();
        {
            let mut jobs = shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (key, entry) in &mut jobs.entries {
                let Some(deadline) = entry.deadline else {
                    continue;
                };
                if now < deadline {
                    continue;
                }
                match entry.state {
                    JobState::Queued => {
                        entry.cancel.cancel();
                        entry.state = JobState::Cancelled;
                        entry.events.push(JobEvent::Cancelled);
                        expired_queued.push(*key);
                    }
                    JobState::Running => entry.cancel.cancel(),
                    _ => {}
                }
            }
        }
        for key in &expired_queued {
            shared.queue.remove(*key);
        }
        if !expired_queued.is_empty() {
            shared.obs_queue_depth();
            shared.jobs_cv.notify_all();
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    crate::proto::write_frame(stream, frame)
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) -> std::io::Result<()> {
    let _span = dwv_obs::span("serve.conn");
    stream.set_read_timeout(Some(shared.cfg.read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true).ok();
    let mut buf = FrameBuffer::new();
    let mut scratch = [0u8; 4096];
    // Handshake: the first frame must be a well-formed Hello at our version.
    let hello = loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                buf.feed(scratch.get(..n).unwrap_or_default());
                match buf.next_frame() {
                    Ok(Some(frame)) => break frame,
                    Ok(None) => {}
                    Err(e) => {
                        let _ = write_frame(
                            &mut stream,
                            &Frame::Error {
                                code: error_code::BAD_HANDSHAKE,
                                message: e.to_string(),
                            },
                        );
                        return Ok(());
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    };
    match hello {
        Frame::Hello { version } if version == VERSION => {
            write_frame(&mut stream, &Frame::HelloAck { version: VERSION })?;
        }
        Frame::Hello { version } => {
            // Exact bytes pinned by tests/protocol.rs fixtures.
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    code: error_code::VERSION_MISMATCH,
                    message: format!("unsupported protocol version {version}; server speaks 1"),
                },
            );
            return Ok(());
        }
        _ => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    code: error_code::BAD_HANDSHAKE,
                    message: "expected Hello".to_string(),
                },
            );
            return Ok(());
        }
    }
    // Session loop.
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                buf.feed(scratch.get(..n).unwrap_or_default());
                loop {
                    match buf.next_frame() {
                        Ok(Some(frame)) => dispatch(shared, &mut stream, frame)?,
                        Ok(None) => break,
                        Err(e) => {
                            let _ = write_frame(
                                &mut stream,
                                &Frame::Error {
                                    code: error_code::BAD_FRAME,
                                    message: e.to_string(),
                                },
                            );
                            return Ok(());
                        }
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Ok(()),
        }
    }
}

fn dispatch(shared: &Arc<Shared>, stream: &mut TcpStream, frame: Frame) -> std::io::Result<()> {
    match frame {
        Frame::Submit {
            tenant,
            job_id,
            deadline_ms,
            spec,
        } => {
            let reply = admit(shared, tenant, job_id, deadline_ms, spec);
            write_frame(stream, &reply)
        }
        Frame::Poll { tenant, job_id } => {
            let state = job_state(shared, (tenant, job_id));
            write_frame(stream, &Frame::Status { job_id, state })
        }
        Frame::Cancel { tenant, job_id } => {
            let state = cancel_job(shared, (tenant, job_id));
            write_frame(stream, &Frame::Status { job_id, state })
        }
        Frame::Stream { tenant, job_id } => stream_job(shared, stream, (tenant, job_id)),
        Frame::Drain => {
            shared.draining.store(true, Ordering::Release);
            if dwv_obs::enabled() {
                dwv_obs::counter("serve.drain").inc();
            }
            shared.queue.notify_all();
            let ack = Frame::DrainAck {
                queued: u32::try_from(shared.queue.len()).unwrap_or(u32::MAX),
                running: u32::try_from(shared.running.load(Ordering::Acquire)).unwrap_or(u32::MAX),
            };
            write_frame(stream, &ack)
        }
        _ => write_frame(
            stream,
            &Frame::Error {
                code: error_code::BAD_FRAME,
                message: "unexpected frame direction".to_string(),
            },
        ),
    }
}

fn admit(shared: &Arc<Shared>, tenant: u64, job_id: u64, deadline_ms: u32, spec: JobSpec) -> Frame {
    let retry = shared.cfg.retry_after_ms;
    if shared.draining.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
        shared.reject("draining");
        return Frame::Rejected {
            job_id,
            code: RejectCode::Draining,
            retry_after_ms: retry,
        };
    }
    if let Err(e) = job::validate(&spec) {
        shared.reject("bad_spec");
        let _ = e;
        return Frame::Rejected {
            job_id,
            code: RejectCode::BadSpec,
            retry_after_ms: 0,
        };
    }
    let key: JobKey = (tenant, job_id);
    let batch = spec.batch_key(tenant);
    {
        let mut jobs = shared
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if jobs.entries.contains_key(&key) {
            drop(jobs);
            shared.reject("duplicate");
            return Frame::Rejected {
                job_id,
                code: RejectCode::DuplicateJob,
                retry_after_ms: 0,
            };
        }
        // Reserve the key *before* queueing so a racing duplicate submit
        // on another connection cannot double-enqueue.
        jobs.entries.insert(
            key,
            JobEntry {
                spec,
                state: JobState::Queued,
                events: Vec::new(),
                cancel: CancelToken::new(),
                deadline: (deadline_ms > 0)
                    .then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms))),
            },
        );
    }
    match shared.queue.try_push(key, batch) {
        Ok(_depth) => {
            shared.obs_queue_depth();
            if dwv_obs::enabled() {
                dwv_obs::counter("serve.submitted").inc();
            }
            Frame::Accepted { job_id }
        }
        Err(_) => {
            // Roll the reservation back: the job was never admitted.
            shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entries
                .remove(&key);
            shared.reject("overloaded");
            Frame::Rejected {
                job_id,
                code: RejectCode::Overloaded,
                retry_after_ms: retry,
            }
        }
    }
}

fn job_state(shared: &Arc<Shared>, key: JobKey) -> JobState {
    shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .entries
        .get(&key)
        .map_or(JobState::Unknown, |e| e.state)
}

fn cancel_job(shared: &Arc<Shared>, key: JobKey) -> JobState {
    // Queue first, then jobs — never nested — so there is no lock-order
    // cycle with the worker's pop-then-mark sequence.
    let was_queued = shared.queue.remove(key);
    let mut jobs = shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(entry) = jobs.entries.get_mut(&key) else {
        return JobState::Unknown;
    };
    entry.cancel.cancel();
    if entry.state == JobState::Queued && was_queued {
        entry.state = JobState::Cancelled;
        entry.events.push(JobEvent::Cancelled);
    }
    let state = entry.state;
    drop(jobs);
    shared.obs_queue_depth();
    shared.jobs_cv.notify_all();
    state
}

fn stream_job(shared: &Arc<Shared>, stream: &mut TcpStream, key: JobKey) -> std::io::Result<()> {
    let (_, job_id) = key;
    {
        let jobs = shared
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !jobs.entries.contains_key(&key) {
            drop(jobs);
            return write_frame(
                stream,
                &Frame::Status {
                    job_id,
                    state: JobState::Unknown,
                },
            );
        }
    }
    let mut cursor = 0usize;
    loop {
        let (pending, done): (Vec<JobEvent>, bool) = {
            let jobs = shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(entry) = jobs.entries.get(&key) else {
                return Ok(());
            };
            let pending: Vec<JobEvent> = entry.events.get(cursor..).unwrap_or_default().to_vec();
            let done = entry.events.last().is_some_and(JobEvent::is_terminal);
            if pending.is_empty() && !done {
                // Wait for the workers to append, bounded so shutdown is
                // always observed.
                let _ = shared
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if shared.shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            (pending, done)
        };
        cursor += pending.len();
        for event in pending {
            write_frame(stream, &Frame::Event { job_id, event })?;
        }
        if done {
            return Ok(());
        }
    }
}
