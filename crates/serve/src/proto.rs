//! The `dwv-serve` wire protocol: versioned, length-prefixed frames.
//!
//! # Grammar
//!
//! Every frame on the wire is
//!
//! ```text
//! frame   := len:u32-le  body
//! body    := tag:u8  payload            (len = body length, 1 ≤ len ≤ MAX_FRAME)
//! ```
//!
//! Integers are little-endian; `f64` values travel as their exact IEEE-754
//! bit pattern (`to_bits`/`from_bits`), so controller weights and flowpipe
//! bounds survive the wire **bit-for-bit** — the serve-vs-batch parity
//! contract depends on it. Strings are `u32` length + UTF-8 bytes; vectors
//! are `u32` count + elements.
//!
//! A connection opens with `Hello{magic, version}` and the server answers
//! `HelloAck` (exact bytes pinned by tests) or a version-mismatch `Error`
//! and closes. After the handshake, clients submit jobs and poll, stream,
//! or cancel them; `Drain` asks the whole server to stop admitting and
//! finish up.
//!
//! # Panic freedom
//!
//! This module parses attacker-controlled bytes and sits in the dwv-lint R2
//! panic-freedom zone: truncated, oversized, or garbage input must yield
//! [`ProtoError`], never a panic. No indexing, no `unwrap`, and every
//! length arithmetic is checked.

use std::fmt;

/// Protocol magic, first bytes of every `Hello`.
pub const MAGIC: [u8; 4] = *b"DWVS";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Upper bound on a frame body, in bytes. Oversized length prefixes are
/// rejected before any allocation, so a hostile peer cannot balloon memory.
pub const MAX_FRAME: u32 = 1 << 20;

/// Why a sequence of bytes is not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The input ended before the announced structure did.
    Truncated,
    /// A frame announced a body longer than [`MAX_FRAME`] (or zero).
    BadLength(u32),
    /// Bytes were left over after the payload was fully decoded.
    TrailingBytes(usize),
    /// An unknown frame or enum tag.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A `Hello` carried the wrong magic bytes.
    BadMagic,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated frame"),
            Self::BadLength(n) => write!(f, "bad frame length {n}"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            Self::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            Self::BadUtf8 => write!(f, "string field is not UTF-8"),
            Self::BadMagic => write!(f, "bad protocol magic"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Which benchmark problem a job targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemId {
    /// Adaptive cruise control (affine, 2-state) — paper Fig. 6.
    Acc,
    /// Van der Pol oscillator — paper Fig. 7.
    VanDerPol,
    /// The 3-dimensional system — paper Fig. 8.
    ThreeDim,
}

impl ProblemId {
    fn tag(self) -> u8 {
        match self {
            Self::Acc => 0,
            Self::VanDerPol => 1,
            Self::ThreeDim => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, ProtoError> {
        match t {
            0 => Ok(Self::Acc),
            1 => Ok(Self::VanDerPol),
            2 => Ok(Self::ThreeDim),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// What a submitted job should compute.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Verify a linear controller over a uniform `grid^dim` partition of
    /// `X₀` through the tiered portfolio, then judge the whole-`X₀`
    /// flowpipe with `samples` rollouts. Affine problems only.
    VerifyLinear {
        /// Row-major gain matrix, `n_input × n_state`.
        gains: Vec<f64>,
        /// Per-dimension split count for the cell sweep (≥ 1).
        grid: u32,
        /// Rollout budget for the judgement.
        samples: u32,
    },
    /// Full [`dwv_core::VerificationReport`] for a linear controller
    /// (verdict, Algorithm-2 certified set, rates, counterexample).
    AssessLinear {
        /// Row-major gain matrix, `n_input × n_state`.
        gains: Vec<f64>,
    },
    /// Run the whole Algorithm-1 pipeline (`design_while_verify_linear`)
    /// and report on the learned controller.
    LearnLinear {
        /// Learning seed.
        seed: u64,
        /// Gradient-update budget.
        max_updates: u32,
        /// Whether to learn through the tiered portfolio surrogate.
        portfolio: bool,
    },
    /// Full report for a neural-network controller with explicit weights,
    /// verified by the Taylor-model/POLAR abstraction.
    AssessNn {
        /// Hidden-layer widths.
        hidden: Vec<u32>,
        /// Output scale (> 0).
        output_scale: f64,
        /// Taylor abstraction order (≥ 1).
        order: u32,
        /// Flat parameter vector (must match the architecture).
        params: Vec<f64>,
    },
}

impl JobKind {
    fn tag(&self) -> u8 {
        match self {
            Self::VerifyLinear { .. } => 0,
            Self::AssessLinear { .. } => 1,
            Self::LearnLinear { .. } => 2,
            Self::AssessNn { .. } => 3,
        }
    }
}

/// A complete job specification: problem + computation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which benchmark problem to run against.
    pub problem: ProblemId,
    /// What to compute.
    pub kind: JobKind,
}

/// Server-side lifecycle state of a job, as reported by `Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; events carry the results.
    Done,
    /// Failed; a `Failed` event carries the reason.
    Failed,
    /// Cancelled (client request, deadline, or forced drain).
    Cancelled,
    /// The server has no record of this `(tenant, job)` pair.
    Unknown,
}

impl JobState {
    fn tag(self) -> u8 {
        match self {
            Self::Queued => 0,
            Self::Running => 1,
            Self::Done => 2,
            Self::Failed => 3,
            Self::Cancelled => 4,
            Self::Unknown => 5,
        }
    }

    fn from_tag(t: u8) -> Result<Self, ProtoError> {
        match t {
            0 => Ok(Self::Queued),
            1 => Ok(Self::Running),
            2 => Ok(Self::Done),
            3 => Ok(Self::Failed),
            4 => Ok(Self::Cancelled),
            5 => Ok(Self::Unknown),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// Why a submission was rejected (admission control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The bounded queue is full — retry after the hinted delay.
    Overloaded,
    /// The server is draining and admits no new work.
    Draining,
    /// The `(tenant, job_id)` pair is already in use.
    DuplicateJob,
    /// The spec failed validation (wrong gain count, bad scale, …).
    BadSpec,
}

impl RejectCode {
    fn tag(self) -> u8 {
        match self {
            Self::Overloaded => 0,
            Self::Draining => 1,
            Self::DuplicateJob => 2,
            Self::BadSpec => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self, ProtoError> {
        match t {
            0 => Ok(Self::Overloaded),
            1 => Ok(Self::Draining),
            2 => Ok(Self::DuplicateJob),
            3 => Ok(Self::BadSpec),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// A streamed result fragment for one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The formal verdict, rendered canonically.
    Verdict(String),
    /// One flowpipe step enclosure: `[t0, t1]` × interleaved `lo, hi`
    /// bounds per dimension.
    Segment {
        /// 0-based step index.
        index: u32,
        /// Step start time.
        t0: f64,
        /// Step end time.
        t1: f64,
        /// `2·dim` interleaved lower/upper bounds.
        bounds: Vec<f64>,
    },
    /// The canonical `VerificationReport` CSV
    /// ([`dwv_core::VerificationReport::to_csv`]), as raw bytes.
    Report(Vec<u8>),
    /// Terminal: the job completed; no further events follow.
    Done,
    /// Terminal: the job failed.
    Failed(String),
    /// Terminal: the job was cancelled before completing.
    Cancelled,
}

impl JobEvent {
    fn tag(&self) -> u8 {
        match self {
            Self::Verdict(_) => 0,
            Self::Segment { .. } => 1,
            Self::Report(_) => 2,
            Self::Done => 3,
            Self::Failed(_) => 4,
            Self::Cancelled => 5,
        }
    }

    /// Whether this event ends the job's stream.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, Self::Done | Self::Failed(_) | Self::Cancelled)
    }
}

/// Error codes carried by [`Frame::Error`].
pub mod error_code {
    /// The peer spoke a protocol version this build does not.
    pub const VERSION_MISMATCH: u16 = 1;
    /// The first frame was not a `Hello` (or carried bad magic).
    pub const BAD_HANDSHAKE: u16 = 2;
    /// A frame failed to decode mid-session.
    pub const BAD_FRAME: u16 = 3;
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server greeting: magic + spoken version.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Server → client: handshake accepted at this version.
    HelloAck {
        /// Protocol version the server will speak.
        version: u16,
    },
    /// Client → server: submit a job.
    Submit {
        /// Tenant namespace (cache shard + job-id scope).
        tenant: u64,
        /// Client-chosen job id, unique per tenant.
        job_id: u64,
        /// Soft deadline in milliseconds from admission (0 = none); on
        /// expiry the job is cancelled, queued or running.
        deadline_ms: u32,
        /// What to run.
        spec: JobSpec,
    },
    /// Server → client: the job was admitted.
    Accepted {
        /// Echo of the submitted job id.
        job_id: u64,
    },
    /// Server → client: the job was *not* admitted. Explicit backpressure:
    /// the server never buffers beyond its bounded queue.
    Rejected {
        /// Echo of the submitted job id.
        job_id: u64,
        /// Why.
        code: RejectCode,
        /// Retry hint in milliseconds (0 = do not retry).
        retry_after_ms: u32,
    },
    /// Client → server: ask for a job's state.
    Poll {
        /// Tenant namespace.
        tenant: u64,
        /// Job id within the tenant.
        job_id: u64,
    },
    /// Server → client: current job state.
    Status {
        /// Echo of the polled job id.
        job_id: u64,
        /// Lifecycle state.
        state: JobState,
    },
    /// Client → server: stream the job's events until terminal.
    Stream {
        /// Tenant namespace.
        tenant: u64,
        /// Job id within the tenant.
        job_id: u64,
    },
    /// Server → client: one streamed event.
    Event {
        /// Job the event belongs to.
        job_id: u64,
        /// The event.
        event: JobEvent,
    },
    /// Client → server: cancel a queued or running job.
    Cancel {
        /// Tenant namespace.
        tenant: u64,
        /// Job id within the tenant.
        job_id: u64,
    },
    /// Client → server: stop admitting, finish in-flight work, shut down.
    Drain,
    /// Server → client: drain initiated; backlog at that instant.
    DrainAck {
        /// Jobs still queued.
        queued: u32,
        /// Jobs currently running.
        running: u32,
    },
    /// Server → client: protocol-level failure (see [`error_code`]).
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_SUBMIT: u8 = 0x03;
const TAG_ACCEPTED: u8 = 0x04;
const TAG_REJECTED: u8 = 0x05;
const TAG_POLL: u8 = 0x06;
const TAG_STATUS: u8 = 0x07;
const TAG_STREAM: u8 = 0x08;
const TAG_EVENT: u8 = 0x09;
const TAG_CANCEL: u8 = 0x0A;
const TAG_DRAIN: u8 = 0x0B;
const TAG_DRAIN_ACK: u8 = 0x0C;
const TAG_ERROR: u8 = 0x0D;

/// Little-endian byte writer for frame bodies.
#[derive(Debug, Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, v: &[u8]) {
        // Lengths beyond u32 cannot round-trip; saturate and let the frame
        // cap reject the result rather than truncating silently.
        let n = u32::try_from(v.len()).unwrap_or(u32::MAX);
        self.u32(n);
        self.buf.extend_from_slice(v);
    }

    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn f64_slice(&mut self, v: &[f64]) {
        let n = u32::try_from(v.len()).unwrap_or(u32::MAX);
        self.u32(n);
        for &x in v {
            self.f64(x);
        }
    }

    fn u32_slice(&mut self, v: &[u32]) {
        let n = u32::try_from(v.len()).unwrap_or(u32::MAX);
        self.u32(n);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Checked little-endian byte reader over a frame body.
#[derive(Debug)]
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let (head, tail) = self.buf.split_at_checked(n).ok_or(ProtoError::Truncated)?;
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        self.take(1)?.first().copied().ok_or(ProtoError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let b = self.bytes()?;
        core::str::from_utf8(b)
            .map(str::to_string)
            .map_err(|_| ProtoError::BadUtf8)
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, ProtoError> {
        let n = self.u32()? as usize;
        // Bound the claim by the bytes actually present before allocating.
        let need = n.checked_mul(8).ok_or(ProtoError::Truncated)?;
        if self.buf.len() < need {
            return Err(ProtoError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(4).ok_or(ProtoError::Truncated)?;
        if self.buf.len() < need {
            return Err(ProtoError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.buf.len()))
        }
    }
}

fn encode_spec(w: &mut Writer, spec: &JobSpec) {
    w.u8(spec.problem.tag());
    w.u8(spec.kind.tag());
    match &spec.kind {
        JobKind::VerifyLinear {
            gains,
            grid,
            samples,
        } => {
            w.f64_slice(gains);
            w.u32(*grid);
            w.u32(*samples);
        }
        JobKind::AssessLinear { gains } => w.f64_slice(gains),
        JobKind::LearnLinear {
            seed,
            max_updates,
            portfolio,
        } => {
            w.u64(*seed);
            w.u32(*max_updates);
            w.u8(u8::from(*portfolio));
        }
        JobKind::AssessNn {
            hidden,
            output_scale,
            order,
            params,
        } => {
            w.u32_slice(hidden);
            w.f64(*output_scale);
            w.u32(*order);
            w.f64_slice(params);
        }
    }
}

fn decode_spec(r: &mut Reader<'_>) -> Result<JobSpec, ProtoError> {
    let problem = ProblemId::from_tag(r.u8()?)?;
    let kind = match r.u8()? {
        0 => JobKind::VerifyLinear {
            gains: r.f64_vec()?,
            grid: r.u32()?,
            samples: r.u32()?,
        },
        1 => JobKind::AssessLinear {
            gains: r.f64_vec()?,
        },
        2 => JobKind::LearnLinear {
            seed: r.u64()?,
            max_updates: r.u32()?,
            portfolio: r.u8()? != 0,
        },
        3 => JobKind::AssessNn {
            hidden: r.u32_vec()?,
            output_scale: r.f64()?,
            order: r.u32()?,
            params: r.f64_vec()?,
        },
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(JobSpec { problem, kind })
}

fn encode_event(w: &mut Writer, event: &JobEvent) {
    w.u8(event.tag());
    match event {
        JobEvent::Verdict(s) => w.string(s),
        JobEvent::Segment {
            index,
            t0,
            t1,
            bounds,
        } => {
            w.u32(*index);
            w.f64(*t0);
            w.f64(*t1);
            w.f64_slice(bounds);
        }
        JobEvent::Report(bytes) => w.bytes(bytes),
        JobEvent::Done | JobEvent::Cancelled => {}
        JobEvent::Failed(msg) => w.string(msg),
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<JobEvent, ProtoError> {
    match r.u8()? {
        0 => Ok(JobEvent::Verdict(r.string()?)),
        1 => Ok(JobEvent::Segment {
            index: r.u32()?,
            t0: r.f64()?,
            t1: r.f64()?,
            bounds: r.f64_vec()?,
        }),
        2 => Ok(JobEvent::Report(r.bytes()?.to_vec())),
        3 => Ok(JobEvent::Done),
        4 => Ok(JobEvent::Failed(r.string()?)),
        5 => Ok(JobEvent::Cancelled),
        other => Err(ProtoError::BadTag(other)),
    }
}

impl Frame {
    /// Encodes the frame body (tag + payload), without the length prefix.
    #[must_use]
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            Self::Hello { version } => {
                w.u8(TAG_HELLO);
                w.buf.extend_from_slice(&MAGIC);
                w.u16(*version);
            }
            Self::HelloAck { version } => {
                w.u8(TAG_HELLO_ACK);
                w.u16(*version);
            }
            Self::Submit {
                tenant,
                job_id,
                deadline_ms,
                spec,
            } => {
                w.u8(TAG_SUBMIT);
                w.u64(*tenant);
                w.u64(*job_id);
                w.u32(*deadline_ms);
                encode_spec(&mut w, spec);
            }
            Self::Accepted { job_id } => {
                w.u8(TAG_ACCEPTED);
                w.u64(*job_id);
            }
            Self::Rejected {
                job_id,
                code,
                retry_after_ms,
            } => {
                w.u8(TAG_REJECTED);
                w.u64(*job_id);
                w.u8(code.tag());
                w.u32(*retry_after_ms);
            }
            Self::Poll { tenant, job_id } => {
                w.u8(TAG_POLL);
                w.u64(*tenant);
                w.u64(*job_id);
            }
            Self::Status { job_id, state } => {
                w.u8(TAG_STATUS);
                w.u64(*job_id);
                w.u8(state.tag());
            }
            Self::Stream { tenant, job_id } => {
                w.u8(TAG_STREAM);
                w.u64(*tenant);
                w.u64(*job_id);
            }
            Self::Event { job_id, event } => {
                w.u8(TAG_EVENT);
                w.u64(*job_id);
                encode_event(&mut w, event);
            }
            Self::Cancel { tenant, job_id } => {
                w.u8(TAG_CANCEL);
                w.u64(*tenant);
                w.u64(*job_id);
            }
            Self::Drain => w.u8(TAG_DRAIN),
            Self::DrainAck { queued, running } => {
                w.u8(TAG_DRAIN_ACK);
                w.u32(*queued);
                w.u32(*running);
            }
            Self::Error { code, message } => {
                w.u8(TAG_ERROR);
                w.u16(*code);
                w.string(message);
            }
        }
        w.buf
    }

    /// Encodes the full wire form: length prefix + body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let len = u32::try_from(body.len()).unwrap_or(u32::MAX);
        let mut out = Vec::with_capacity(body.len().saturating_add(4));
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (tag + payload, no length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncated, trailing, or malformed bytes — never a
    /// panic.
    pub fn decode_body(body: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(body);
        let frame = match r.u8()? {
            TAG_HELLO => {
                let magic = r.take(4)?;
                if magic != MAGIC {
                    return Err(ProtoError::BadMagic);
                }
                Self::Hello { version: r.u16()? }
            }
            TAG_HELLO_ACK => Self::HelloAck { version: r.u16()? },
            TAG_SUBMIT => Self::Submit {
                tenant: r.u64()?,
                job_id: r.u64()?,
                deadline_ms: r.u32()?,
                spec: decode_spec(&mut r)?,
            },
            TAG_ACCEPTED => Self::Accepted { job_id: r.u64()? },
            TAG_REJECTED => Self::Rejected {
                job_id: r.u64()?,
                code: RejectCode::from_tag(r.u8()?)?,
                retry_after_ms: r.u32()?,
            },
            TAG_POLL => Self::Poll {
                tenant: r.u64()?,
                job_id: r.u64()?,
            },
            TAG_STATUS => Self::Status {
                job_id: r.u64()?,
                state: JobState::from_tag(r.u8()?)?,
            },
            TAG_STREAM => Self::Stream {
                tenant: r.u64()?,
                job_id: r.u64()?,
            },
            TAG_EVENT => Self::Event {
                job_id: r.u64()?,
                event: decode_event(&mut r)?,
            },
            TAG_CANCEL => Self::Cancel {
                tenant: r.u64()?,
                job_id: r.u64()?,
            },
            TAG_DRAIN => Self::Drain,
            TAG_DRAIN_ACK => Self::DrainAck {
                queued: r.u32()?,
                running: r.u32()?,
            },
            TAG_ERROR => Self::Error {
                code: r.u16()?,
                message: r.string()?,
            },
            other => return Err(ProtoError::BadTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Incremental frame assembler over a byte stream.
///
/// Feed raw reads in; complete frames come out. Keeps at most one frame of
/// buffered bytes plus one read's worth — bounded by [`MAX_FRAME`] because
/// oversized prefixes fail before their bodies are awaited.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". After an `Err` the connection
    /// should be torn down: framing is lost.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for zero/oversized length prefixes and malformed
    /// bodies.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let Some(prefix) = self.buf.get(..4) else {
            return Ok(None);
        };
        let arr: [u8; 4] = prefix.try_into().map_err(|_| ProtoError::Truncated)?;
        let len = u32::from_le_bytes(arr);
        if len == 0 || len > MAX_FRAME {
            return Err(ProtoError::BadLength(len));
        }
        let end = (len as usize).saturating_add(4);
        if self.buf.len() < end {
            return Ok(None);
        }
        let rest = self.buf.split_off(end);
        let taken = std::mem::replace(&mut self.buf, rest);
        let body = taken.get(4..).ok_or(ProtoError::Truncated)?;
        Frame::decode_body(body).map(Some)
    }

    /// Bytes currently buffered (for diagnostics).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Writes one frame to a blocking transport.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<W: std::io::Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame from a blocking transport.
///
/// # Errors
///
/// Transport errors pass through; protocol violations surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Frame> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::BadLength(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}
