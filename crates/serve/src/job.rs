//! Job execution: the bridge from wire specs to the batch verifier stack.
//!
//! Parity by construction: every job kind delegates to the *same* code the
//! batch binaries use — [`dwv_core::assess`], [`design_while_verify_linear`],
//! the [`PortfolioVerifier`] tiers — so a served job and a batch run of the
//! same spec produce byte-identical [`JobOutput`]s. The `serve` dwv-check
//! family and `tests/serve_batch_parity.rs` hold this to bytes.
//!
//! Caching is layered *outside* the report: the per-tenant [`ReachCache`]
//! shard memoizes flowpipes keyed by tenant-qualified controller hashes
//! ([`hash_params_tenant`]), so warm hits change latency, never bytes.
//! Portfolio verifiers are constructed per job (as the batch pipeline
//! does), keeping `cache_hit` provenance rows identical on both paths.

use crate::proto::{JobKind, JobSpec, ProblemId};
use dwv_core::parallel::CancelToken;
use dwv_core::{assess, design_while_verify_linear, judge, LearnConfig, WorkerPool};
use dwv_dynamics::{acc, oscillator, three_dim, LinearController, NnController, ReachAvoidProblem};
use dwv_interval::IntervalBox;
use dwv_metrics::GeometricMetric;
use dwv_nn::{Activation, Network};
use dwv_reach::{
    hash_cell, hash_params_tenant, DependencyTracking, Flowpipe, IntervalReach, LinearReach,
    PortfolioVerifier, ReachCache, TaylorAbstraction, TaylorReach, TaylorReachConfig,
    ZonotopeReach,
};
use std::fmt;

/// Default portfolio slack for served decisive queries (matches
/// [`LearnConfig`]'s default).
const PORTFOLIO_SLACK: f64 = 0.05;

/// Fixed judgement seed, shared with [`dwv_core::assess`]'s internals.
const JUDGE_SEED: u64 = 0x0A55E55;

/// Why a job could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The spec failed validation (wrong weight count, bad scale, a linear
    /// job on a non-affine problem, …). Detected before any work runs, so
    /// admission control can reject with `BadSpec`.
    Invalid(String),
    /// The job's cancel token fired before it finished.
    Cancelled,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(m) => write!(f, "invalid job spec: {m}"),
            Self::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// One flowpipe step, ready for a `Segment` event.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentData {
    /// 0-based step index.
    pub index: u32,
    /// Step start time.
    pub t0: f64,
    /// Step end time.
    pub t1: f64,
    /// `2·dim` interleaved lower/upper enclosure bounds.
    pub bounds: Vec<f64>,
}

/// A completed job's deterministic result.
///
/// Everything here is a pure function of the spec (plus the build): the
/// serve-vs-batch contract compares these fields byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// The formal verdict, canonically rendered.
    pub verdict: String,
    /// Whole-`X₀` flowpipe step enclosures (empty when verification
    /// errored or the kind produces none).
    pub segments: Vec<SegmentData>,
    /// Canonical report CSV ([`dwv_core::VerificationReport::to_csv`]),
    /// for kinds that assemble a full report.
    pub report_csv: Option<Vec<u8>>,
}

/// Instantiates the benchmark problem a spec names.
#[must_use]
pub fn problem_for(id: ProblemId) -> ReachAvoidProblem {
    match id {
        ProblemId::Acc => acc::reach_avoid_problem(),
        ProblemId::VanDerPol => oscillator::reach_avoid_problem(),
        ProblemId::ThreeDim => three_dim::reach_avoid_problem(),
    }
}

/// The Taylor-model verifier configuration served NN jobs run under —
/// the `examples/` repro configuration (POLAR abstraction, box-reinit
/// dependency tracking).
#[must_use]
pub fn nn_verifier_config() -> TaylorReachConfig {
    TaylorReachConfig {
        dependency: DependencyTracking::BoxReinit,
        ..TaylorReachConfig::default()
    }
}

/// Validates a spec without running it.
///
/// # Errors
///
/// [`JobError::Invalid`] describing the first problem found.
pub fn validate(spec: &JobSpec) -> Result<(), JobError> {
    let problem = problem_for(spec.problem);
    let (n_state, n_input) = (problem.n_state(), problem.n_input());
    match &spec.kind {
        JobKind::VerifyLinear { gains, grid, .. } => {
            if problem.dynamics.linear_parts().is_none() {
                return Err(JobError::Invalid(
                    "VerifyLinear requires affine dynamics".into(),
                ));
            }
            if gains.len() != n_state * n_input {
                return Err(JobError::Invalid(format!(
                    "expected {} gains, got {}",
                    n_state * n_input,
                    gains.len()
                )));
            }
            if *grid == 0 || *grid > 8 {
                return Err(JobError::Invalid(format!("grid {grid} out of 1..=8")));
            }
        }
        JobKind::AssessLinear { gains } => {
            if problem.dynamics.linear_parts().is_none() {
                return Err(JobError::Invalid(
                    "AssessLinear requires affine dynamics".into(),
                ));
            }
            if gains.len() != n_state * n_input {
                return Err(JobError::Invalid(format!(
                    "expected {} gains, got {}",
                    n_state * n_input,
                    gains.len()
                )));
            }
        }
        JobKind::LearnLinear { max_updates, .. } => {
            if problem.dynamics.linear_parts().is_none() {
                return Err(JobError::Invalid(
                    "LearnLinear requires affine dynamics".into(),
                ));
            }
            if *max_updates == 0 || *max_updates > 10_000 {
                return Err(JobError::Invalid(format!(
                    "max_updates {max_updates} out of 1..=10000"
                )));
            }
        }
        JobKind::AssessNn {
            hidden,
            output_scale,
            order,
            params,
        } => {
            if *output_scale <= 0.0 || output_scale.is_nan() {
                return Err(JobError::Invalid("output_scale must be > 0".into()));
            }
            if *order == 0 || *order > 6 {
                return Err(JobError::Invalid(format!("order {order} out of 1..=6")));
            }
            if hidden.is_empty() || hidden.len() > 4 || hidden.iter().any(|&h| h == 0 || h > 64) {
                return Err(JobError::Invalid("hidden sizes out of range".into()));
            }
            let sizes = nn_sizes(&problem, hidden);
            let expected = Network::new(&sizes, Activation::ReLU, Activation::Tanh, 0).num_params();
            if params.len() != expected {
                return Err(JobError::Invalid(format!(
                    "expected {expected} NN params, got {}",
                    params.len()
                )));
            }
        }
    }
    Ok(())
}

fn nn_sizes(problem: &ReachAvoidProblem, hidden: &[u32]) -> Vec<usize> {
    let mut sizes = vec![problem.n_state()];
    sizes.extend(hidden.iter().map(|&h| h as usize));
    sizes.push(problem.n_input());
    sizes
}

/// Splits `x0` into a uniform `grid^dim` cell partition, row-major.
///
/// Bounds are computed with one fixed expression (`lo + w·i/g`), so the
/// partition — and everything downstream of it — is bit-identical across
/// hosts and thread counts.
#[must_use]
pub fn uniform_grid(x0: &IntervalBox, grid: u32) -> Vec<IntervalBox> {
    let g = grid.max(1) as usize;
    let dim = x0.dim();
    let total = g.pow(dim as u32);
    let mut cells = Vec::with_capacity(total);
    for flat in 0..total {
        let mut bounds = Vec::with_capacity(dim);
        let mut rest = flat;
        for iv in x0.intervals() {
            let idx = rest % g;
            rest /= g;
            let (lo, hi) = (iv.lo(), iv.hi());
            let w = hi - lo;
            let a = lo + w * (idx as f64) / (g as f64);
            let b = if idx + 1 == g {
                hi
            } else {
                lo + w * ((idx + 1) as f64) / (g as f64)
            };
            bounds.push((a, b));
        }
        cells.push(IntervalBox::from_bounds(&bounds));
    }
    cells
}

fn segments_of(flowpipe: &Flowpipe) -> Vec<SegmentData> {
    flowpipe
        .steps()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut bounds = Vec::with_capacity(2 * s.enclosure.dim());
            for iv in s.enclosure.intervals() {
                bounds.push(iv.lo());
                bounds.push(iv.hi());
            }
            SegmentData {
                index: u32::try_from(i).unwrap_or(u32::MAX),
                t0: s.t0,
                t1: s.t1,
                bounds,
            }
        })
        .collect()
}

/// Folds the spec's problem/kind discriminants into a controller hash, so
/// one tenant's cache shard cannot conflate (say) the same gains verified
/// against ACC and against a different grid.
fn spec_qualified_hash(tenant: u64, spec_tag: u64, weights: &[f64]) -> u64 {
    hash_params_tenant(tenant, weights) ^ spec_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one job to completion (or cancellation).
///
/// `pool` drives the cell sweep of `VerifyLinear` (deterministic at any
/// width), `cache` is the tenant's [`ReachCache`] shard, and `cancel` is
/// polled between phases and inside pool fan-outs.
///
/// # Errors
///
/// [`JobError::Invalid`] for specs that fail [`validate`];
/// [`JobError::Cancelled`] when the token fires first.
pub fn run_job(
    spec: &JobSpec,
    tenant: u64,
    pool: &WorkerPool,
    cache: &ReachCache,
    cancel: &CancelToken,
) -> Result<JobOutput, JobError> {
    let _s = dwv_obs::span("serve.job");
    validate(spec)?;
    if cancel.is_cancelled() {
        return Err(JobError::Cancelled);
    }
    let problem = problem_for(spec.problem);
    match &spec.kind {
        JobKind::VerifyLinear {
            gains,
            grid,
            samples,
        } => run_verify_linear(
            &problem, tenant, gains, *grid, *samples, pool, cache, cancel,
        ),
        JobKind::AssessLinear { gains } => {
            let controller =
                LinearController::new(problem.n_state(), problem.n_input(), gains.clone());
            let (a, b, c) = problem
                .dynamics
                .linear_parts()
                .ok_or_else(|| JobError::Invalid("affine dynamics required".into()))?;
            let h = spec_qualified_hash(tenant, u64::from(spec.problem_tag()), gains);
            let (delta, steps) = (problem.delta, problem.horizon_steps);
            let oracle_controller = controller.clone();
            let report = assess(&problem, &controller, move |cell: &IntervalBox| {
                cache.get_or_compute(h, hash_cell(cell), || {
                    LinearReach::new(&a, &b, &c, cell.clone(), delta, steps)
                        .reach(&oracle_controller)
                })
            });
            if cancel.is_cancelled() {
                return Err(JobError::Cancelled);
            }
            Ok(JobOutput {
                verdict: report.verdict.to_string(),
                segments: Vec::new(),
                report_csv: Some(report.to_csv().into_bytes()),
            })
        }
        JobKind::LearnLinear {
            seed,
            max_updates,
            portfolio,
        } => {
            let mut builder = LearnConfig::builder()
                .metric(dwv_core::MetricKind::Geometric)
                .max_updates(*max_updates as usize)
                .seed(*seed);
            if *portfolio {
                builder =
                    builder.portfolio(dwv_core::PortfolioMode::Surrogate { confirm_every: 5 });
            }
            let outcome = design_while_verify_linear(problem, builder.build())
                .map_err(|e| JobError::Invalid(e.to_string()))?;
            if cancel.is_cancelled() {
                return Err(JobError::Cancelled);
            }
            Ok(JobOutput {
                verdict: outcome.report.verdict.to_string(),
                segments: Vec::new(),
                report_csv: Some(outcome.report.to_csv().into_bytes()),
            })
        }
        JobKind::AssessNn {
            hidden,
            output_scale,
            order,
            params,
        } => {
            let sizes = nn_sizes(&problem, hidden);
            let mut net = Network::new(&sizes, Activation::ReLU, Activation::Tanh, 0);
            net.set_params(params);
            let controller = NnController::with_output_scale(net, *output_scale);
            let verifier = TaylorReach::new(
                &problem,
                TaylorAbstraction::with_order(*order),
                nn_verifier_config(),
            );
            let report = assess(&problem, &controller, |cell: &IntervalBox| {
                verifier.reach_from(cell, &controller)
            });
            if cancel.is_cancelled() {
                return Err(JobError::Cancelled);
            }
            Ok(JobOutput {
                verdict: report.verdict.to_string(),
                segments: Vec::new(),
                report_csv: Some(report.to_csv().into_bytes()),
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_verify_linear(
    problem: &ReachAvoidProblem,
    tenant: u64,
    gains: &[f64],
    grid: u32,
    samples: u32,
    pool: &WorkerPool,
    cache: &ReachCache,
    cancel: &CancelToken,
) -> Result<JobOutput, JobError> {
    let controller = LinearController::new(problem.n_state(), problem.n_input(), gains.to_vec());
    let portfolio = linear_portfolio(problem)
        .ok_or_else(|| JobError::Invalid("affine dynamics required".into()))?;
    let h = spec_qualified_hash(tenant, u64::from(grid) << 8, gains);
    let metric = GeometricMetric::for_problem(problem);
    let margin = move |fp: &Flowpipe| {
        let d = metric.evaluate(fp);
        if d.is_reach_avoid() {
            d.d_unsafe
        } else {
            f64::NEG_INFINITY
        }
    };
    // Whole-X₀ flowpipe first: it carries the verdict and the streamed
    // segments. Memoized in the tenant shard.
    let attempt = cache.get_or_compute(h, hash_cell(&problem.x0), || {
        portfolio.reach_decisive_from(&problem.x0, &controller, h, &margin)
    });
    let verdict = judge(problem, &controller, &attempt, samples as usize, JUDGE_SEED);
    if cancel.is_cancelled() {
        return Err(JobError::Cancelled);
    }
    // Cell sweep on the worker pool: deterministic at any width, and the
    // first place a mid-job cancel lands.
    let cells = uniform_grid(&problem.x0, grid);
    let cell_results = pool
        .map_cancellable(
            &cells,
            |cell| {
                cache
                    .get_or_compute(h, hash_cell(cell), || {
                        portfolio.reach_decisive_from(cell, &controller, h, &margin)
                    })
                    .is_ok()
            },
            cancel,
        )
        .ok_or(JobError::Cancelled)?;
    let verified = cell_results.iter().filter(|ok| **ok).count();
    let segments = attempt.as_ref().map(segments_of).unwrap_or_default();
    Ok(JobOutput {
        verdict: format!("{verdict} [cells {verified}/{}]", cells.len()),
        segments,
        report_csv: None,
    })
}

/// The serve-side linear portfolio: identical tier stack to
/// [`dwv_core::Algorithm1::linear_portfolio`] (interval → zonotope →
/// linear-exact authority) at the default slack.
#[must_use]
pub fn linear_portfolio(
    problem: &ReachAvoidProblem,
) -> Option<PortfolioVerifier<LinearController>> {
    let rigorous = LinearReach::for_problem(problem).ok()?;
    let zonotope = ZonotopeReach::for_problem(problem).ok()?;
    Some(
        PortfolioVerifier::new(Box::new(rigorous), PORTFOLIO_SLACK)
            .with_tier(Box::new(IntervalReach::for_problem(problem)))
            .with_tier(Box::new(zonotope)),
    )
}

impl JobSpec {
    /// The problem discriminant, for cache-key qualification.
    #[must_use]
    pub fn problem_tag(&self) -> u8 {
        match self.problem {
            ProblemId::Acc => 0,
            ProblemId::VanDerPol => 1,
            ProblemId::ThreeDim => 2,
        }
    }

    /// A coarse batching key: jobs sharing it run back-to-back on the same
    /// warm cache shard (same tenant, problem, and kind discriminant).
    #[must_use]
    pub fn batch_key(&self, tenant: u64) -> (u64, u8, u8) {
        let kind = match &self.kind {
            JobKind::VerifyLinear { .. } => 0,
            JobKind::AssessLinear { .. } => 1,
            JobKind::LearnLinear { .. } => 2,
            JobKind::AssessNn { .. } => 3,
        };
        (tenant, self.problem_tag(), kind)
    }
}
