//! Verification-as-a-service for the design-while-verify stack.
//!
//! `dwv-serve` turns the batch pipeline into a long-running job server: a
//! hand-rolled, versioned, length-prefixed TCP protocol ([`proto`]) carries
//! problem specs and controller weights in, and verdicts,
//! provenance-bearing report CSVs, and flowpipe segments back out. Jobs run
//! through the *same* code the batch binaries use — [`dwv_core::assess`],
//! `design_while_verify_linear`, the tiered
//! [`PortfolioVerifier`](dwv_reach::PortfolioVerifier) — so a served
//! verdict is **byte-identical** to the batch verdict for the same spec
//! (the `serve` dwv-check family and `tests/serve_batch_parity.rs` enforce
//! this, at pool widths 2/4/8).
//!
//! Production concerns, by module:
//!
//! * [`proto`] — frame grammar, panic-free codec, exact-byte handshake
//! * [`queue`] — bounded admission, reject-with-retry-after backpressure
//! * [`job`] — spec validation and execution on [`dwv_core::WorkerPool`]
//! * [`server`] — thread-per-core workers, per-tenant sharded
//!   [`ReachCache`](dwv_reach::ReachCache)s, compatible-request batching,
//!   deadline/cancel propagation via
//!   [`CancelToken`](dwv_core::parallel::CancelToken), graceful +
//!   forced drain
//! * [`client`] — blocking client used by tests, the check family, and the
//!   binary's `--smoke`/`--drain` modes
//!
//! Observability: `serve.accept`, `serve.submitted`, `serve.queue_depth`,
//! `serve.batch_size`, `serve.rejections[.reason]`, `serve.drain`, plus
//! `serve.conn`/`serve.job`/`serve.drain` spans — all through [`dwv_obs`],
//! feeding the existing `dwv-trace` analyzer.
//!
//! ```no_run
//! use dwv_serve::{Client, JobKind, JobSpec, ProblemId, ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! client.submit(1, 1, 0, JobSpec {
//!     problem: ProblemId::Acc,
//!     kind: JobKind::VerifyLinear { gains: vec![0.5867, -2.0], grid: 2, samples: 100 },
//! })?;
//! let result = client.stream_result(1, 1)?;
//! println!("{}", result.verdict);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{reassemble, Client};
pub use job::{run_job, validate, JobError, JobOutput, SegmentData};
pub use proto::{
    Frame, FrameBuffer, JobEvent, JobKind, JobSpec, JobState, ProblemId, ProtoError, RejectCode,
    MAGIC, MAX_FRAME, VERSION,
};
pub use queue::{AdmissionQueue, QueueFull};
pub use server::{ServeConfig, Server};
