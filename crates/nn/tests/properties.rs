//! Property-based tests for the neural-network substrate: gradient
//! correctness against finite differences under random shapes, seeds and
//! evaluation points.

use dwv_nn::{Activation, Network};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reverse-mode parameter gradients match central finite differences on
    /// smooth networks at random points.
    #[test]
    fn gradient_matches_fd(seed in 0u64..1000, x0 in -1.5..1.5f64, x1 in -1.5..1.5f64, probe in 0usize..8) {
        let mut net = Network::new(&[2, 6, 1], Activation::Tanh, Activation::Tanh, seed);
        let x = [x0, x1];
        let (grad, _) = net.gradient(&x, &[1.0]);
        let theta = net.params();
        let idx = probe * theta.len() / 8;
        let h = 1e-6;
        let mut plus = theta.clone();
        plus[idx] += h;
        net.set_params(&plus);
        let fp = net.forward(&x)[0];
        let mut minus = theta.clone();
        minus[idx] -= h;
        net.set_params(&minus);
        let fm = net.forward(&x)[0];
        let fd = (fp - fm) / (2.0 * h);
        prop_assert!((grad[idx] - fd).abs() < 1e-5 * (1.0 + fd.abs()), "param {idx}: {} vs {fd}", grad[idx]);
    }

    /// Input gradients match finite differences.
    #[test]
    fn input_gradient_matches_fd(seed in 0u64..1000, x0 in -1.5..1.5f64, x1 in -1.5..1.5f64) {
        let net = Network::new(&[2, 5, 1], Activation::Sigmoid, Activation::Identity, seed);
        let x = [x0, x1];
        let (_, din) = net.gradient(&x, &[1.0]);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * h);
            prop_assert!((din[i] - fd).abs() < 1e-5 * (1.0 + fd.abs()));
        }
    }

    /// params → set_params is the identity.
    #[test]
    fn params_roundtrip(seed in 0u64..1000) {
        let mut net = Network::new(&[3, 4, 2], Activation::ReLU, Activation::Tanh, seed);
        let theta = net.params();
        net.set_params(&theta);
        prop_assert_eq!(net.params(), theta);
    }

    /// Tanh output layers keep outputs in [−1, 1] for any input.
    #[test]
    fn tanh_output_bounded(seed in 0u64..1000, x0 in -100.0..100.0f64, x1 in -100.0..100.0f64) {
        let net = Network::new(&[2, 8, 2], Activation::ReLU, Activation::Tanh, seed);
        for y in net.forward(&[x0, x1]) {
            prop_assert!(y.abs() <= 1.0);
        }
    }

    /// The Lipschitz bound dominates random secant slopes.
    #[test]
    fn lipschitz_dominates_secants(seed in 0u64..200, a in -1.0..1.0f64, b in -1.0..1.0f64) {
        prop_assume!((a - b).abs() > 1e-6);
        let net = Network::new(&[1, 6, 1], Activation::Tanh, Activation::Tanh, seed);
        let lip = net.lipschitz_bound();
        let slope = ((net.forward(&[a])[0] - net.forward(&[b])[0]) / (a - b)).abs();
        prop_assert!(lip + 1e-9 >= slope, "bound {lip} < slope {slope}");
    }

    /// Activation Taylor coefficients reproduce the function locally.
    #[test]
    fn activation_taylor_local(c in -1.5..1.5f64, dx in -0.05..0.05f64) {
        for act in [Activation::Tanh, Activation::Sigmoid] {
            let coeffs = act.taylor_coefficients(c, 4);
            let approx: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| a * dx.powi(k as i32))
                .sum();
            prop_assert!((approx - act.apply(c + dx)).abs() < 1e-6);
        }
    }
}
