//! Dense layers.

use crate::Activation;
use dwv_poly::kernels;
use rand::Rng;

/// A dense (fully-connected) layer `y = act(W x + b)`.
///
/// Weights are stored row-major: `weights[o * in_dim + i]` is the weight from
/// input `i` to output `o`.
///
/// # Example
///
/// ```
/// use dwv_nn::{Activation, Layer};
///
/// let layer = Layer::from_params(2, 1, vec![1.0, -1.0], vec![0.5], Activation::Identity);
/// assert_eq!(layer.forward(&[3.0, 1.0]).0, vec![2.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f64>,
    bias: Vec<f64>,
    activation: Activation,
}

impl Layer {
    /// Creates a layer with He-style random initialization (scaled by the
    /// fan-in), suitable for ReLU/Tanh stacks.
    #[must_use]
    pub fn random<R: Rng>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        let bias = vec![0.0; out_dim];
        Self {
            in_dim,
            out_dim,
            weights,
            bias,
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the weight or bias vector lengths don't match the shapes.
    #[must_use]
    pub fn from_params(
        in_dim: usize,
        out_dim: usize,
        weights: Vec<f64>,
        bias: Vec<f64>,
        activation: Activation,
    ) -> Self {
        assert_eq!(weights.len(), in_dim * out_dim, "weight length mismatch");
        assert_eq!(bias.len(), out_dim, "bias length mismatch");
        Self {
            in_dim,
            out_dim,
            weights,
            bias,
            activation,
        }
    }

    /// The input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix, row-major `[out][in]`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// The weight from input `i` to output `o`.
    #[must_use]
    pub fn weight(&self, o: usize, i: usize) -> f64 {
        self.weights[o * self.in_dim + i]
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass; returns `(activations, pre_activations)`.
    ///
    /// Each pre-activation is `bias[o] + dot(row_o, x)` with the dot taken in
    /// the fixed chunked reduction order of
    /// [`dwv_poly::kernels::dot_chunked`], so results are identical across
    /// the scalar and SIMD dispatches and across runs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut pre = self.bias.clone();
        #[allow(clippy::needless_range_loop)]
        for o in 0..self.out_dim {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            pre[o] += kernels::dot_chunked(row, x);
        }
        let act = pre.iter().map(|&z| self.activation.apply(z)).collect();
        (act, pre)
    }

    /// Interval forward pass: a directed-rounding enclosure of the layer's
    /// image of the input box.
    ///
    /// Each output is `act(bias[o] + Σ_i w[o,i]·x_i)` computed entirely in
    /// outward-rounded [`dwv_interval::Interval`] arithmetic, so the result
    /// encloses the exact image of every point in the box. Activations are
    /// monotone, so no further splitting is needed.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn forward_interval(&self, x: &[dwv_interval::Interval]) -> Vec<dwv_interval::Interval> {
        self.forward_interval_parts(x).0
    }

    /// Interval forward pass returning `(activations, pre_activations)` —
    /// the pre-activation boxes feed interval chain rules (Jacobian
    /// enclosures need the derivative range at each neuron).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn forward_interval_parts(
        &self,
        x: &[dwv_interval::Interval],
    ) -> (Vec<dwv_interval::Interval>, Vec<dwv_interval::Interval>) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let pre: Vec<dwv_interval::Interval> = (0..self.out_dim)
            .map(|o| {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                row.iter().zip(x).fold(
                    dwv_interval::Interval::point(self.bias[o]),
                    |acc, (&w, xi)| acc + *xi * w,
                )
            })
            .collect();
        let act = pre
            .iter()
            .map(|&z| self.activation.apply_interval(z))
            .collect();
        (act, pre)
    }

    /// Backward pass.
    ///
    /// Given `d_out = ∂L/∂y` (gradient at the layer output), the cached
    /// `pre`-activations and the layer input `x`, accumulates `∂L/∂W` and
    /// `∂L/∂b` into `grad` (laid out `[weights…, bias…]`) and returns
    /// `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    #[must_use]
    pub fn backward(&self, x: &[f64], pre: &[f64], d_out: &[f64], grad: &mut [f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        assert_eq!(pre.len(), self.out_dim, "pre-activation length mismatch");
        assert_eq!(d_out.len(), self.out_dim, "output gradient length mismatch");
        assert_eq!(grad.len(), self.num_params(), "gradient buffer mismatch");
        let mut d_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let dz = d_out[o] * self.activation.derivative(pre[o]);
            let row = o * self.in_dim..(o + 1) * self.in_dim;
            kernels::axpy(&mut grad[row.clone()], dz, x);
            kernels::axpy(&mut d_in, dz, &self.weights[row]);
            grad[self.weights.len() + o] += dz;
        }
        d_in
    }

    /// Copies the parameters into `out` (layout `[weights…, bias…]`).
    pub fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
    }

    /// Reads parameters from `src`, returning the number consumed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than `num_params()`.
    pub fn read_params(&mut self, src: &[f64]) -> usize {
        let nw = self.weights.len();
        let n = nw + self.bias.len();
        assert!(src.len() >= n, "parameter slice too short");
        self.weights.copy_from_slice(&src[..nw]);
        self.bias.copy_from_slice(&src[nw..n]);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Layer {
        Layer::from_params(
            2,
            2,
            vec![1.0, 2.0, -1.0, 0.5],
            vec![0.1, -0.2],
            Activation::Tanh,
        )
    }

    #[test]
    fn forward_values() {
        let l = layer();
        let (y, pre) = l.forward(&[1.0, -1.0]);
        assert!((pre[0] - (1.0 - 2.0 + 0.1)).abs() < 1e-12);
        assert!((pre[1] - (-1.0 - 0.5 - 0.2)).abs() < 1e-12);
        assert!((y[0] - pre[0].tanh()).abs() < 1e-12);
        assert!((y[1] - pre[1].tanh()).abs() < 1e-12);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let l = layer();
        let x = [0.3, -0.7];
        // Loss: L = sum(y); dL/dy = 1.
        let (_, pre) = l.forward(&x);
        let mut grad = vec![0.0; l.num_params()];
        let d_in = l.backward(&x, &pre, &[1.0, 1.0], &mut grad);

        let loss = |l: &Layer, x: &[f64]| -> f64 { l.forward(x).0.iter().sum() };
        let h = 1e-6;
        // Parameter gradients.
        let mut params = Vec::new();
        l.write_params(&mut params);
        for p in 0..l.num_params() {
            let mut lp = l.clone();
            let mut plus = params.clone();
            plus[p] += h;
            lp.read_params(&plus);
            let mut lm = l.clone();
            let mut minus = params.clone();
            minus[p] -= h;
            lm.read_params(&minus);
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!(
                (grad[p] - fd).abs() < 1e-6,
                "param {p}: analytic {} vs fd {fd}",
                grad[p]
            );
        }
        // Input gradients.
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            assert!((d_in[i] - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn params_roundtrip() {
        let mut l = layer();
        let mut p = Vec::new();
        l.write_params(&mut p);
        let orig = p.clone();
        p.iter_mut().for_each(|v| *v += 1.0);
        let consumed = l.read_params(&p);
        assert_eq!(consumed, 6);
        let mut p2 = Vec::new();
        l.write_params(&mut p2);
        for (a, b) in p2.iter().zip(&orig) {
            assert!((a - b - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_layer_shapes() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 7);
        let l = Layer::random(3, 5, Activation::ReLU, &mut rng);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
        assert_eq!(l.num_params(), 20);
        let (y, _) = l.forward(&[1.0, 0.0, -1.0]);
        assert_eq!(y.len(), 5);
        assert!(y.iter().all(|&v| v >= 0.0)); // ReLU output
    }
}
