//! Multi-layer perceptrons.

use crate::{Activation, Layer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A dense feed-forward network.
///
/// The architecture follows the paper's controllers: every hidden layer
/// shares one activation (ReLU in the experiments) and the output layer has
/// its own (Tanh, so control inputs are bounded).
///
/// The flat parameter vector ([`Network::params`] / [`Network::set_params`])
/// is the `θ` of `κ_θ` that Algorithm 1 perturbs; [`Network::gradient`]
/// provides reverse-mode gradients for the RL baselines.
///
/// # Example
///
/// ```
/// use dwv_nn::{Activation, Network};
///
/// let net = Network::new(&[2, 4, 1], Activation::ReLU, Activation::Tanh, 1);
/// assert_eq!(net.num_params(), 2 * 4 + 4 + 4 * 1 + 1);
/// let y = net.forward(&[0.1, -0.2]);
/// assert!(y[0].abs() <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a randomly initialized network with the given layer sizes
    /// (`sizes[0]` inputs through `sizes.last()` outputs), deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n { output } else { hidden };
                Layer::random(sizes[i], sizes[i + 1], act, &mut rng)
            })
            .collect();
        Self { layers }
    }

    /// Creates a network from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if the layers don't chain (output dim ≠ next input dim) or the
    /// list is empty.
    #[must_use]
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(w[0].out_dim(), w[1].in_dim(), "layer dimensions must chain");
        }
        Self { layers }
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Layer::in_dim)
    }

    /// The output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Layer::out_dim)
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Forward evaluation.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h).0;
        }
        h
    }

    /// Interval forward evaluation: a directed-rounding enclosure of the
    /// network's image of the input box (plain interval extension,
    /// layer by layer).
    ///
    /// Sound but not tight: interval propagation ignores correlations
    /// between neurons, so widths can grow with depth — the cheap tier of a
    /// verifier portfolio, not a replacement for Taylor-model abstraction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    #[must_use]
    pub fn forward_interval(&self, x: &[dwv_interval::Interval]) -> Vec<dwv_interval::Interval> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward_interval(&h);
        }
        h
    }

    /// An interval enclosure of the network's input Jacobian over a box:
    /// `out[o][i] ⊇ {∂y_o/∂x_i(x) : x ∈ box}` (Clarke generalized Jacobian
    /// for ReLU kinks).
    ///
    /// Forward-accumulated chain rule in outward-rounded interval
    /// arithmetic: `J ← D_act(pre) · W · J` layer by layer, with the
    /// derivative enclosures of [`crate::Activation::derivative_interval`].
    /// Sound for mean-value/centered forms; widths grow with depth like the
    /// plain interval forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    #[must_use]
    pub fn jacobian_interval(
        &self,
        x: &[dwv_interval::Interval],
    ) -> Vec<Vec<dwv_interval::Interval>> {
        use dwv_interval::Interval;
        let n = self.in_dim();
        assert_eq!(x.len(), n, "input dimension mismatch");
        let mut j: Vec<Vec<Interval>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| {
                        if r == c {
                            Interval::point(1.0)
                        } else {
                            Interval::ZERO
                        }
                    })
                    .collect()
            })
            .collect();
        let mut h = x.to_vec();
        for layer in &self.layers {
            let (act, pre) = layer.forward_interval_parts(&h);
            j = (0..layer.out_dim())
                .map(|o| {
                    let d = layer.activation().derivative_interval(pre[o]);
                    (0..n)
                        .map(|c| {
                            let lin = j.iter().enumerate().fold(Interval::ZERO, |acc, (i, row)| {
                                acc + row[c] * layer.weight(o, i)
                            });
                            d * lin
                        })
                        .collect()
                })
                .collect();
            h = act;
        }
        j
    }

    /// The flat parameter vector `θ` (layer by layer, weights then bias).
    #[must_use]
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.num_params()`.
    pub fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), self.num_params(), "parameter count mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&theta[off..]);
        }
    }

    /// Reverse-mode gradient of a scalar function of the output.
    ///
    /// Runs a forward pass at `x`, then backpropagates `d_out = ∂L/∂y`.
    /// Returns `(∂L/∂θ, ∂L/∂x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `d_out` have wrong dimensions.
    #[must_use]
    pub fn gradient(&self, x: &[f64], d_out: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(d_out.len(), self.out_dim(), "output gradient mismatch");
        // Forward, caching inputs and pre-activations per layer.
        let mut inputs: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut pres: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        for layer in &self.layers {
            inputs.push(h.clone());
            let (act, pre) = layer.forward(&h);
            pres.push(pre);
            h = act;
        }
        // Backward.
        let mut grad = vec![0.0; self.num_params()];
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.num_params();
        }
        let mut d = d_out.to_vec();
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let o = offsets[idx];
            let slice = &mut grad[o..o + layer.num_params()];
            d = layer.backward(&inputs[idx], &pres[idx], &d, slice);
        }
        (grad, d)
    }

    /// The Jacobian `∂y/∂x` (rows = outputs), via one backward pass per
    /// output.
    #[must_use]
    pub fn input_jacobian(&self, x: &[f64]) -> Vec<Vec<f64>> {
        (0..self.out_dim())
            .map(|o| {
                let mut d = vec![0.0; self.out_dim()];
                d[o] = 1.0;
                self.gradient(x, &d).1
            })
            .collect()
    }

    /// A crude global Lipschitz bound: the product over layers of the
    /// spectral-norm upper bound `‖W‖_∞→∞`-style (max row L1 norm), times
    /// activation slopes (≤ 1 for all supported activations).
    ///
    /// Used by the Bernstein abstraction to inflate sampled remainders.
    #[must_use]
    pub fn lipschitz_bound(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| {
                (0..l.out_dim())
                    .map(|o| (0..l.in_dim()).map(|i| l.weight(o, i).abs()).sum::<f64>())
                    .fold(0.0f64, f64::max)
            })
            .product()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[{}", self.in_dim())?;
        for l in &self.layers {
            write!(f, " → {}({})", l.out_dim(), l.activation())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(&[2, 6, 4, 1], Activation::ReLU, Activation::Tanh, 123)
    }

    #[test]
    fn shapes_and_param_count() {
        let n = net();
        assert_eq!(n.in_dim(), 2);
        assert_eq!(n.out_dim(), 1);
        assert_eq!(n.num_params(), 2 * 6 + 6 + 6 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Network::new(&[2, 4, 1], Activation::ReLU, Activation::Tanh, 9);
        let b = Network::new(&[2, 4, 1], Activation::ReLU, Activation::Tanh, 9);
        let c = Network::new(&[2, 4, 1], Activation::ReLU, Activation::Tanh, 10);
        assert_eq!(a.params(), b.params());
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn params_roundtrip() {
        let mut n = net();
        let mut theta = n.params();
        theta.iter_mut().for_each(|v| *v *= 0.5);
        n.set_params(&theta);
        assert_eq!(n.params(), theta);
    }

    #[test]
    fn output_bounded_by_tanh() {
        let n = net();
        for p in [[5.0, -3.0], [100.0, 100.0], [-50.0, 20.0]] {
            let y = n.forward(&p);
            assert!(y[0].abs() <= 1.0);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Use smooth activations so finite differences are reliable.
        let mut n = Network::new(&[2, 5, 1], Activation::Tanh, Activation::Tanh, 7);
        let x = [0.4, -0.9];
        let (grad, d_in) = n.gradient(&x, &[1.0]);
        let h = 1e-6;
        let theta = n.params();
        for p in (0..n.num_params()).step_by(3) {
            let mut plus = theta.clone();
            plus[p] += h;
            n.set_params(&plus);
            let fp = n.forward(&x)[0];
            let mut minus = theta.clone();
            minus[p] -= h;
            n.set_params(&minus);
            let fm = n.forward(&x)[0];
            n.set_params(&theta);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[p] - fd).abs() < 1e-6,
                "param {p}: analytic {} vs fd {fd}",
                grad[p]
            );
        }
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (n.forward(&xp)[0] - n.forward(&xm)[0]) / (2.0 * h);
            assert!((d_in[i] - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn input_jacobian_shape() {
        let n = Network::new(&[3, 4, 2], Activation::Tanh, Activation::Identity, 3);
        let j = n.input_jacobian(&[0.1, 0.2, 0.3]);
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].len(), 3);
    }

    #[test]
    fn lipschitz_bound_dominates_sampled_slopes() {
        let n = Network::new(&[1, 8, 1], Activation::Tanh, Activation::Tanh, 5);
        let lip = n.lipschitz_bound();
        let mut max_slope = 0.0f64;
        for i in 0..100 {
            let x = -2.0 + 4.0 * i as f64 / 100.0;
            let h = 1e-5;
            let s = ((n.forward(&[x + h])[0] - n.forward(&[x - h])[0]) / (2.0 * h)).abs();
            max_slope = max_slope.max(s);
        }
        assert!(
            lip >= max_slope,
            "Lipschitz bound {lip} below slope {max_slope}"
        );
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_layers_panic() {
        let l1 = Layer::from_params(2, 3, vec![0.0; 6], vec![0.0; 3], Activation::ReLU);
        let l2 = Layer::from_params(4, 1, vec![0.0; 4], vec![0.0; 1], Activation::Tanh);
        let _ = Network::from_layers(vec![l1, l2]);
    }

    #[test]
    fn interval_forward_encloses_pointwise_forward() {
        use dwv_interval::Interval;
        let n = Network::new(&[2, 8, 1], Activation::ReLU, Activation::Tanh, 11);
        let box_lo = [-0.7, 0.2];
        let box_hi = [0.4, 1.1];
        let enc = n.forward_interval(&[
            Interval::new(box_lo[0], box_hi[0]),
            Interval::new(box_lo[1], box_hi[1]),
        ]);
        // A coarse grid of concrete points inside the box must map inside
        // the enclosure.
        for i in 0..=8 {
            for j in 0..=8 {
                let x = [
                    box_lo[0] + (box_hi[0] - box_lo[0]) * i as f64 / 8.0,
                    box_lo[1] + (box_hi[1] - box_lo[1]) * j as f64 / 8.0,
                ];
                let y = n.forward(&x);
                assert!(
                    enc[0].contains_value(y[0]),
                    "forward({x:?}) = {} outside enclosure {}",
                    y[0],
                    enc[0]
                );
            }
        }
    }

    #[test]
    fn interval_jacobian_encloses_pointwise_jacobians() {
        use dwv_interval::Interval;
        let n = Network::new(&[2, 6, 1], Activation::ReLU, Activation::Tanh, 13);
        let box_lo = [-0.5, -0.2];
        let box_hi = [0.3, 0.8];
        let jenc = n.jacobian_interval(&[
            Interval::new(box_lo[0], box_hi[0]),
            Interval::new(box_lo[1], box_hi[1]),
        ]);
        assert_eq!(jenc.len(), 1);
        assert_eq!(jenc[0].len(), 2);
        for i in 0..=6 {
            for j in 0..=6 {
                let x = [
                    box_lo[0] + (box_hi[0] - box_lo[0]) * i as f64 / 6.0,
                    box_lo[1] + (box_hi[1] - box_lo[1]) * j as f64 / 6.0,
                ];
                let jp = n.input_jacobian(&x);
                for c in 0..2 {
                    assert!(
                        jenc[0][c].contains_value(jp[0][c]),
                        "∂y/∂x{c} at {x:?} = {} outside {}",
                        jp[0][c],
                        jenc[0][c]
                    );
                }
            }
        }
    }

    #[test]
    fn identity_network_jacobian_is_identity() {
        use dwv_interval::Interval;
        let n = Network::from_layers(vec![crate::Layer::from_params(
            2,
            2,
            vec![1.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0],
            Activation::Identity,
        )]);
        let j = n.jacobian_interval(&[Interval::new(-1.0, 1.0), Interval::new(2.0, 3.0)]);
        // Outward rounding may widen the exact values by a few ulps, but
        // the enclosures must stay tight around the true Jacobian.
        for (r, truth) in [(0, [1.0, 0.0]), (1, [0.0, 1.0])] {
            for c in 0..2 {
                assert!(
                    j[r][c].contains_value(truth[c]),
                    "J[{r}][{c}] = {}",
                    j[r][c]
                );
                assert!(j[r][c].width() < 1e-12, "J[{r}][{c}] too wide: {}", j[r][c]);
            }
        }
    }
}
