//! Activation functions.

use std::fmt;

/// An element-wise activation function.
///
/// The paper's controllers use ReLU hidden layers and a Tanh output layer
/// (§4); Sigmoid and Identity round out the set the verifiers support.
///
/// # Example
///
/// ```
/// use dwv_nn::Activation;
///
/// assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
/// assert_eq!(Activation::ReLU.derivative(3.0), 1.0);
/// assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(x, 0)`.
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Identity (linear layer).
    #[default]
    Identity,
}

impl Activation {
    /// The activation value.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// A directed-rounding enclosure of the activation's image of `x`.
    ///
    /// Every activation in the set is monotone, so the image of an interval
    /// is an interval; the enclosures delegate to the outward-rounded
    /// `dwv-interval` transcendental primitives (identity is exact).
    #[must_use]
    pub fn apply_interval(self, x: dwv_interval::Interval) -> dwv_interval::Interval {
        match self {
            Activation::ReLU => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Identity => x,
        }
    }

    /// A directed-rounding enclosure of the activation's derivative range
    /// over `x`.
    ///
    /// For ReLU the enclosure is the Clarke generalized derivative:
    /// `[1, 1]` on positive inputs, `[0, 0]` on negative ones, and `[0, 1]`
    /// across the kink — so interval chain rules through ReLU networks
    /// enclose every Clarke Jacobian, which is what mean-value enclosures
    /// of piecewise-C¹ controllers require.
    #[must_use]
    pub fn derivative_interval(self, x: dwv_interval::Interval) -> dwv_interval::Interval {
        use dwv_interval::Interval;
        match self {
            Activation::ReLU => {
                if x.lo() > 0.0 {
                    Interval::point(1.0)
                } else if x.hi() <= 0.0 {
                    Interval::ZERO
                } else {
                    Interval::new(0.0, 1.0)
                }
            }
            // tanh' = 1 − tanh²: interval composition of sound enclosures.
            Activation::Tanh => (Interval::point(1.0) - x.tanh().sqr())
                .intersection(&Interval::new(0.0, 1.0))
                .unwrap_or(Interval::new(0.0, 1.0)),
            // σ' = σ(1 − σ), with the global range [0, 1/4].
            Activation::Sigmoid => {
                let s = x.sigmoid();
                (s * (Interval::point(1.0) - s))
                    .intersection(&Interval::new(0.0, 0.25))
                    .unwrap_or(Interval::new(0.0, 0.25))
            }
            Activation::Identity => Interval::point(1.0),
        }
    }

    /// The derivative at `x` (ReLU uses the subgradient value 0 at 0).
    #[must_use]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Taylor coefficients `(f(c), f'(c), f''(c)/2, …)` of the activation at
    /// an expansion point `c`, up to `order` (inclusive).
    ///
    /// Used by the POLAR-style abstraction, which replaces each smooth
    /// activation by its truncated Taylor expansion plus a Lagrange
    /// remainder. ReLU is piecewise-linear and handled separately by the
    /// abstraction; requesting its coefficients returns the linear expansion
    /// valid on a sign-definite interval (slope 1 or 0 at `c`).
    #[must_use]
    pub fn taylor_coefficients(self, c: f64, order: usize) -> Vec<f64> {
        let mut out = vec![0.0; order + 1];
        match self {
            Activation::Identity => {
                out[0] = c;
                if order >= 1 {
                    out[1] = 1.0;
                }
            }
            Activation::ReLU => {
                out[0] = c.max(0.0);
                if order >= 1 {
                    out[1] = if c > 0.0 { 1.0 } else { 0.0 };
                }
            }
            Activation::Tanh => {
                // Derivatives of tanh via the recurrence on polynomials in t = tanh(c):
                // f = t, f' = 1 - t², and d/dx of a polynomial p(t) is p'(t)(1-t²).
                let t = c.tanh();
                // Represent the k-th derivative as a polynomial in t (coeff vec).
                let mut p = vec![0.0, 1.0]; // f(x) = t
                out[0] = poly_eval(&p, t);
                let mut factorial = 1.0;
                #[allow(clippy::needless_range_loop)]
                for k in 1..=order {
                    p = tanh_derivative_step(&p);
                    factorial *= k as f64;
                    out[k] = poly_eval(&p, t) / factorial;
                }
            }
            Activation::Sigmoid => {
                // s' = s(1-s): same trick with polynomials in s.
                let s = 1.0 / (1.0 + (-c).exp());
                let mut p = vec![0.0, 1.0]; // f = s
                out[0] = poly_eval(&p, s);
                let mut factorial = 1.0;
                #[allow(clippy::needless_range_loop)]
                for k in 1..=order {
                    p = sigmoid_derivative_step(&p);
                    factorial *= k as f64;
                    out[k] = poly_eval(&p, s) / factorial;
                }
            }
        }
        out
    }

    /// A bound on the `(order+1)`-th derivative magnitude over any interval,
    /// used for Lagrange remainder bounds in the POLAR-style abstraction.
    ///
    /// Conservative global bounds: |tanh⁽ᵏ⁾| ≤ 2^k·k! and |σ⁽ᵏ⁾| ≤ k!
    /// (standard crude bounds via the polynomial recurrences); Identity and
    /// ReLU have zero higher derivatives away from the kink.
    #[must_use]
    pub fn derivative_bound(self, order: usize) -> f64 {
        match self {
            Activation::Identity | Activation::ReLU => 0.0,
            Activation::Tanh => {
                let mut b = 1.0f64;
                for k in 1..=order {
                    b *= 2.0 * k as f64;
                }
                b
            }
            Activation::Sigmoid => {
                let mut b = 0.25f64;
                for k in 1..=order {
                    b *= k as f64;
                }
                b
            }
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::ReLU => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "identity",
        };
        write!(f, "{s}")
    }
}

fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Given the polynomial (in t = tanh x) representing f⁽ᵏ⁾, returns the one
/// for f⁽ᵏ⁺¹⁾: p'(t)·(1 − t²).
fn tanh_derivative_step(p: &[f64]) -> Vec<f64> {
    let mut dp = vec![0.0; p.len().max(2) + 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        dp[i - 1] += c * i as f64;
    }
    // multiply by (1 - t²)
    let mut out = vec![0.0; dp.len() + 2];
    for (i, &c) in dp.iter().enumerate() {
        out[i] += c;
        out[i + 2] -= c;
    }
    out
}

/// Given the polynomial (in s = σ(x)) representing f⁽ᵏ⁾, returns the one for
/// f⁽ᵏ⁺¹⁾: p'(s)·s·(1 − s).
fn sigmoid_derivative_step(p: &[f64]) -> Vec<f64> {
    let mut dp = vec![0.0; p.len().max(2) + 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        dp[i - 1] += c * i as f64;
    }
    // multiply by s - s²
    let mut out = vec![0.0; dp.len() + 2];
    for (i, &c) in dp.iter().enumerate() {
        out[i + 1] += c;
        out[i + 2] -= c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values() {
        assert_eq!(Activation::ReLU.apply(2.0), 2.0);
        assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(2.0), 1.0);
        assert_eq!(Activation::ReLU.derivative(-2.0), 0.0);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        for x in [-1.5, 0.0, 0.7] {
            let h = 1e-6;
            let fd = (Activation::Tanh.apply(x + h) - Activation::Tanh.apply(x - h)) / (2.0 * h);
            assert!((Activation::Tanh.derivative(x) - fd).abs() < 1e-8);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        for x in [-2.0, 0.0, 1.3] {
            let h = 1e-6;
            let fd =
                (Activation::Sigmoid.apply(x + h) - Activation::Sigmoid.apply(x - h)) / (2.0 * h);
            assert!((Activation::Sigmoid.derivative(x) - fd).abs() < 1e-8);
        }
    }

    #[test]
    fn tanh_taylor_coefficients_approximate_locally() {
        let c = 0.3;
        let coeffs = Activation::Tanh.taylor_coefficients(c, 4);
        // Check the expansion approximates tanh near c.
        for dx in [-0.1f64, 0.0, 0.05, 0.1] {
            let approx: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| a * dx.powi(k as i32))
                .sum();
            assert!(
                (approx - (c + dx).tanh()).abs() < 1e-4,
                "Taylor mismatch at dx={dx}"
            );
        }
        // First two coefficients are the classics.
        assert!((coeffs[0] - c.tanh()).abs() < 1e-12);
        assert!((coeffs[1] - (1.0 - c.tanh().powi(2))).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_taylor_coefficients_approximate_locally() {
        let c = -0.4;
        let coeffs = Activation::Sigmoid.taylor_coefficients(c, 4);
        for dx in [-0.1f64, 0.05, 0.1] {
            let approx: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| a * dx.powi(k as i32))
                .sum();
            let truth = 1.0 / (1.0 + (-(c + dx)).exp());
            assert!((approx - truth).abs() < 1e-4);
        }
    }

    #[test]
    fn identity_and_relu_coefficients() {
        let id = Activation::Identity.taylor_coefficients(2.0, 3);
        assert_eq!(id, vec![2.0, 1.0, 0.0, 0.0]);
        let rp = Activation::ReLU.taylor_coefficients(1.5, 2);
        assert_eq!(rp, vec![1.5, 1.0, 0.0]);
        let rn = Activation::ReLU.taylor_coefficients(-1.5, 2);
        assert_eq!(rn, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn derivative_bounds_nonnegative_and_monotone() {
        for act in [Activation::Tanh, Activation::Sigmoid] {
            let b2 = act.derivative_bound(2);
            let b4 = act.derivative_bound(4);
            assert!(b2 >= 0.0 && b4 >= b2);
        }
        assert_eq!(Activation::ReLU.derivative_bound(2), 0.0);
    }
}
