//! Feed-forward neural networks with manual backpropagation.
//!
//! The paper learns neural-network controllers (ReLU hidden layers, Tanh
//! output — §4) and compares against RL baselines (DDPG, SVG) that *train*
//! networks. This crate is the shared NN substrate:
//!
//! * [`Activation`] — ReLU / Tanh / Sigmoid / Identity with values,
//!   derivatives, and the Taylor coefficients used by the POLAR-style
//!   abstraction;
//! * [`Network`] — a dense multi-layer perceptron with forward evaluation,
//!   reverse-mode gradients, and a *flat parameter vector* view
//!   ([`Network::params`] / [`Network::set_params`]) — exactly the `θ` that
//!   Algorithm 1 perturbs with its difference method;
//! * [`Adam`] / [`Sgd`] — optimizers for the baselines.
//!
//! # Example
//!
//! ```
//! use dwv_nn::{Activation, Network};
//!
//! let mut net = Network::new(&[2, 8, 1], Activation::ReLU, Activation::Tanh, 42);
//! let y = net.forward(&[0.5, -0.3]);
//! assert_eq!(y.len(), 1);
//! assert!(y[0].abs() <= 1.0); // Tanh output layer
//!
//! // Flat parameter access for verification-in-the-loop perturbations:
//! let mut theta = net.params();
//! theta[0] += 1e-3;
//! net.set_params(&theta);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
pub mod arbitrary;
mod layer;
mod network;
mod optim;

pub use activation::Activation;
pub use layer::Layer;
pub use network::Network;
pub use optim::{Adam, Optimizer, Sgd};
