//! First-order optimizers for the RL baselines.

/// A first-order optimizer updating a flat parameter vector in place.
pub trait Optimizer {
    /// Applies one update with gradient `grad` to `params`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != grad.len()` or the length
    /// differs from the one the optimizer was created for.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent `θ ← θ − η·g`.
///
/// # Example
///
/// ```
/// use dwv_nn::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.1);
/// let mut theta = vec![1.0, -2.0];
/// opt.step(&mut theta, &[1.0, 1.0]);
/// assert_eq!(theta, vec![0.9, -2.1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
///
/// # Example
///
/// ```
/// use dwv_nn::{Adam, Optimizer};
///
/// let mut opt = Adam::new(2, 1e-3);
/// let mut theta = vec![0.0, 0.0];
/// for _ in 0..100 {
///     // minimize (θ₀ − 1)² + (θ₁ + 2)²
///     let grad = vec![2.0 * (theta[0] - 1.0), 2.0 * (theta[1] + 2.0)];
///     opt.step(&mut theta, &grad);
/// }
/// assert!((theta[0] - 1.0).abs() < 1.0); // moving toward the optimum
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for `n` parameters with the standard
    /// moments (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    #[must_use]
    pub fn new(n: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        assert_eq!(
            params.len(),
            self.m.len(),
            "optimizer sized for different parameter count"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut x = vec![5.0];
        for _ in 0..100 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(2, 0.05);
        let mut x = vec![3.0, -4.0];
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 1.0).abs() < 1e-2);
        assert!((x[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        let mut opt = Adam::new(2, 0.01);
        let mut x = vec![1.0, 1.0];
        for i in 0..100 {
            let g = if i % 2 == 0 {
                vec![2.0 * x[0], 0.0]
            } else {
                vec![0.0, 2.0 * x[1]]
            };
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1.0 && x[1].abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }
}
