//! Seed-driven network generators for falsification harnesses.
//!
//! Entropy comes from a caller-supplied `next: &mut impl FnMut() -> u64`
//! word source; the drawn architecture and the weight-initialization seed
//! are both derived from it, so the network is a pure function of the seed
//! stream.

use crate::{Activation, Network};

/// A random small feed-forward network: `in_dim` inputs, `out_dim` outputs,
/// 1..=`max_hidden_layers` hidden layers of width 1..=`max_width`, and a
/// hidden activation drawn from {tanh, sigmoid, ReLU}.
///
/// The output layer is always [`Activation::Identity`] (the controller
/// convention used throughout the reproduction).
pub fn network(
    next: &mut impl FnMut() -> u64,
    in_dim: usize,
    out_dim: usize,
    max_hidden_layers: usize,
    max_width: usize,
) -> Network {
    let n_hidden = 1 + (next() as usize) % max_hidden_layers.max(1);
    let mut sizes = vec![in_dim.max(1)];
    for _ in 0..n_hidden {
        sizes.push(1 + (next() as usize) % max_width.max(1));
    }
    sizes.push(out_dim.max(1));
    let hidden = match next() % 3 {
        0 => Activation::Tanh,
        1 => Activation::Sigmoid,
        _ => Activation::ReLU,
    };
    Network::new(&sizes, hidden, Activation::Identity, next())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_architecture_and_weights() {
        let mut a = stream(31);
        let mut b = stream(31);
        let n1 = network(&mut a, 2, 1, 2, 4);
        let n2 = network(&mut b, 2, 1, 2, 4);
        assert_eq!(n1.in_dim(), 2);
        assert_eq!(n1.out_dim(), 1);
        assert_eq!(n1.params(), n2.params());
        let y1 = n1.forward(&[0.3, -0.7]);
        let y2 = n2.forward(&[0.3, -0.7]);
        assert_eq!(y1, y2);
    }
}
