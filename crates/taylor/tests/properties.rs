//! Property-based tests for Taylor-model arithmetic and the validated
//! integrator: the enclosure property under random inputs.

use dwv_interval::{Interval, IntervalBox};
use dwv_poly::Polynomial;
use dwv_taylor::{unit_domain, OdeIntegrator, OdeRhs, TaylorModel, TmVector, TmWorkspace};
use proptest::prelude::*;

/// The exact bit content of a Taylor model: polynomial terms in iteration
/// order with coefficient bit patterns, plus the remainder bounds' bits.
/// Equality here means the models are indistinguishable to any downstream
/// floating-point computation.
fn tm_bits(tm: &TaylorModel) -> (Vec<(Vec<u32>, u64)>, u64, u64) {
    (
        tm.poly()
            .iter()
            .map(|(e, c)| (e.to_vec(), c.to_bits()))
            .collect(),
        tm.remainder().lo().to_bits(),
        tm.remainder().hi().to_bits(),
    )
}

/// A random affine-plus-quadratic TM in one variable with a remainder.
fn tm1() -> impl Strategy<Value = TaylorModel> {
    (-2.0..2.0f64, -2.0..2.0f64, -1.0..1.0f64, 0.0..0.3f64).prop_map(|(c0, c1, c2, r)| {
        TaylorModel::new(
            Polynomial::from_terms(1, vec![(vec![0], c0), (vec![1], c1), (vec![2], c2)]),
            Interval::symmetric(r),
        )
    })
}

/// A member function of the TM's set, indexed by d ∈ [−1, 1]:
/// f(t) = p(t) + d·r.
fn member(tm: &TaylorModel, t: f64, d: f64) -> f64 {
    tm.poly().eval(&[t]) + d * tm.remainder().mag() * tm.remainder().hi().signum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn add_encloses(a in tm1(), b in tm1(), t in -1.0..1.0f64, da in -1.0..1.0f64, db in -1.0..1.0f64) {
        let s = a.add(&b);
        let truth = member(&a, t, da) + member(&b, t, db);
        prop_assert!(s.eval(&[t]).inflate(1e-9).contains_value(truth));
    }

    #[test]
    fn mul_encloses(a in tm1(), b in tm1(), t in -1.0..1.0f64, da in -1.0..1.0f64, db in -1.0..1.0f64) {
        let dom = unit_domain(1);
        let p = a.mul(&b, 3, &dom);
        let truth = member(&a, t, da) * member(&b, t, db);
        prop_assert!(p.eval(&[t]).inflate(1e-6).contains_value(truth));
    }

    #[test]
    fn truncate_encloses(a in tm1(), t in -1.0..1.0f64, d in -1.0..1.0f64) {
        let dom = unit_domain(1);
        let tr = a.truncate(1, &dom);
        prop_assert!(tr.eval(&[t]).inflate(1e-9).contains_value(member(&a, t, d)));
    }

    #[test]
    fn range_contains_samples(a in tm1(), t in -1.0..1.0f64, d in -1.0..1.0f64) {
        let dom = unit_domain(1);
        prop_assert!(a.range(&dom).inflate(1e-9).contains_value(member(&a, t, d)));
        prop_assert!(a.range_bernstein(&dom).inflate(1e-6).contains_value(member(&a, t, d)));
    }

    #[test]
    fn substitute_value_is_evaluation(a in tm1(), v in -1.0..1.0f64) {
        let sub = a.substitute_value(0, v);
        // The substituted model's constant equals p(v); remainder unchanged.
        prop_assert!((sub.poly().constant_term() - a.poly().eval(&[v])).abs() < 1e-9);
        prop_assert_eq!(sub.remainder(), a.remainder());
    }

    #[test]
    fn scale_is_linear(a in tm1(), s in -3.0..3.0f64, t in -1.0..1.0f64) {
        let scaled = a.scale(s);
        let truth = member(&a, t, 1.0) * s;
        prop_assert!(scaled.eval(&[t]).inflate(1e-9 * (1.0 + truth.abs())).contains_value(truth));
    }

    // Zero-copy kernels must be bit-identical to their functional
    // counterparts — the verification loop swaps them in unconditionally,
    // so any drift would silently move enclosure bounds.

    #[test]
    fn add_assign_tm_is_bit_identical(a in tm1(), b in tm1()) {
        let mut ws = TmWorkspace::new();
        let mut x = a.clone();
        x.add_assign_tm(&b, &mut ws);
        prop_assert_eq!(tm_bits(&x), tm_bits(&a.add(&b)));
    }

    #[test]
    fn add_scaled_assign_is_bit_identical(a in tm1(), b in tm1(), s in -3.0..3.0f64) {
        let mut ws = TmWorkspace::new();
        let mut x = a.clone();
        x.add_scaled_assign(&b, s, &mut ws);
        prop_assert_eq!(tm_bits(&x), tm_bits(&a.add(&b.scale(s))));
    }

    #[test]
    fn scale_in_place_is_bit_identical(a in tm1(), s in -3.0..3.0f64) {
        let mut x = a.clone();
        x.scale_in_place(s);
        prop_assert_eq!(tm_bits(&x), tm_bits(&a.scale(s)));
    }

    #[test]
    fn truncate_in_place_is_bit_identical(a in tm1(), d in 0u32..4) {
        let dom = unit_domain(1);
        let mut x = a.clone();
        x.truncate_in_place(d, &dom);
        prop_assert_eq!(tm_bits(&x), tm_bits(&a.truncate(d, &dom)));
    }

    #[test]
    fn mul_truncated_is_bit_identical_to_mul(a in tm1(), b in tm1(), d in 0u32..4) {
        let dom = unit_domain(1);
        let mut ws = TmWorkspace::new();
        let fused = a.mul_truncated(&b, d, &dom, &mut ws);
        prop_assert_eq!(tm_bits(&fused), tm_bits(&a.mul(&b, d, &dom)));
    }

    #[test]
    fn powi_small_exponents_match_repeated_multiply(a in tm1(), e in 1u32..4) {
        // For e ≤ 3 the MSB-first square-and-multiply sequence coincides
        // with the left-associated repeated multiply, so the replacement is
        // bit-exact on every exponent the benchmark fields use.
        let dom = unit_domain(1);
        let mut ws = TmWorkspace::new();
        let mut expect = a.clone();
        for _ in 1..e {
            expect = expect.mul_truncated(&a, 3, &dom, &mut ws);
        }
        prop_assert_eq!(tm_bits(&a.powi(e, 3, &dom)), tm_bits(&expect));
    }

    #[test]
    fn powi_large_exponents_enclose(a in tm1(), e in 4u32..8, t in -1.0..1.0f64, d in -1.0..1.0f64) {
        // Beyond e = 3 the association differs, so only soundness (not bit
        // identity) is required of the O(log e) chain.
        let dom = unit_domain(1);
        let p = a.powi(e, 3, &dom);
        let truth = member(&a, t, d).powi(e as i32);
        prop_assert!(
            p.eval(&[t]).inflate(1e-6 * (1.0 + truth.abs())).contains_value(truth)
        );
    }

    #[test]
    fn flow_step_ws_reuse_is_bit_identical(lambda in 0.1..2.0f64, delta in 0.01..0.3f64) {
        // A dirty, reused workspace must not leak state between steps: the
        // workspace-threaded flow step matches the fresh-workspace one bit
        // for bit.
        let rhs = OdeRhs::new(1, 0, vec![Polynomial::var(1, 0).scale(-lambda)]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.4, 0.6)]));
        let integ = OdeIntegrator::with_order(3);
        let dom = unit_domain(1);
        let fresh = integ.flow_step(&x0, &TmVector::new(vec![]), &rhs, delta, &dom)
            .expect("decay integrates");
        let mut ws = TmWorkspace::new();
        // Dirty the workspace with an unrelated product first.
        let junk = TaylorModel::new(
            Polynomial::from_terms(1, vec![(vec![0], 0.7), (vec![1], -1.3), (vec![2], 0.4)]),
            Interval::symmetric(0.05),
        );
        let _ = junk.mul_truncated(&junk, 2, &dom, &mut ws);
        let reused = integ.flow_step_ws(&x0, &TmVector::new(vec![]), &rhs, delta, &dom, &mut ws)
            .expect("decay integrates");
        for i in 0..1 {
            prop_assert_eq!(tm_bits(reused.end.component(i)), tm_bits(fresh.end.component(i)));
        }
    }

    /// Validated decay flow always contains the analytic solution and always
    /// contracts toward zero for ẋ = −λx.
    #[test]
    fn decay_flow_enclosure(lambda in 0.1..2.0f64, x0lo in 0.2..1.0f64, w in 0.0..0.2f64, delta in 0.01..0.3f64) {
        let rhs = OdeRhs::new(1, 0, vec![Polynomial::var(1, 0).scale(-lambda)]);
        let b = IntervalBox::from_bounds(&[(x0lo, x0lo + w)]);
        let x0 = TmVector::from_box(&b);
        let integ = OdeIntegrator::with_order(4);
        let step = integ
            .flow_step(&x0, &TmVector::new(vec![]), &rhs, delta, &unit_domain(1))
            .expect("decay integrates");
        let end = step.end.range_box(&unit_domain(1));
        for x in [x0lo, x0lo + w] {
            let truth = x * (-lambda * delta).exp();
            prop_assert!(end.interval(0).inflate(1e-7).contains_value(truth));
        }
        // Over-approximation stays within 3x of the true image width.
        let true_w = w * (-lambda * delta).exp();
        prop_assert!(end.interval(0).width() <= (true_w + 1e-6) * 3.0 + 1e-6);
    }

    /// Constant-input integrator is exact up to rounding: ẋ = u.
    #[test]
    fn constant_input_flow(u in -2.0..2.0f64, delta in 0.01..0.5f64) {
        let rhs = OdeRhs::new(1, 1, vec![Polynomial::var(2, 1)]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.0, 0.0)]));
        let uv = TmVector::new(vec![TaylorModel::constant(1, u)]);
        let integ = OdeIntegrator::default();
        let step = integ
            .flow_step(&x0, &uv, &rhs, delta, &unit_domain(1))
            .expect("trivial field integrates");
        let end = step.end.range_box(&unit_domain(1));
        prop_assert!(end.interval(0).inflate(1e-9).contains_value(u * delta));
        prop_assert!(end.interval(0).width() < 1e-6);
    }
}
