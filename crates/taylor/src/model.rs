//! Taylor-model arithmetic.
// dwv-lint: allow-file(panic-freedom#index) -- variable/exponent/component indices are asserted or bounded by iteration over the same collection

use dwv_interval::{Interval, IntervalBox};
use dwv_poly::bernstein::RangeCache;
use dwv_poly::{PolyWorkspace, Polynomial};
use std::fmt;

/// Scratch arena threaded through a verification loop.
///
/// Bundles the polynomial kernel scratch buffers with a per-call-site
/// Bernstein range memo. One workspace created per reachability run (or per
/// flowpipe step / NN-layer propagation) turns the per-term-vector heap
/// allocations of the functional [`TaylorModel`] ops into O(1) amortized
/// allocations, and lets repeated Bernstein enclosures of unchanged
/// polynomial parts — Picard validation attempts, layer-by-layer activation
/// ranges — hit the memo instead of re-contracting the coefficient tensor.
///
/// A workspace carries no semantic state: every operation through it is
/// bit-identical to its functional counterpart (the cache stores exact
/// results under exact content keys), so workspaces may be dropped,
/// recreated, or shared across unrelated call sites freely.
#[derive(Debug, Default)]
pub struct TmWorkspace {
    /// Polynomial kernel scratch buffers.
    pub poly: PolyWorkspace,
    /// Bernstein range-enclosure memo.
    pub bern: RangeCache,
    /// Extended-domain staging (`k` shared variables + normalized time),
    /// rebuilt by each flowpipe step into retained capacity.
    pub dom_ext: Vec<Interval>,
    /// Zero-remainder vector for the baseline defect replay.
    pub zero_rems: Vec<Interval>,
    /// Trial remainder candidate (double-buffered with [`Self::cand_next`]).
    pub cand: Vec<Interval>,
    /// Staging for the next inflation candidate.
    pub cand_next: Vec<Interval>,
    /// Picard iterate polynomials (double-buffered with [`Self::flow_tmp`]).
    pub flow_xs: Vec<Polynomial>,
    /// Staging for the next Picard iterate.
    pub flow_tmp: Vec<Polynomial>,
}

impl TmWorkspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Coefficient-pruning threshold applied by [`TaylorModel::mul`] and
/// [`TaylorModel::truncate`].
///
/// Terms with `|coefficient| ≤ DEFAULT_PRUNE_EPS` are moved out of the
/// polynomial part, and their interval range over the operation's domain is
/// added to the remainder — *soundly*, never silently discarded. This keeps
/// term counts from creeping up with numerically-zero debris during long
/// flowpipe compositions while preserving the enclosure property.
pub const DEFAULT_PRUNE_EPS: f64 = 1e-14;

/// The canonical normalized domain `[-1, 1]^k`.
///
/// Taylor models in this crate do not carry their domain; operations that
/// need one (truncation, range, multiplication) take it explicitly. State
/// variables are conventionally normalized to `[-1, 1]`, time within a
/// control step to `[0, 1]`.
#[must_use]
pub fn unit_domain(k: usize) -> Vec<Interval> {
    vec![Interval::new(-1.0, 1.0); k]
}

/// A Taylor model: a polynomial part plus an interval remainder.
///
/// `TaylorModel { p, I }` over a domain `D` represents the set of functions
/// `{ f : ∀x ∈ D, f(x) − p(x) ∈ I }`. All operations are conservative:
/// the result model encloses every function obtainable by applying the
/// operation to enclosed operands. Truncated polynomial terms are evaluated
/// with interval arithmetic over the domain and absorbed into the remainder.
///
/// This is the common substrate of the Flow\*-style flowpipe integrator
/// ([`crate::flowpipe`]) and the POLAR-style neural-network abstraction
/// (in `dwv-reach`).
///
/// # Example
///
/// ```
/// use dwv_taylor::{unit_domain, TaylorModel};
///
/// let dom = unit_domain(1);
/// let x = TaylorModel::var(1, 0);
/// let y = x.mul(&x, 10, &dom); // x² with no truncation at order 10
/// let r = y.range(&dom);
/// assert!(r.lo() <= 0.0 && r.hi() >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaylorModel {
    poly: Polynomial,
    remainder: Interval,
}

impl TaylorModel {
    /// Creates a Taylor model from its parts.
    #[must_use]
    pub fn new(poly: Polynomial, remainder: Interval) -> Self {
        debug_assert!(
            poly.iter().all(|(_, c)| !c.is_nan()),
            "polynomial part carries a NaN coefficient"
        );
        debug_assert!(
            !remainder.lo().is_nan() && remainder.lo() <= remainder.hi(),
            "invalid remainder interval"
        );
        Self { poly, remainder }
    }

    /// The zero model in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> Self {
        Self::new(Polynomial::zero(nvars), Interval::ZERO)
    }

    /// The constant model `c` (zero remainder).
    #[must_use]
    pub fn constant(nvars: usize, c: f64) -> Self {
        Self::new(Polynomial::constant(nvars, c), Interval::ZERO)
    }

    /// The identity model of variable `i`.
    #[must_use]
    pub fn var(nvars: usize, i: usize) -> Self {
        Self::new(Polynomial::var(nvars, i), Interval::ZERO)
    }

    /// A pure-interval model (zero polynomial, the interval as remainder).
    #[must_use]
    pub fn from_interval(nvars: usize, iv: Interval) -> Self {
        Self::new(Polynomial::zero(nvars), iv)
    }

    /// The polynomial part.
    #[must_use]
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }

    /// Consumes the model, yielding its parts (the move-based counterpart of
    /// [`TaylorModel::poly`] + [`TaylorModel::remainder`]).
    #[must_use]
    pub fn into_parts(self) -> (Polynomial, Interval) {
        (self.poly, self.remainder)
    }

    /// The remainder interval.
    #[must_use]
    pub fn remainder(&self) -> Interval {
        self.remainder
    }

    /// The number of (normalized) variables.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.poly.nvars()
    }

    /// Replaces the remainder (used by remainder-validation loops).
    #[must_use]
    pub fn with_remainder(&self, remainder: Interval) -> Self {
        Self::new(self.poly.clone(), remainder)
    }

    /// Conservative range enclosure over `domain` (interval evaluation of the
    /// polynomial part plus the remainder).
    #[must_use]
    pub fn range(&self, domain: &[Interval]) -> Interval {
        self.poly.eval_interval(domain) + self.remainder
    }

    /// Range enclosure using the Bernstein form of the polynomial part —
    /// tighter than [`TaylorModel::range`], at higher cost. Requires a
    /// bounded domain.
    #[must_use]
    pub fn range_bernstein(&self, domain: &[Interval]) -> Interval {
        let b = IntervalBox::new(domain.to_vec());
        dwv_poly::bernstein::range_enclosure(&self.poly, &b) + self.remainder
    }

    /// [`TaylorModel::range_bernstein`] served through a [`RangeCache`] —
    /// bit-identical, with repeated enclosures of the same polynomial/domain
    /// pair answered from the memo instead of re-contracting the tensor.
    #[must_use]
    pub fn range_bernstein_cached(&self, domain: &[Interval], cache: &mut RangeCache) -> Interval {
        cache.range_enclosure(&self.poly, domain) + self.remainder
    }

    /// Sum of two models (remainders add).
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    #[must_use]
    pub fn add(&self, rhs: &TaylorModel) -> TaylorModel {
        TaylorModel::new(
            self.poly.clone() + rhs.poly.clone(), // dwv-lint: allow(float-hygiene) -- Polynomial-typed operator (term merge, no float rounding)
            self.remainder + rhs.remainder,
        )
    }

    /// Difference of two models.
    #[must_use]
    pub fn sub(&self, rhs: &TaylorModel) -> TaylorModel {
        TaylorModel::new(
            self.poly.clone() - rhs.poly.clone(), // dwv-lint: allow(float-hygiene) -- Polynomial-typed operator (term merge, no float rounding)
            self.remainder - rhs.remainder,
        )
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> TaylorModel {
        TaylorModel::new(self.poly.clone().scale(-1.0), -self.remainder)
    }

    /// Scalar multiple.
    #[must_use]
    pub fn scale(&self, s: f64) -> TaylorModel {
        TaylorModel::new(
            self.poly.clone().scale(s),
            self.remainder * Interval::point(s),
        )
    }

    /// Adds a constant offset.
    #[must_use]
    pub fn add_constant(&self, c: f64) -> TaylorModel {
        TaylorModel::new(
            self.poly.clone() + Polynomial::constant(self.nvars(), c),
            self.remainder,
        )
    }

    /// Adds an interval (widens the remainder).
    #[must_use]
    pub fn add_interval(&self, iv: Interval) -> TaylorModel {
        self.with_remainder(self.remainder + iv)
    }

    /// Product with truncation at total degree `order` over `domain`.
    ///
    /// The exact product remainder is
    /// `range(p₁)·I₂ + range(p₂)·I₁ + I₁·I₂ + range(overflow terms)`.
    /// Cross terms whose remainder factor is *exactly* `[0, 0]` are skipped:
    /// `X · {0} = {0}` contributes nothing, and skipping avoids both the
    /// polynomial range evaluation and the spurious outward widening an
    /// interval multiply by zero would introduce. [`TaylorModel::mul_truncated`]
    /// applies the identical skip, keeping the two bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on variable-count or domain-length mismatch.
    #[must_use]
    pub fn mul(&self, rhs: &TaylorModel, order: u32, domain: &[Interval]) -> TaylorModel {
        let full = self.poly.clone() * rhs.poly.clone(); // dwv-lint: allow(float-hygiene) -- Polynomial-typed operator (term merge, no float rounding)
        let (kept, overflow) = full.split_at_degree(order);
        let mut rem = overflow.eval_interval(domain);
        if rhs.remainder != Interval::ZERO {
            rem += self.poly.eval_interval(domain) * rhs.remainder;
        }
        if self.remainder != Interval::ZERO {
            rem += rhs.poly.eval_interval(domain) * self.remainder;
            if rhs.remainder != Interval::ZERO {
                rem += self.remainder * rhs.remainder;
            }
        }
        TaylorModel::new(kept, rem).prune(DEFAULT_PRUNE_EPS, domain)
    }

    /// Fused product + truncation: bit-identical to [`TaylorModel::mul`], but
    /// the product terms above `order` are folded straight into the remainder
    /// as they stream out of the multiply — the full-degree product `mul`
    /// builds and immediately splits is never materialized.
    ///
    /// # Panics
    ///
    /// Panics on variable-count or domain-length mismatch.
    #[must_use]
    pub fn mul_truncated(
        &self,
        rhs: &TaylorModel,
        order: u32,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> TaylorModel {
        let mut kept = Polynomial::zero(self.nvars());
        let mut rem =
            self.poly
                .mul_truncated_into(&rhs.poly, order, domain, &mut kept, &mut ws.poly);
        // Identical exact-zero-remainder skip as `mul` (see there for the
        // soundness note) — during the polynomial Picard phase, where all
        // remainders are stripped to zero, this removes every cross-term
        // range evaluation from the hot loop.
        if rhs.remainder != Interval::ZERO {
            rem += self.poly.eval_interval(domain) * rhs.remainder;
        }
        if self.remainder != Interval::ZERO {
            rem += rhs.poly.eval_interval(domain) * self.remainder;
            if rhs.remainder != Interval::ZERO {
                rem += self.remainder * rhs.remainder;
            }
        }
        let mut out = TaylorModel::new(kept, rem);
        out.prune_in_place(DEFAULT_PRUNE_EPS, domain);
        out
    }

    /// In-place sum, bit-identical to [`TaylorModel::add`].
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn add_assign_tm(&mut self, rhs: &TaylorModel, ws: &mut TmWorkspace) {
        self.poly.add_assign_ref(&rhs.poly, &mut ws.poly);
        self.remainder += rhs.remainder;
    }

    /// In-place fused `self += s·rhs`, bit-identical to
    /// `self.add(&rhs.scale(s))` without materializing the scaled copy.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn add_scaled_assign(&mut self, rhs: &TaylorModel, s: f64, ws: &mut TmWorkspace) {
        self.poly.add_scaled_assign(&rhs.poly, s, &mut ws.poly);
        self.remainder += rhs.remainder * Interval::point(s);
    }

    /// In-place scalar multiple, bit-identical to [`TaylorModel::scale`].
    pub fn scale_in_place(&mut self, s: f64) {
        self.poly.scale_in_place(s);
        self.remainder *= Interval::point(s);
    }

    /// In-place truncation, bit-identical to [`TaylorModel::truncate`].
    pub fn truncate_in_place(&mut self, order: u32, domain: &[Interval]) {
        if let Some(overflow) = self.poly.truncate_in_place(order, domain) {
            self.remainder += overflow;
        }
        self.prune_in_place(DEFAULT_PRUNE_EPS, domain);
    }

    /// In-place pruning, bit-identical to [`TaylorModel::prune`].
    pub fn prune_in_place(&mut self, eps: f64, domain: &[Interval]) {
        if eps <= 0.0 {
            return;
        }
        if let Some(dropped) = self.poly.prune_in_place(eps, domain) {
            self.remainder += dropped;
        }
    }

    /// Truncates the polynomial part to total degree `order`, absorbing the
    /// overflow's range into the remainder.
    #[must_use]
    pub fn truncate(&self, order: u32, domain: &[Interval]) -> TaylorModel {
        let (kept, overflow) = self.poly.split_at_degree(order);
        if overflow.is_zero() {
            return self.prune(DEFAULT_PRUNE_EPS, domain);
        }
        TaylorModel::new(kept, self.remainder + overflow.eval_interval(domain))
            .prune(DEFAULT_PRUNE_EPS, domain)
    }

    /// Moves polynomial terms with `|coefficient| ≤ eps` into the remainder:
    /// the dropped terms' interval range over `domain` is added to the
    /// remainder, so the result still encloses every function the original
    /// model enclosed. With `eps = 0` only exact-zero terms (never stored)
    /// would qualify, so the model is returned unchanged.
    #[must_use]
    pub fn prune(&self, eps: f64, domain: &[Interval]) -> TaylorModel {
        if eps <= 0.0 {
            return self.clone();
        }
        let (kept, dropped) = self.poly.prune(eps);
        if dropped.is_zero() {
            return self.clone();
        }
        TaylorModel::new(kept, self.remainder + dropped.eval_interval(domain))
    }

    /// Integer power with truncation.
    #[must_use]
    pub fn powi(&self, e: u32, order: u32, domain: &[Interval]) -> TaylorModel {
        let mut ws = TmWorkspace::new();
        self.powi_ws(e, order, domain, &mut ws)
    }

    /// [`TaylorModel::powi`] with an explicit workspace: square-and-multiply
    /// (MSB-first) over the fused [`TaylorModel::mul_truncated`], O(log e)
    /// truncated products instead of the former O(e) repeated multiply. For
    /// `e ≤ 3` the multiplication sequence coincides with the repeated
    /// multiply, so results are bit-identical there; for larger exponents the
    /// association differs (both enclosures remain sound).
    #[must_use]
    pub fn powi_ws(
        &self,
        e: u32,
        order: u32,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> TaylorModel {
        if e == 0 {
            return TaylorModel::constant(self.nvars(), 1.0);
        }
        let nbits = 32 - e.leading_zeros();
        let mut acc = self.clone();
        for i in (0..nbits - 1).rev() {
            acc = acc.mul_truncated(&acc, order, domain, ws);
            if (e >> i) & 1 == 1 {
                acc = acc.mul_truncated(self, order, domain, ws);
            }
        }
        acc
    }

    /// Antiderivative with respect to variable `var`, for a variable whose
    /// domain starts at 0 (the normalized time variable of a flow step):
    /// `(∫₀^t p ds, I · [0, sup t])`.
    ///
    /// # Panics
    ///
    /// Panics if `domain[var].lo() < 0` (the zero-based-time assumption).
    #[must_use]
    pub fn antiderivative(&self, var: usize, domain: &[Interval]) -> TaylorModel {
        assert!(
            domain[var].lo() >= 0.0,
            "antiderivative requires a zero-based variable domain"
        );
        TaylorModel::new(
            self.poly.antiderivative(var),
            self.remainder * Interval::new(0.0, domain[var].hi()),
        )
    }

    /// Substitutes the constant `value` for variable `var` (e.g. evaluating
    /// the flow at the end of a step, `t = 1`). The variable count is
    /// preserved; the variable simply no longer occurs.
    #[must_use]
    pub fn substitute_value(&self, var: usize, value: f64) -> TaylorModel {
        // `x * 1.0 == x` and `value^0 == 1.0` exactly in IEEE-754, so the
        // verified pipeline's step-end substitution `t = 1` never rounds;
        // the polynomial kernel merges colliding terms in the same ascending
        // key order the old term-by-term accumulation used.
        TaylorModel::new(self.poly.substitute_value(var, value), self.remainder)
    }

    /// Composes the model's polynomial with Taylor-model arguments:
    /// `p(args…) + I`, truncated at `order` over `arg_domain` (the domain of
    /// the argument models).
    ///
    /// This is the workhorse of both the symbolic dependency-tracking mode
    /// (substituting the previous step's state models) and the POLAR
    /// activation composition.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.nvars()` or the argument models disagree
    /// on their variable count.
    #[must_use]
    pub fn compose(
        &self,
        args: &[TaylorModel],
        order: u32,
        arg_domain: &[Interval],
    ) -> TaylorModel {
        let mut ws = TmWorkspace::new();
        self.compose_ws(args, order, arg_domain, &mut ws)
    }

    /// [`TaylorModel::compose`] with an explicit workspace.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.nvars()` or the argument models disagree
    /// on their variable count.
    #[must_use]
    pub fn compose_ws(
        &self,
        args: &[TaylorModel],
        order: u32,
        arg_domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> TaylorModel {
        compose_parts_ws(&self.poly, self.remainder, args, order, arg_domain, ws)
    }

    /// Extends the model to `new_nvars` variables (added variables unused).
    #[must_use]
    pub fn extend_vars(&self, new_nvars: usize) -> TaylorModel {
        TaylorModel::new(self.poly.extend_vars(new_nvars), self.remainder)
    }

    /// Drops trailing variables, which must not occur in the polynomial
    /// part (e.g. removing the time variable after `t = 1` substitution).
    ///
    /// # Panics
    ///
    /// Panics if a dropped variable still occurs.
    #[must_use]
    pub fn shrink_vars(&self, new_nvars: usize) -> TaylorModel {
        TaylorModel::new(self.poly.shrink_vars(new_nvars), self.remainder)
    }

    /// Evaluates the polynomial part at a point, returning the interval
    /// `p(x) + I`.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> Interval {
        Interval::point(self.poly.eval(x)) + self.remainder
    }
}

impl fmt::Display for TaylorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.poly, self.remainder)
    }
}

/// Composes a borrowed polynomial-plus-remainder pair with Taylor-model
/// arguments — [`TaylorModel::compose`] without requiring an owned model, so
/// callers (e.g. vector-field evaluation in the flowpipe) can compose the
/// system's field polynomials without cloning them into models first.
///
/// Argument powers are shared through per-variable tables built by successive
/// multiplication — the same left-associated products the per-term `powi` of
/// the naive composition computes, so the result is bit-identical while each
/// power is computed once instead of once per occurrence.
///
/// # Panics
///
/// Panics if `args.len() != poly.nvars()` or the argument models disagree on
/// their variable count.
#[must_use]
pub fn compose_parts_ws(
    poly: &Polynomial,
    remainder: Interval,
    args: &[TaylorModel],
    order: u32,
    arg_domain: &[Interval],
    ws: &mut TmWorkspace,
) -> TaylorModel {
    assert_eq!(args.len(), poly.nvars(), "argument count mismatch");
    let out_vars = args.first().map_or(0, TaylorModel::nvars);
    assert!(
        args.iter().all(|a| a.nvars() == out_vars),
        "argument models must share a variable count"
    );
    let mut max_exp = vec![0u32; poly.nvars()];
    for (exps, _) in poly.iter() {
        for (i, &e) in exps.iter().enumerate() {
            max_exp[i] = max_exp[i].max(e);
        }
    }
    // pows[i][e-1] = args[i]^e, truncated at `order`.
    let pows: Vec<Vec<TaylorModel>> = max_exp
        .iter()
        .enumerate()
        .map(|(i, &me)| {
            let mut table = Vec::with_capacity(me as usize);
            if me >= 1 {
                let mut prev = args[i].clone();
                for _ in 1..me {
                    let next = prev.mul_truncated(&args[i], order, arg_domain, ws);
                    table.push(std::mem::replace(&mut prev, next));
                }
                table.push(prev);
            }
            table
        })
        .collect();
    let mut acc = TaylorModel::from_interval(out_vars, remainder);
    for (exps, c) in poly.iter() {
        let mut term: Option<TaylorModel> = None;
        for (i, &e) in exps.iter().enumerate() {
            if e > 0 {
                let pw = &pows[i][e as usize - 1];
                term = Some(match term {
                    // Constant × power: a scalar multiple of the power table
                    // entry. `pw` is already truncated at `order`, so the
                    // product has no overflow terms, and the constant model's
                    // zero remainder makes all but one cross term vanish —
                    // scale + prune computes exactly the surviving
                    // operations of `constant(c).mul_truncated(pw, …)`.
                    None => {
                        let mut t = pw.scale(c);
                        t.prune_in_place(DEFAULT_PRUNE_EPS, arg_domain);
                        t
                    }
                    Some(t) => t.mul_truncated(pw, order, arg_domain, ws),
                });
            }
        }
        match term {
            Some(t) => acc.add_assign_tm(&t, ws),
            None => acc.add_assign_tm(&TaylorModel::constant(out_vars, c), ws),
        }
    }
    acc
}

/// Polynomial-only composition with degree truncation, **discarding** every
/// truncated or pruned tail (no interval accounting): evaluates
/// `poly(args…)` over plain polynomials, truncating at `order`.
///
/// This is the candidate-generation counterpart of [`compose_parts_ws`] for
/// callers that rebuild a sound enclosure independently of the composition —
/// the flowpipe's polynomial Picard phase, which discards all iteration
/// remainders and derives the step enclosure from the final polynomial alone
/// via remainder validation. The kept coefficients are bit-identical to the
/// polynomial parts [`compose_parts_ws`] produces for remainder-free
/// arguments (same products, same truncation and pruning thresholds); only
/// the interval side is omitted.
///
/// # Panics
///
/// Panics if `args.len() != poly.nvars()` or the argument polynomials
/// disagree on their variable count.
#[must_use]
pub fn compose_polys_dropping_ws(
    poly: &Polynomial,
    args: &[&Polynomial],
    order: u32,
    ws: &mut PolyWorkspace,
) -> Polynomial {
    assert_eq!(args.len(), poly.nvars(), "argument count mismatch");
    let out_vars = args.first().map_or(0, |a| a.nvars());
    assert!(
        args.iter().all(|a| a.nvars() == out_vars),
        "argument polynomials must share a variable count"
    );
    let mut max_exp = vec![0u32; poly.nvars()];
    for (exps, _) in poly.iter() {
        for (i, &e) in exps.iter().enumerate() {
            max_exp[i] = max_exp[i].max(e);
        }
    }
    // pows[i][e-1] = args[i]^e, truncated at `order`, pruned like the
    // Taylor-model power tables (identical coefficient streams).
    let pows: Vec<Vec<Polynomial>> = max_exp
        .iter()
        .enumerate()
        .map(|(i, &me)| {
            let mut table = Vec::with_capacity(me as usize);
            if me >= 1 {
                let mut prev = args[i].clone();
                for _ in 1..me {
                    let mut next = Polynomial::zero(out_vars);
                    prev.mul_dropping_into(args[i], order, &mut next, ws);
                    next.prune_dropping(DEFAULT_PRUNE_EPS);
                    table.push(std::mem::replace(&mut prev, next));
                }
                table.push(prev);
            }
            table
        })
        .collect();
    let mut acc = Polynomial::zero(out_vars);
    let mut term = Polynomial::zero(out_vars);
    let mut next = Polynomial::zero(out_vars);
    for (exps, c) in poly.iter() {
        let mut started = false;
        for (i, &e) in exps.iter().enumerate() {
            if e > 0 {
                let pw = &pows[i][e as usize - 1];
                if started {
                    term.mul_dropping_into(pw, order, &mut next, ws);
                    next.prune_dropping(DEFAULT_PRUNE_EPS);
                    std::mem::swap(&mut term, &mut next);
                } else {
                    term = pw.scale(c);
                    term.prune_dropping(DEFAULT_PRUNE_EPS);
                    started = true;
                }
            }
        }
        if started {
            acc.add_assign_ref(&term, ws);
        } else {
            acc.add_assign_ref(&Polynomial::constant(out_vars, c), ws);
        }
    }
    acc
}

/// A vector of Taylor models over a shared variable space — the enclosure of
/// a system state.
///
/// # Example
///
/// ```
/// use dwv_taylor::TmVector;
/// use dwv_interval::IntervalBox;
///
/// let x0 = IntervalBox::from_bounds(&[(1.0, 2.0), (-1.0, 0.0)]);
/// let tm = TmVector::from_box(&x0);
/// assert_eq!(tm.dim(), 2);
/// let back = tm.range_box(&dwv_taylor::unit_domain(2));
/// assert!(back.contains(&x0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TmVector {
    tms: Vec<TaylorModel>,
}

impl TmVector {
    /// Creates a vector from components.
    ///
    /// # Panics
    ///
    /// Panics if components disagree on their variable count.
    #[must_use]
    pub fn new(tms: Vec<TaylorModel>) -> Self {
        if let Some(first) = tms.first() {
            assert!(
                tms.iter().all(|t| t.nvars() == first.nvars()),
                "component variable counts differ"
            );
        }
        Self { tms }
    }

    /// The affine models `x_i = c_i + r_i·a_i` of a box over the normalized
    /// variables `a ∈ [-1,1]ⁿ` (one fresh variable per state dimension).
    #[must_use]
    pub fn from_box(b: &IntervalBox) -> Self {
        let n = b.dim();
        let tms = (0..n)
            .map(|i| {
                let iv = b.interval(i);
                TaylorModel::new(
                    Polynomial::constant(n, iv.mid()) + Polynomial::var(n, i).scale(iv.rad()),
                    Interval::ZERO,
                )
            })
            .collect();
        Self { tms }
    }

    /// The state dimension (number of components).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.tms.len()
    }

    /// The shared variable count.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.tms.first().map_or(0, TaylorModel::nvars)
    }

    /// The components.
    #[must_use]
    pub fn components(&self) -> &[TaylorModel] {
        &self.tms
    }

    /// Consumes the vector, yielding its components (the move-based
    /// counterpart of [`TmVector::components`]` + to_vec()`).
    #[must_use]
    pub fn into_components(self) -> Vec<TaylorModel> {
        self.tms
    }

    /// The `i`-th component.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn component(&self, i: usize) -> &TaylorModel {
        &self.tms[i]
    }

    /// Box enclosure of the vector's range over `domain`.
    #[must_use]
    pub fn range_box(&self, domain: &[Interval]) -> IntervalBox {
        IntervalBox::new(self.tms.iter().map(|t| t.range(domain)).collect())
    }

    /// Box enclosure using Bernstein forms (tighter, slower).
    #[must_use]
    pub fn range_box_bernstein(&self, domain: &[Interval]) -> IntervalBox {
        IntervalBox::new(self.tms.iter().map(|t| t.range_bernstein(domain)).collect())
    }

    /// [`TmVector::range_box_bernstein`] served through a [`RangeCache`] —
    /// bit-identical, with per-component memo hits.
    #[must_use]
    pub fn range_box_bernstein_cached(
        &self,
        domain: &[Interval],
        cache: &mut RangeCache,
    ) -> IntervalBox {
        IntervalBox::new(
            self.tms
                .iter()
                .map(|t| t.range_bernstein_cached(domain, cache))
                .collect(),
        )
    }

    /// Extends all components to `new_nvars` variables.
    #[must_use]
    pub fn extend_vars(&self, new_nvars: usize) -> TmVector {
        TmVector::new(self.tms.iter().map(|t| t.extend_vars(new_nvars)).collect())
    }

    /// Substitutes a constant for a variable in every component.
    #[must_use]
    pub fn substitute_value(&self, var: usize, value: f64) -> TmVector {
        TmVector::new(
            self.tms
                .iter()
                .map(|t| t.substitute_value(var, value))
                .collect(),
        )
    }

    /// Component-wise composition: every component's polynomial is evaluated
    /// at the `args` models.
    #[must_use]
    pub fn compose(&self, args: &[TaylorModel], order: u32, arg_domain: &[Interval]) -> TmVector {
        TmVector::new(
            self.tms
                .iter()
                .map(|t| t.compose(args, order, arg_domain))
                .collect(),
        )
    }
}

impl FromIterator<TaylorModel> for TmVector {
    fn from_iter<I: IntoIterator<Item = TaylorModel>>(iter: I) -> Self {
        TmVector::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom1() -> Vec<Interval> {
        unit_domain(1)
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN coefficient")]
    fn new_guards_nan_coefficient_in_debug() {
        let _ = TaylorModel::new(Polynomial::constant(1, f64::NAN), Interval::ZERO);
    }

    #[test]
    fn constant_and_var_ranges() {
        let c = TaylorModel::constant(1, 3.0);
        let r = c.range(&dom1());
        assert!(r.contains_value(3.0) && r.width() < 1e-12);
        let x = TaylorModel::var(1, 0);
        let r = x.range(&dom1());
        assert!(r.contains(&Interval::new(-1.0, 1.0)));
    }

    #[test]
    fn add_sub_remainders() {
        let a = TaylorModel::var(1, 0).add_interval(Interval::new(-0.1, 0.1));
        let b = TaylorModel::constant(1, 1.0).add_interval(Interval::new(-0.2, 0.2));
        let s = a.add(&b);
        assert!(s.remainder().contains(&Interval::new(-0.3, 0.3)));
        let d = a.sub(&b);
        assert!(d.remainder().contains(&Interval::new(-0.3, 0.3)));
    }

    #[test]
    fn mul_truncation_pushes_overflow_to_remainder() {
        let x = TaylorModel::var(1, 0);
        let sq = x.mul(&x, 1, &dom1()); // truncate x² at order 1
        assert!(sq.poly().is_zero());
        // The remainder must enclose [0, 1] (wait: x² range) which over
        // [-1,1] is [0,1]; interval eval of x·x gives [-1,1].
        assert!(sq.remainder().contains(&Interval::new(0.0, 1.0)));
    }

    #[test]
    fn mul_encloses_function_product() {
        // (x + [-0.1,0.1]) * (x + 1): check sample containment.
        let a = TaylorModel::var(1, 0).add_interval(Interval::new(-0.1, 0.1));
        let b = TaylorModel::var(1, 0).add_constant(1.0);
        let prod = a.mul(&b, 5, &dom1());
        for i in 0..=10 {
            let x = -1.0 + 0.2 * i as f64;
            for da in [-0.1, 0.0, 0.1] {
                let truth = (x + da) * (x + 1.0);
                assert!(
                    prod.eval(&[x]).contains_value(truth),
                    "product enclosure misses f({x}) with perturbation {da}"
                );
            }
        }
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let x = TaylorModel::var(1, 0).add_constant(0.5);
        let p3 = x.powi(3, 10, &dom1());
        for i in 0..=8 {
            let t = -1.0 + 0.25 * i as f64;
            let truth = (t + 0.5f64).powi(3);
            assert!(p3.eval(&[t]).contains_value(truth));
        }
        assert_eq!(x.powi(0, 10, &dom1()), TaylorModel::constant(1, 1.0));
    }

    #[test]
    fn antiderivative_time() {
        // d/dt of a constant 2 over t in [0, 1] → 2t.
        let dom = vec![Interval::new(0.0, 1.0)];
        let c = TaylorModel::constant(1, 2.0).add_interval(Interval::new(-0.1, 0.1));
        let int = c.antiderivative(0, &dom);
        assert_eq!(int.poly().coefficient(&[1]), 2.0);
        // remainder scaled by [0, 1]
        assert!(int.remainder().contains(&Interval::new(-0.1, 0.1)));
    }

    #[test]
    fn substitute_value_at_step_end() {
        // 1 + 2t + t² at t=1 → 4.
        let t = TaylorModel::var(1, 0);
        let p = t.mul(&t, 5, &dom1()).add(&t.scale(2.0)).add_constant(1.0);
        let end = p.substitute_value(0, 1.0);
        assert_eq!(end.poly().constant_term(), 4.0);
        assert_eq!(end.poly().degree(), 0);
    }

    #[test]
    fn compose_affine_through_square() {
        // f(y) = y², arg y = 0.5 + 0.25 a over a ∈ [-1,1]
        let y = TaylorModel::var(1, 0);
        let f = y.mul(&y, 5, &dom1());
        let arg = TaylorModel::new(
            Polynomial::constant(1, 0.5) + Polynomial::var(1, 0).scale(0.25),
            Interval::ZERO,
        );
        let comp = f.compose(&[arg], 5, &dom1());
        for i in 0..=8 {
            let a = -1.0 + 0.25 * i as f64;
            let truth = (0.5 + 0.25 * a) * (0.5 + 0.25 * a);
            assert!(comp.eval(&[a]).contains_value(truth));
        }
    }

    #[test]
    fn prune_absorbs_small_terms_soundly() {
        // 1 + x + 1e-16·x²: pruning moves the tiny term's range into the
        // remainder instead of discarding it.
        let p = Polynomial::from_terms(1, vec![(vec![0], 1.0), (vec![1], 1.0), (vec![2], 1e-16)]);
        let tm = TaylorModel::new(p, Interval::ZERO);
        let pruned = tm.prune(DEFAULT_PRUNE_EPS, &dom1());
        assert_eq!(pruned.poly().num_terms(), 2);
        // The remainder must cover the dropped term's range [0, 1e-16].
        assert!(pruned.remainder().contains_value(1e-16));
        // Enclosure preserved at samples.
        for i in 0..=8 {
            let t = -1.0 + 0.25 * i as f64;
            let truth = 1.0 + t + 1e-16 * t * t;
            assert!(pruned.eval(&[t]).contains_value(truth));
        }
        // eps = 0 is the identity.
        assert_eq!(tm.prune(0.0, &dom1()), tm);
    }

    #[test]
    fn tm_vector_from_box_roundtrip() {
        let b = IntervalBox::from_bounds(&[(122.0, 124.0), (48.0, 52.0)]);
        let v = TmVector::from_box(&b);
        let back = v.range_box(&unit_domain(2));
        assert!(back.contains(&b));
        assert!(back.volume() < b.volume() * 1.001 + 1e-9);
    }

    #[test]
    fn bernstein_range_tighter_or_equal() {
        // x² − x over [-1,1] naive interval gives [-2,2]; Bernstein tighter.
        let x = TaylorModel::var(1, 0);
        let p = x.mul(&x, 5, &dom1()).sub(&x);
        let naive = p.range(&dom1());
        let bern = p.range_bernstein(&dom1());
        assert!(bern.width() <= naive.width() + 1e-6);
        for i in 0..=16 {
            let t = -1.0 + 0.125 * i as f64;
            assert!(bern.contains_value(t * t - t));
        }
    }

    #[test]
    fn extend_vars_keeps_values() {
        let x = TaylorModel::var(1, 0).add_constant(1.0);
        let e = x.extend_vars(3);
        assert_eq!(e.nvars(), 3);
        assert!(e.eval(&[0.5, 9.0, -9.0]).contains_value(1.5));
    }
}
