//! Validated one-step ODE integration (Picard iteration with remainder
//! validation).
//!
//! The flowpipe engine integrates `ẋ = f(x, u)` over one zero-order-hold
//! control period `[0, δ]` given Taylor-model enclosures of the initial
//! state and of the (held) control input. This is the inner loop of the
//! Flow\*/POLAR-style verifiers in `dwv-reach`.
//!
//! The method is the classical Taylor-model Picard scheme:
//!
//! 1. normalize time to `s ∈ [0, 1]` so the flow satisfies
//!    `x(s) = x₀ + δ·∫₀^s f(x(τ), u) dτ`;
//! 2. iterate the *truncated polynomial* Picard operator until the
//!    polynomial part stabilizes;
//! 3. validate a candidate remainder `J` by checking that the full
//!    (interval-carrying) Picard operator maps the candidate enclosure into
//!    itself, inflating geometrically on failure;
//! 4. on success, the flow Taylor model soundly encloses every trajectory.
//!
//! Divergence of step 3 (remainder blow-up after `max_inflations` attempts)
//! is reported as [`FlowpipeError::Diverged`] — this is precisely the
//! behaviour the paper observes as "NAN occurs for the DDPG controller
//! verification with POLAR after 3 steps" (Fig. 8).

use crate::defect::DefectTape;
#[cfg(test)]
use crate::model::compose_parts_ws;
use crate::model::{
    compose_polys_dropping_ws, TaylorModel, TmVector, TmWorkspace, DEFAULT_PRUNE_EPS,
};
use crate::ode::OdeRhs;
use dwv_interval::Interval;
use dwv_interval::IntervalBox;
use dwv_poly::Polynomial;
use std::fmt;

/// Errors from validated integration.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowpipeError {
    /// Remainder validation failed to contract after the configured number
    /// of inflations: the enclosure diverges (over-approximation blow-up).
    Diverged {
        /// The candidate remainder radius at which validation gave up.
        last_radius: f64,
    },
    /// The input models are inconsistent with the vector field dimensions.
    DimensionMismatch {
        /// Expected `(n_state, n_input)`.
        expected: (usize, usize),
        /// Provided `(state_dim, input_dim)`.
        found: (usize, usize),
    },
}

impl fmt::Display for FlowpipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowpipeError::Diverged { last_radius } => write!(
                f,
                "remainder validation diverged (last candidate radius {last_radius:.3e})"
            ),
            FlowpipeError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: field expects (n={}, m={}), got (n={}, m={})",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for FlowpipeError {}

/// The result of one validated flow step.
#[derive(Debug, Clone)]
pub struct StepFlow {
    /// State enclosure at the end of the step (`t = δ`), over the same
    /// variable space as the input models.
    pub end: TmVector,
    /// Box enclosure of the state over the *entire* step `[0, δ]` — used for
    /// safety checking, which must hold for all `t` (Definition 1).
    pub step_box: IntervalBox,
}

/// Validated Taylor-model ODE integrator.
///
/// # Example
///
/// ```
/// use dwv_taylor::{OdeIntegrator, OdeRhs, TmVector, unit_domain};
/// use dwv_interval::IntervalBox;
/// use dwv_poly::Polynomial;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // ẋ = -x (1 state, 0 inputs), x(0) ∈ [0.9, 1.1], one step of 0.1.
/// let rhs = OdeRhs::new(1, 0, vec![Polynomial::var(1, 0).scale(-1.0)]);
/// let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.9, 1.1)]));
/// let integ = OdeIntegrator::default();
/// let u = TmVector::new(vec![]);
/// let step = integ.flow_step(&x0, &u, &rhs, 0.1, &unit_domain(1))?;
/// // e^{-0.1} ≈ 0.9048: endpoints shrink toward 0.
/// let end = step.end.range_box(&unit_domain(1));
/// assert!(end.interval(0).contains_value(0.9048 * 1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OdeIntegrator {
    /// Taylor-model truncation order (max total degree kept).
    pub order: u32,
    /// Number of polynomial Picard iterations (should exceed `order`).
    pub picard_iters: usize,
    /// Initial candidate remainder radius as a fraction of the first
    /// Picard-produced remainder (plus an absolute floor).
    pub initial_radius: f64,
    /// Margin applied to the Picard image when updating the candidate
    /// remainder after a failed containment check.
    pub inflation_factor: f64,
    /// Maximum number of inflation attempts before reporting divergence.
    pub max_inflations: usize,
    /// Use Bernstein-form ranges when truncating (tighter, slower).
    pub bernstein_ranges: bool,
}

impl Default for OdeIntegrator {
    fn default() -> Self {
        Self {
            order: 4,
            picard_iters: 6,
            initial_radius: 1e-6,
            inflation_factor: 1.2,
            max_inflations: 60,
            bernstein_ranges: false,
        }
    }
}

impl OdeIntegrator {
    /// Creates an integrator of the given truncation order with default
    /// validation parameters.
    #[must_use]
    pub fn with_order(order: u32) -> Self {
        Self {
            order,
            picard_iters: order as usize + 2,
            ..Self::default()
        }
    }

    /// Integrates one zero-order-hold step of length `delta`.
    ///
    /// * `x0` — initial-state models over `k` normalized variables,
    /// * `u` — held control-input models over the same variables (may carry
    ///   a remainder from a neural-network abstraction),
    /// * `rhs` — the polynomial vector field,
    /// * `domain` — the domain of the `k` shared variables.
    ///
    /// # Errors
    ///
    /// [`FlowpipeError::Diverged`] when remainder validation fails;
    /// [`FlowpipeError::DimensionMismatch`] on inconsistent dimensions.
    pub fn flow_step(
        &self,
        x0: &TmVector,
        u: &TmVector,
        rhs: &OdeRhs,
        delta: f64,
        domain: &[Interval],
    ) -> Result<StepFlow, FlowpipeError> {
        let mut ws = TmWorkspace::new();
        self.flow_step_ws(x0, u, rhs, delta, domain, &mut ws)
    }

    /// [`OdeIntegrator::flow_step`] with an explicit workspace.
    ///
    /// A reachability loop creates one [`TmWorkspace`] per run and threads it
    /// through every step: the scratch buffers amortize the flowpipe's
    /// polynomial allocations, and the Bernstein range memo is hit across
    /// Picard validation attempts (trial remainders perturb only interval
    /// parts, so the defect polynomials — and their enclosures — repeat).
    ///
    /// # Errors
    ///
    /// [`FlowpipeError::Diverged`] when remainder validation fails;
    /// [`FlowpipeError::DimensionMismatch`] on inconsistent dimensions.
    pub fn flow_step_ws(
        &self,
        x0: &TmVector,
        u: &TmVector,
        rhs: &OdeRhs,
        delta: f64,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Result<StepFlow, FlowpipeError> {
        let n = rhs.n_state();
        let m = rhs.n_input();
        if x0.dim() != n || u.dim() != m {
            return Err(FlowpipeError::DimensionMismatch {
                expected: (n, m),
                found: (x0.dim(), u.dim()),
            });
        }
        let obs = dwv_obs::enabled();
        if obs {
            dwv_obs::counter("picard.steps").inc();
        }
        let k = x0.nvars();
        let ext = k + 1; // appended normalized-time variable
        let t_var = k;
        // The extended domain lives in the workspace buffer; it is taken
        // out for the duration of the step so it can be passed alongside
        // `ws`, and restored (capacity intact) at every exit.
        let mut dom_ext = std::mem::take(&mut ws.dom_ext);
        dom_ext.clear();
        dom_ext.extend_from_slice(domain);
        dom_ext.push(Interval::new(0.0, 1.0));

        let x0e = x0.extend_vars(ext);
        let ue = u.extend_vars(ext);

        // --- Polynomial Picard iteration --------------------------------
        // This phase only produces the *candidate* polynomial: every
        // remainder it could accumulate is discarded before validation,
        // which rebuilds a sound enclosure from the final polynomial alone.
        // So the whole phase runs on bare polynomials through the dropping
        // kernels — identical coefficient streams, no interval accounting
        // in the hot loop.
        let u_polys: Vec<&Polynomial> = ue.components().iter().map(TaylorModel::poly).collect(); // dwv-lint: allow(no-alloc) -- per-step vector of borrows into the extended inputs; a workspace buffer cannot hold them across steps
        ws.flow_xs.truncate(n);
        ws.flow_xs.resize_with(n, || Polynomial::zero(ext));
        ws.flow_tmp.truncate(n);
        ws.flow_tmp.resize_with(n, || Polynomial::zero(ext));
        for (dst, src) in ws.flow_xs.iter_mut().zip(x0e.components()) {
            dst.clone_from(src.poly());
        }
        let mut iters_run = 0u64;
        for _ in 0..self.picard_iters {
            let args: Vec<&Polynomial> = ws.flow_xs.iter().chain(u_polys.iter().copied()).collect(); // dwv-lint: allow(no-alloc) -- per-iteration argument borrows into the current iterate; self-referential workspace storage is not expressible
            for ((dst, p), x0c) in ws
                .flow_tmp
                .iter_mut()
                .zip(rhs.field())
                .zip(x0e.components())
            {
                let mut t = compose_polys_dropping_ws(p, &args, self.order, &mut ws.poly)
                    .antiderivative(t_var);
                t.scale_in_place(delta);
                t.add_assign_ref(x0c.poly(), &mut ws.poly);
                t.truncate_dropping(self.order);
                t.prune_dropping(DEFAULT_PRUNE_EPS);
                *dst = t;
            }
            iters_run += 1;
            // The iteration is a pure function of the iterate: once an
            // iterate reproduces itself bit-for-bit, every later iterate is
            // that same polynomial vector, so stopping here yields exactly
            // the candidate the full `picard_iters` loop would.
            let fixed = ws
                .flow_tmp
                .iter()
                .zip(&ws.flow_xs)
                .all(|(a, b)| a.bits_eq(b));
            std::mem::swap(&mut ws.flow_xs, &mut ws.flow_tmp);
            if fixed {
                break;
            }
        }
        if obs {
            dwv_obs::counter("picard.poly_iters").add(iters_run);
        }
        debug_assert_eq!(ws.flow_xs.len(), n);
        let polys: Vec<TaylorModel> = ws
            .flow_xs
            .drain(..)
            .map(|p| TaylorModel::new(p, Interval::ZERO))
            .collect(); // dwv-lint: allow(no-alloc) -- the models own their polynomials (moved, not copied) for the tape and the returned flow

        // --- Remainder validation ----------------------------------------
        // Every validation attempt applies the full Picard operator to the
        // same candidate polynomial, varying only the trial remainders — so
        // the polynomial work is compiled once into a defect tape and each
        // attempt replays only the (cheap, bit-identical) remainder
        // propagation. Replaying with zero remainders gives the baseline
        // defect.
        let tape = DefectTape::compile(
            self.order,
            self.bernstein_ranges,
            &polys,
            &x0e,
            &ue,
            rhs,
            delta,
            t_var,
            &dom_ext,
            ws,
        );
        ws.zero_rems.clear();
        ws.zero_rems.resize(n, Interval::ZERO);
        let defect = tape.replay(&ws.zero_rems);
        ws.cand.clear();
        for d in &defect {
            let r = d.mag().max(self.initial_radius);
            ws.cand
                .push(Interval::symmetric(r * 1.1 + self.initial_radius));
        }

        for attempt in 0..=self.max_inflations {
            let mapped = tape.replay(&ws.cand);
            let contained = mapped
                .iter()
                .zip(&ws.cand)
                .all(|(got, want)| want.contains(got));
            if contained {
                if obs {
                    dwv_obs::counter("picard.validation_attempts").add(attempt as u64 + 1);
                    dwv_obs::counter("picard.retries").add(attempt as u64);
                }
                let validated: Vec<TaylorModel> = polys
                    .iter()
                    .zip(&mapped)
                    .map(|(p, &j)| p.with_remainder(j))
                    .collect(); // dwv-lint: allow(no-alloc) -- the validated models escape into the returned flow
                let flow = TmVector::new(validated);
                let step_box = if self.bernstein_ranges {
                    flow.range_box_bernstein_cached(&dom_ext, &mut ws.bern)
                } else {
                    flow.range_box(&dom_ext)
                };
                let end = flow.substitute_value(t_var, 1.0);
                let end =
                    TmVector::new(end.components().iter().map(|t| t.shrink_vars(k)).collect()); // dwv-lint: allow(no-alloc) -- the step-end models escape into the returned flow
                ws.dom_ext = dom_ext;
                return Ok(StepFlow { end, step_box });
            }
            if attempt == self.max_inflations {
                break;
            }
            // Track the Picard image with a modest margin rather than blind
            // geometric inflation: for non-linear fields the contraction
            // basin can be narrow (e.g. cubic terms), and overshooting it
            // reports spurious divergence. The image sequence converges to
            // just above the true fixed point whenever one exists.
            ws.cand_next.clear();
            for (got, cur) in mapped.iter().zip(&ws.cand) {
                let merged = got.hull(cur);
                ws.cand_next.push(Interval::symmetric(
                    merged.mag() * self.inflation_factor + self.initial_radius,
                ));
            }
            std::mem::swap(&mut ws.cand, &mut ws.cand_next);
            // Detect hopeless blow-up early.
            if ws.cand.iter().any(|c| !c.is_finite() || c.mag() > 1e9) {
                let last_radius = ws.cand.iter().map(Interval::mag).fold(0.0, f64::max);
                note_divergence(obs, attempt as u64 + 1, last_radius);
                ws.dom_ext = dom_ext;
                return Err(FlowpipeError::Diverged { last_radius });
            }
        }
        let last_radius = ws.cand.iter().map(Interval::mag).fold(0.0, f64::max);
        note_divergence(obs, self.max_inflations as u64 + 1, last_radius);
        ws.dom_ext = dom_ext;
        Err(FlowpipeError::Diverged { last_radius })
    }

    /// Evaluates the vector field on Taylor-model state/input enclosures.
    ///
    /// Reference implementation: production validation runs through the
    /// compiled [`DefectTape`]; this (with [`OdeIntegrator::picard_defect`])
    /// is retained as the ground truth for the tape-equivalence test.
    #[cfg(test)]
    fn eval_field(
        &self,
        rhs: &OdeRhs,
        xs: &[TaylorModel],
        u: &TmVector,
        dom: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Vec<TaylorModel> {
        let args: Vec<TaylorModel> = xs
            .iter()
            .cloned()
            .chain(u.components().iter().cloned())
            .collect();
        rhs.field()
            .iter()
            .map(|p| compose_parts_ws(p, Interval::ZERO, &args, self.order, dom, ws))
            .collect()
    }

    /// The remainder of `x0 + δ∫f(trial) − poly(trial)`: what the Picard
    /// operator maps the trial remainder to (including truncation defects in
    /// the polynomial parts).
    #[cfg(test)]
    #[allow(clippy::too_many_arguments)]
    fn picard_defect(
        &self,
        trial: &[TaylorModel],
        x0e: &TmVector,
        ue: &TmVector,
        rhs: &OdeRhs,
        delta: f64,
        t_var: usize,
        dom_ext: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Vec<Interval> {
        let f = self.eval_field(rhs, trial, ue, dom_ext, ws);
        f.into_iter()
            .enumerate()
            .map(|(i, fi)| {
                let mut mapped = fi.antiderivative(t_var, dom_ext);
                mapped.scale_in_place(delta);
                mapped.add_assign_tm(x0e.component(i), ws);
                // Polynomial difference from the candidate's polynomial part
                // is a defect that must be absorbed by the remainder. Trial
                // remainders never reach the polynomial parts, so `diff`
                // repeats across validation attempts and its Bernstein
                // enclosure is a cache hit from the second attempt on.
                let (mut diff, mapped_rem) = mapped.into_parts();
                diff.add_scaled_assign(trial[i].poly(), -1.0, &mut ws.poly);
                let diff_range = if self.bernstein_ranges && !diff.is_zero() {
                    ws.bern.range_enclosure(&diff, dom_ext)
                } else {
                    diff.eval_interval(dom_ext)
                };
                mapped_rem + diff_range
            })
            .collect()
    }
}

/// Records a remainder-validation divergence in the metrics/trace stream
/// (the paper's "NAN after 3 steps" failure mode made observable).
fn note_divergence(obs: bool, attempts: u64, last_radius: f64) {
    if obs {
        dwv_obs::counter("picard.diverged").inc();
        dwv_obs::counter("picard.validation_attempts").add(attempts);
        dwv_obs::counter("picard.retries").add(attempts.saturating_sub(1));
        dwv_obs::event("picard.diverged", &[("last_radius", last_radius)]);
    }
    // Retry exhaustion is a flight-recorder anomaly site: the ring around
    // this moment is what a post-mortem needs, tracing on or off.
    dwv_obs::flight_anomaly("picard.diverged", last_radius);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::unit_domain;
    use dwv_poly::Polynomial;

    /// ẋ = -x: exact flow x(δ) = x0 e^{-δ}.
    fn decay_rhs() -> OdeRhs {
        OdeRhs::new(1, 0, vec![Polynomial::var(1, 0).scale(-1.0)])
    }

    #[test]
    fn decay_step_encloses_exact_flow() {
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.9, 1.1)]));
        let integ = OdeIntegrator::default();
        let u = TmVector::new(vec![]);
        let step = integ
            .flow_step(&x0, &u, &decay_rhs(), 0.1, &unit_domain(1))
            .expect("decay system integrates");
        let end = step.end.range_box(&unit_domain(1));
        for x in [0.9, 1.0, 1.1] {
            let truth = x * (-0.1f64).exp();
            assert!(
                end.interval(0).contains_value(truth),
                "end enclosure {} misses {truth}",
                end.interval(0)
            );
        }
        // Enclosure should be tight: width close to 0.2 * e^{-0.1}.
        assert!(end.interval(0).width() < 0.2);
        // Step box covers both the start and end states.
        assert!(step.step_box.interval(0).contains_value(1.1));
        assert!(step
            .step_box
            .interval(0)
            .contains_value(0.9 * (-0.1f64).exp()));
    }

    #[test]
    fn controlled_integrator_matches_analytic() {
        // ẋ = u with u = 2 (constant input): x(δ) = x0 + 2δ.
        let rhs = OdeRhs::new(1, 1, vec![Polynomial::var(2, 1)]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.0, 0.1)]));
        let u = TmVector::new(vec![TaylorModel::constant(1, 2.0)]);
        let integ = OdeIntegrator::default();
        let step = integ
            .flow_step(&x0, &u, &rhs, 0.5, &unit_domain(1))
            .expect("trivial system integrates");
        let end = step.end.range_box(&unit_domain(1));
        assert!(end.interval(0).contains_value(1.0));
        assert!(end.interval(0).contains_value(1.1));
        assert!(end.interval(0).width() < 0.2);
    }

    #[test]
    fn input_remainder_propagates() {
        // ẋ = u with u = 1 ± 0.1: end state must cover x0 + δ·[0.9, 1.1].
        let rhs = OdeRhs::new(1, 1, vec![Polynomial::var(2, 1)]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.0, 0.0)]));
        let u = TmVector::new(vec![
            TaylorModel::constant(1, 1.0).add_interval(Interval::symmetric(0.1))
        ]);
        let integ = OdeIntegrator::default();
        let step = integ
            .flow_step(&x0, &u, &rhs, 1.0, &unit_domain(1))
            .expect("integrates");
        let end = step.end.range_box(&unit_domain(1));
        assert!(end.interval(0).contains(&Interval::new(0.9, 1.1)));
    }

    #[test]
    fn vdp_like_nonlinear_step() {
        // ẋ1 = x2, ẋ2 = (1 - x1²)x2 - x1 (uncontrolled VdP), small box.
        let x1 = Polynomial::var(2, 0);
        let x2 = Polynomial::var(2, 1);
        let rhs = OdeRhs::new(
            2,
            0,
            vec![x2.clone(), x2.clone() - x1.clone() * x1.clone() * x2 - x1],
        );
        let b = IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]);
        let x0 = TmVector::from_box(&b);
        let integ = OdeIntegrator::with_order(3);
        let step = integ
            .flow_step(&x0, &TmVector::new(vec![]), &rhs, 0.1, &unit_domain(2))
            .expect("VdP step integrates");
        // RK4 reference from the box center.
        let mut x = [-0.5, 0.5];
        let f = |x: &[f64; 2]| [x[1], (1.0 - x[0] * x[0]) * x[1] - x[0]];
        let h = 0.001;
        for _ in 0..100 {
            let k1 = f(&x);
            let k2 = f(&[x[0] + 0.5 * h * k1[0], x[1] + 0.5 * h * k1[1]]);
            let k3 = f(&[x[0] + 0.5 * h * k2[0], x[1] + 0.5 * h * k2[1]]);
            let k4 = f(&[x[0] + h * k3[0], x[1] + h * k3[1]]);
            x[0] += h / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]);
            x[1] += h / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]);
        }
        let end = step.end.range_box(&unit_domain(2));
        assert!(
            end.contains_point(&x),
            "TM end {end} misses RK4 point {x:?}"
        );
        // Tightness sanity: each enclosure within 5x the initial width.
        assert!(end.interval(0).width() < 0.1);
        assert!(end.interval(1).width() < 0.1);
    }

    #[test]
    fn picard_fixed_point_exit_is_bit_identical() {
        // The early exit fires once an iterate reproduces itself bit-for-bit,
        // so integrators differing only in their iteration budget (both large
        // enough to reach the fixed point) must produce bitwise-equal steps.
        let x1 = Polynomial::var(2, 0);
        let x2 = Polynomial::var(2, 1);
        let rhs = OdeRhs::new(
            2,
            0,
            vec![x2.clone(), x2.clone() - x1.clone() * x1.clone() * x2 - x1],
        );
        let b = IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]);
        let x0 = TmVector::from_box(&b);
        let base = OdeIntegrator::with_order(3);
        let lavish = OdeIntegrator {
            picard_iters: base.picard_iters + 10,
            ..OdeIntegrator::with_order(3)
        };
        let u = TmVector::new(vec![]);
        let dom = unit_domain(2);
        let a = base.flow_step(&x0, &u, &rhs, 0.1, &dom).expect("steps");
        let b = lavish.flow_step(&x0, &u, &rhs, 0.1, &dom).expect("steps");
        for (ta, tb) in a.end.components().iter().zip(b.end.components()) {
            assert!(ta.poly().bits_eq(tb.poly()), "end polynomials diverge");
            assert_eq!(ta.remainder().lo().to_bits(), tb.remainder().lo().to_bits());
            assert_eq!(ta.remainder().hi().to_bits(), tb.remainder().hi().to_bits());
        }
    }

    #[test]
    fn stiff_blowup_reports_divergence() {
        // ẋ = x² from a huge initial box and a huge step: certain blow-up.
        let x = Polynomial::var(1, 0);
        let rhs = OdeRhs::new(1, 0, vec![x.clone() * x]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(50.0, 150.0)]));
        let integ = OdeIntegrator {
            max_inflations: 8,
            ..OdeIntegrator::default()
        };
        let res = integ.flow_step(&x0, &TmVector::new(vec![]), &rhs, 1.0, &unit_domain(1));
        assert!(matches!(res, Err(FlowpipeError::Diverged { .. })));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let rhs = OdeRhs::new(1, 1, vec![Polynomial::var(2, 1)]);
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(0.0, 1.0)]));
        let res = OdeIntegrator::default().flow_step(
            &x0,
            &TmVector::new(vec![]),
            &rhs,
            0.1,
            &unit_domain(1),
        );
        assert!(matches!(res, Err(FlowpipeError::DimensionMismatch { .. })));
    }

    #[test]
    fn defect_tape_matches_reference_bitwise() {
        use crate::defect::DefectTape;
        // Controlled VdP with an input remainder, over extended (time) vars.
        let x1 = Polynomial::var(3, 0);
        let x2 = Polynomial::var(3, 1);
        let uv = Polynomial::var(3, 2);
        let rhs = OdeRhs::new(
            2,
            1,
            vec![
                x2.clone(),
                x2.clone() - x1.clone() * x1.clone() * x2 - x1 + uv,
            ],
        );
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]));
        let u = TmVector::new(vec![
            TaylorModel::constant(2, 0.1).add_interval(Interval::symmetric(1e-3))
        ]);
        let mut dom_ext = unit_domain(2);
        dom_ext.push(Interval::new(0.0, 1.0));
        let x0e = x0.extend_vars(3);
        let ue = u.extend_vars(3);
        // Candidate polynomials rich enough to hit overflow and prune tails:
        // a couple of Picard-shaped high-degree terms plus a sub-epsilon one.
        let polys: Vec<TaylorModel> = x0e
            .components()
            .iter()
            .enumerate()
            .map(|(i, base)| {
                let mut p = base.poly().clone();
                p += Polynomial::monomial(3, vec![2, 0, 1], 0.03 + 0.01 * i as f64);
                p += Polynomial::monomial(3, vec![0, 1, 2], -0.011);
                p += Polynomial::monomial(3, vec![1, 1, 1], 0.004);
                p += Polynomial::monomial(3, vec![1, 0, 0], 1e-18);
                TaylorModel::new(p, Interval::ZERO)
            })
            .collect();
        let candidates = [
            vec![Interval::ZERO, Interval::ZERO],
            vec![Interval::symmetric(1e-6), Interval::symmetric(2e-6)],
            vec![Interval::new(-1e-4, 3e-5), Interval::new(0.0, 2e-6)],
        ];
        for bernstein in [false, true] {
            let integ = OdeIntegrator {
                bernstein_ranges: bernstein,
                ..OdeIntegrator::with_order(3)
            };
            let mut ws = TmWorkspace::new();
            let tape = DefectTape::compile(
                integ.order,
                bernstein,
                &polys,
                &x0e,
                &ue,
                &rhs,
                0.1,
                2,
                &dom_ext,
                &mut ws,
            );
            for cand in &candidates {
                let trial: Vec<TaylorModel> = polys
                    .iter()
                    .zip(cand)
                    .map(|(p, &j)| p.with_remainder(j))
                    .collect();
                let reference =
                    integ.picard_defect(&trial, &x0e, &ue, &rhs, 0.1, 2, &dom_ext, &mut ws);
                let got = tape.replay(cand);
                assert_eq!(reference.len(), got.len());
                for (r, g) in reference.iter().zip(&got) {
                    assert_eq!(
                        (r.lo().to_bits(), r.hi().to_bits()),
                        (g.lo().to_bits(), g.hi().to_bits()),
                        "tape replay diverges from reference (bernstein={bernstein}): {r} vs {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_step_decay_stays_sound() {
        // Chain 10 steps of ẋ = -x; enclosure must always contain e^{-t}.
        let rhs = decay_rhs();
        let integ = OdeIntegrator::default();
        let mut x = TmVector::from_box(&IntervalBox::from_bounds(&[(1.0, 1.0)]));
        let mut dom = unit_domain(1);
        for step_idx in 1..=10 {
            // Re-initialize from the box enclosure each step (box mode).
            let b = x.range_box(&dom);
            x = TmVector::from_box(&b);
            dom = unit_domain(1);
            let step = integ
                .flow_step(&x, &TmVector::new(vec![]), &rhs, 0.1, &dom)
                .expect("decay integrates");
            x = step.end;
            let truth = (-(0.1 * step_idx as f64)).exp();
            let r = x.range_box(&dom);
            assert!(
                r.interval(0).contains_value(truth),
                "step {step_idx}: {} misses {truth}",
                r.interval(0)
            );
        }
    }
}
