//! Compile-once / replay-many Picard defect evaluation.
//!
//! Remainder validation applies the full (interval-carrying) Picard operator
//! to the *same* candidate polynomial several times, varying only the trial
//! remainder intervals. Every polynomial quantity involved — the truncated
//! products, their overflow and pruning tails, the partial-product ranges
//! that multiply the remainders — is a pure function of the candidate
//! polynomials and therefore repeats bit-for-bit across attempts. The
//! [`DefectTape`] factors the evaluation accordingly:
//!
//! * [`DefectTape::compile`] runs the field composition **once** through the
//!   accounting kernels, freezing each fixed interval constant and recording
//!   the dataflow of the remainder propagation as a short op tape;
//! * [`DefectTape::replay`] maps a vector of trial remainders to the defect
//!   intervals by interpreting the tape — a few dozen interval operations,
//!   no polynomial arithmetic at all.
//!
//! Replay is **bit-identical** to re-running the Taylor-model evaluation:
//! each op performs exactly the interval operations, in the same order and
//! with the same exact-zero skips, that [`TaylorModel::mul_truncated`],
//! [`TaylorModel::scale`] + prune, and the composition accumulator perform —
//! only with the polynomial-derived operands precomputed. Soundness is
//! therefore inherited from the reference evaluation rather than argued
//! anew; the `flowpipe` tests check the equivalence against the retained
//! reference implementation bit for bit.

use crate::model::{TaylorModel, TmVector, TmWorkspace, DEFAULT_PRUNE_EPS};
use crate::ode::OdeRhs;
use dwv_interval::Interval;
use dwv_poly::Polynomial;

/// One remainder-propagation step. Slot indices refer to the replay buffer;
/// slots `0..n_state` hold the trial state remainders, the following
/// `n_input` slots the (fixed) held-input remainders, and every op writes a
/// freshly allocated slot except `Add`/`AddConst`, which accumulate.
#[derive(Debug, Clone)]
enum TapeOp {
    /// `slots[dst] = slots[src] · point(c) (+ prune)` — the constant × power
    /// fast path of the composition (`scale` followed by `prune_in_place`).
    Scale {
        dst: u32,
        src: u32,
        c: f64,
        prune: Option<Interval>,
    },
    /// The remainder half of a truncated product `l · r`: starts from the
    /// frozen overflow range, adds the cross terms for non-zero inputs (the
    /// same exact-zero skips as [`TaylorModel::mul_truncated`]), then the
    /// frozen pruning tail.
    Mul {
        dst: u32,
        l: u32,
        r: u32,
        range_l: Interval,
        range_r: Interval,
        overflow: Interval,
        prune: Option<Interval>,
    },
    /// `slots[dst] += slots[src]` — a term flowing into the accumulator.
    Add { dst: u32, src: u32 },
    /// `slots[dst] += v` — a constant-only term (v is the zero interval; the
    /// op is kept so replay performs the accumulator's outward-rounded add
    /// exactly as the reference does).
    AddConst { dst: u32, v: Interval },
}

/// The frozen remainder-propagation structure of one flow step's Picard
/// defect map (see the module docs).
#[derive(Debug, Clone)]
pub(crate) struct DefectTape {
    ops: Vec<TapeOp>,
    n_slots: usize,
    n_state: usize,
    /// Held-input remainders (fixed across validation attempts).
    u_rems: Vec<Interval>,
    /// Per state component: the slot holding the composed field remainder.
    field_slots: Vec<u32>,
    /// Per state component: the initial-state remainder.
    x0_rems: Vec<Interval>,
    /// Per state component: the range of the fixed polynomial defect
    /// `poly(x0 + δ∫f(candidate)) − candidate`.
    diff_ranges: Vec<Interval>,
    /// `[0, sup t]` — the antiderivative's remainder factor.
    t_scale: Interval,
    /// `point(δ)` — the step-length remainder factor.
    delta_pt: Interval,
}

impl DefectTape {
    /// Runs the Picard operator's composition once over the candidate
    /// polynomials (zero remainders), recording the remainder dataflow and
    /// every polynomial-derived interval constant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compile(
        order: u32,
        bernstein_ranges: bool,
        polys: &[TaylorModel],
        x0e: &TmVector,
        ue: &TmVector,
        rhs: &OdeRhs,
        delta: f64,
        t_var: usize,
        dom_ext: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Self {
        let n = rhs.n_state();
        let m = rhs.n_input();
        let nargs = n + m;
        assert!(
            dom_ext[t_var].lo() >= 0.0, // dwv-lint: allow(panic-freedom#index) -- t_var constructed by the caller as an index into dom_ext
            "antiderivative requires a zero-based time domain"
        );
        let arg_polys: Vec<&Polynomial> = polys
            .iter()
            .map(TaylorModel::poly)
            .chain(ue.components().iter().map(TaylorModel::poly))
            .collect();
        let out_vars = arg_polys.first().map_or(dom_ext.len(), |p| p.nvars());

        let mut ops: Vec<TapeOp> = Vec::new();

        // Shared power tables pows[i][e-1] = (poly of args[i]^e, slot). The
        // reference builds a table per field component; the entries are pure
        // functions of the argument polynomials, so sharing one table yields
        // the same values for every use site.
        let mut max_exp = vec![0u32; nargs];
        for p in rhs.field() {
            for (exps, _) in p.iter() {
                for (i, &e) in exps.iter().enumerate() {
                    max_exp[i] = max_exp[i].max(e); // dwv-lint: allow(panic-freedom#index) -- i < nvars == max_exp.len by construction
                }
            }
        }
        let mut total_slots = nargs;
        let mut pows: Vec<Vec<(Polynomial, u32)>> = Vec::with_capacity(nargs);
        for (i, &me) in max_exp.iter().enumerate() {
            let mut table: Vec<(Polynomial, u32)> = Vec::with_capacity(me as usize);
            if me >= 1 {
                // args[i]^1 is the argument itself; its remainder is input i.
                table.push((arg_polys[i].clone(), i as u32)); // dwv-lint: allow(panic-freedom#index) -- i < nargs == arg_polys.len
                for _ in 1..me {
                    // dwv-lint: allow(panic-freedom) -- an entry was pushed just above; the table never shrinks
                    let (lp, ls) = table.last().cloned().expect("table is non-empty");
                    let node = mul_node(
                        &lp,
                        ls,
                        arg_polys[i], // dwv-lint: allow(panic-freedom#index) -- i < nargs == arg_polys.len
                        i as u32,
                        order,
                        dom_ext,
                        &mut ops,
                        &mut total_slots,
                        ws,
                    );
                    table.push(node);
                }
            }
            pows.push(table);
        }

        // Per-component composition, mirroring `compose_parts_ws` term by
        // term, plus the fixed polynomial defect.
        let mut field_slots = Vec::with_capacity(n);
        let mut diff_ranges = Vec::with_capacity(n);
        for (ci, p) in rhs.field().iter().enumerate() {
            let acc_slot = {
                let s = total_slots as u32;
                total_slots += 1;
                s
            };
            let mut acc_poly = Polynomial::zero(out_vars);
            for (exps, c) in p.iter() {
                let mut chain: Option<(Polynomial, u32)> = None;
                for (i, &e) in exps.iter().enumerate() {
                    if e > 0 {
                        let (pw_poly, pw_slot) = &pows[i][e as usize - 1]; // dwv-lint: allow(panic-freedom#index) -- max_exp[i] >= e by construction
                        chain = Some(match chain {
                            None => {
                                // Constant × power fast path: scale + prune.
                                let mut t = pw_poly.scale(c);
                                let prune = t.prune_in_place(DEFAULT_PRUNE_EPS, dom_ext);
                                let dst = total_slots as u32;
                                total_slots += 1;
                                ops.push(TapeOp::Scale {
                                    dst,
                                    src: *pw_slot,
                                    c,
                                    prune,
                                });
                                (t, dst)
                            }
                            Some((tp, ts)) => mul_node(
                                &tp,
                                ts,
                                pw_poly,
                                *pw_slot,
                                order,
                                dom_ext,
                                &mut ops,
                                &mut total_slots,
                                ws,
                            ),
                        });
                    }
                }
                match chain {
                    Some((t_poly, t_slot)) => {
                        acc_poly.add_assign_ref(&t_poly, &mut ws.poly);
                        ops.push(TapeOp::Add {
                            dst: acc_slot,
                            src: t_slot,
                        });
                    }
                    None => {
                        acc_poly.add_assign_ref(&Polynomial::constant(out_vars, c), &mut ws.poly);
                        ops.push(TapeOp::AddConst {
                            dst: acc_slot,
                            v: Interval::ZERO,
                        });
                    }
                }
            }
            field_slots.push(acc_slot);

            // Fixed polynomial defect: poly(x0 + δ∫f(candidate)) − candidate.
            let mut mapped = acc_poly.antiderivative(t_var);
            mapped.scale_in_place(delta);
            mapped.add_assign_ref(x0e.component(ci).poly(), &mut ws.poly);
            mapped.add_scaled_assign(polys[ci].poly(), -1.0, &mut ws.poly); // dwv-lint: allow(panic-freedom#index) -- ci enumerates the field components, one per candidate
            let diff_range = if bernstein_ranges && !mapped.is_zero() {
                ws.bern.range_enclosure(&mapped, dom_ext)
            } else {
                mapped.eval_interval(dom_ext)
            };
            diff_ranges.push(diff_range);
        }

        DefectTape {
            ops,
            n_slots: total_slots,
            n_state: n,
            u_rems: ue.components().iter().map(TaylorModel::remainder).collect(),
            field_slots,
            x0_rems: x0e
                .components()
                .iter()
                .map(TaylorModel::remainder)
                .collect(),
            diff_ranges,
            t_scale: Interval::new(0.0, dom_ext[t_var].hi()), // dwv-lint: allow(panic-freedom#index) -- t_var checked against dom_ext above
            delta_pt: Interval::point(delta),
        }
    }

    /// Evaluates the defect map on trial state remainders: what the Picard
    /// operator maps `candidate` to, bit-identical to re-running the
    /// Taylor-model reference evaluation with these remainders.
    pub(crate) fn replay(&self, candidate: &[Interval]) -> Vec<Interval> {
        assert_eq!(
            candidate.len(),
            self.n_state,
            "candidate dimension mismatch"
        );
        let mut slots = vec![Interval::ZERO; self.n_slots];
        slots[..self.n_state].copy_from_slice(candidate); // dwv-lint: allow(panic-freedom#index) -- n_state ≤ n_slots by construction
        slots[self.n_state..self.n_state + self.u_rems.len()].copy_from_slice(&self.u_rems); // dwv-lint: allow(panic-freedom#index) -- input slots allocated at compile time
        for op in &self.ops {
            match *op {
                TapeOp::Scale { dst, src, c, prune } => {
                    let mut rem = slots[src as usize] * Interval::point(c); // dwv-lint: allow(float-hygiene, panic-freedom#index) -- Interval-typed operator on tape-invariant slot indices; directed rounding lives in the interval kernel
                    if let Some(p) = prune {
                        rem += p;
                    }
                    slots[dst as usize] = rem; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                }
                TapeOp::Mul {
                    dst,
                    l,
                    r,
                    range_l,
                    range_r,
                    overflow,
                    prune,
                } => {
                    let il = slots[l as usize]; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                    let ir = slots[r as usize]; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                    let mut rem = overflow;
                    // Identical exact-zero skips as `TaylorModel::mul_truncated`.
                    if ir != Interval::ZERO {
                        rem += range_l * ir;
                    }
                    if il != Interval::ZERO {
                        rem += range_r * il;
                        if ir != Interval::ZERO {
                            rem += il * ir;
                        }
                    }
                    if let Some(p) = prune {
                        rem += p;
                    }
                    slots[dst as usize] = rem; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                }
                TapeOp::Add { dst, src } => {
                    let s = slots[src as usize]; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                    slots[dst as usize] += s; // dwv-lint: allow(float-hygiene, panic-freedom#index) -- Interval-typed operator on tape-invariant slot indices; directed rounding lives in the interval kernel
                }
                TapeOp::AddConst { dst, v } => {
                    slots[dst as usize] += v; // dwv-lint: allow(float-hygiene, panic-freedom#index) -- Interval-typed operator on tape-invariant slot indices; directed rounding lives in the interval kernel
                }
            }
        }
        self.field_slots
            .iter()
            .zip(self.x0_rems.iter().zip(&self.diff_ranges))
            .map(|(&s, (&x0r, &dr))| {
                // ∫: ×[0, sup t]; δ-scale: ×point(δ); + x0 remainder; + fixed
                // polynomial defect — the exact op order of the reference.
                let fi = slots[s as usize]; // dwv-lint: allow(panic-freedom#index) -- slot indices are tape invariants
                fi * self.t_scale * self.delta_pt + x0r + dr // dwv-lint: allow(float-hygiene) -- Interval-typed operator; directed rounding lives in the interval kernel
            })
            .collect()
    }
}

/// Emits the tape op for a truncated product `l · r` and returns the product
/// polynomial (pruned, as the reference leaves it) with its slot.
#[allow(clippy::too_many_arguments)]
fn mul_node(
    lp: &Polynomial,
    ls: u32,
    rp: &Polynomial,
    rs: u32,
    order: u32,
    dom: &[Interval],
    ops: &mut Vec<TapeOp>,
    n_slots: &mut usize,
    ws: &mut TmWorkspace,
) -> (Polynomial, u32) {
    let mut prod = Polynomial::zero(lp.nvars());
    let overflow = lp.mul_truncated_into(rp, order, dom, &mut prod, &mut ws.poly);
    let prune = prod.prune_in_place(DEFAULT_PRUNE_EPS, dom);
    let range_l = lp.eval_interval_ws(dom, &mut ws.poly);
    let range_r = rp.eval_interval_ws(dom, &mut ws.poly);
    let dst = *n_slots as u32;
    *n_slots += 1;
    ops.push(TapeOp::Mul {
        dst,
        l: ls,
        r: rs,
        range_l,
        range_r,
        overflow,
        prune,
    });
    (prod, dst)
}
