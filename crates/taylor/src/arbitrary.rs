//! Seed-driven Taylor-model generators for falsification harnesses.
//!
//! Entropy comes from a caller-supplied `next: &mut impl FnMut() -> u64`
//! word source, keeping generation a pure function of the seed stream.

use crate::TaylorModel;
use dwv_interval::arbitrary::f64_in;
use dwv_interval::Interval;
use dwv_poly::arbitrary as poly_arb;

/// A random Taylor model: a sparse polynomial part plus a small symmetric
/// remainder of radius at most `rem_mag`.
///
/// The represented function set is `{ f : f(x) − p(x) ∈ I }`, so any checker
/// sampling a member function may pick `p` itself (the remainder only widens
/// the enclosure).
pub fn taylor_model(
    next: &mut impl FnMut() -> u64,
    nvars: usize,
    max_degree: u32,
    max_terms: usize,
    coeff_mag: f64,
    rem_mag: f64,
) -> TaylorModel {
    let p = poly_arb::polynomial(next, nvars, max_degree, max_terms, coeff_mag);
    let r = f64_in(next(), 0.0, rem_mag).abs();
    TaylorModel::new(p, Interval::from_unordered(-r, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_domain;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_and_enclosing() {
        let mut a = stream(9);
        let mut b = stream(9);
        let t1 = taylor_model(&mut a, 2, 4, 6, 5.0, 0.1);
        let t2 = taylor_model(&mut b, 2, 4, 6, 5.0, 0.1);
        assert_eq!(t1.poly(), t2.poly());
        assert_eq!(t1.remainder(), t2.remainder());
        // The polynomial part is a member function of the model.
        let dom = unit_domain(2);
        let r = t1.range(&dom);
        let v = t1.poly().eval(&[0.25, -0.5]);
        assert!(r.inflate(1e-9 * (1.0 + v.abs())).contains_value(v));
    }
}
