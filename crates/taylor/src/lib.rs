//! Taylor models and validated ODE flowpipes.
//!
//! A *Taylor model* (TM) is a pair `(p, I)` of a polynomial `p` over a
//! normalized domain and a remainder interval `I`, representing the function
//! set `{ f : f(x) − p(x) ∈ I for all x in the domain }`. TM arithmetic is
//! the core of the Flow\* verifier the paper uses for the ACC system and of
//! the POLAR abstraction used for neural-network controllers.
//!
//! This crate provides:
//!
//! * [`TaylorModel`] — TM arithmetic (add, mul with truncation, composition
//!   with univariate Taylor expansions, antiderivative), all conservative:
//!   every truncated term's range is pushed into the remainder;
//! * [`TmVector`] — vectors of TMs sharing a domain (the state enclosure);
//! * [`flowpipe`] — validated integration of `ẋ = f(x, u)` over one
//!   zero-order-hold control period by Picard iteration with remainder
//!   validation and adaptive inflation, the building block of the
//!   reachability verifiers in `dwv-reach`.
//!
//! # Example
//!
//! ```
//! use dwv_taylor::TaylorModel;
//! use dwv_interval::Interval;
//!
//! // x over the normalized domain [-1, 1] (variable 0 of 1)
//! let dom = dwv_taylor::unit_domain(1);
//! let x = TaylorModel::var(1, 0);
//! let y = x.mul(&x, 4, &dom).add_constant(1.0); // x^2 + 1
//! let range = y.range(&dom);
//! assert!(range.contains(&Interval::new(1.0, 2.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
mod defect;
pub mod flowpipe;
mod model;
mod ode;

pub use flowpipe::{FlowpipeError, OdeIntegrator, StepFlow};
pub use model::{
    compose_parts_ws, unit_domain, TaylorModel, TmVector, TmWorkspace, DEFAULT_PRUNE_EPS,
};
pub use ode::OdeRhs;
