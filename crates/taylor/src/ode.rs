//! Polynomial ODE right-hand sides.

use dwv_poly::Polynomial;

/// A polynomial vector field `ẋ = f(x, u)`.
///
/// Every benchmark system in the paper is polynomial (ACC and the 3-D system
/// directly; the Van der Pol oscillator after expanding `γ(1−x₁²)x₂`), so
/// the flowpipe engine works on exact polynomial right-hand sides: component
/// `i` of the field is a [`Polynomial`] in the `n_state + n_input` variables
/// `(x₁, …, x_n, u₁, …, u_m)`.
///
/// # Example
///
/// ```
/// use dwv_poly::Polynomial;
/// use dwv_taylor::OdeRhs;
///
/// // Van der Pol with control: ẋ₁ = x₂, ẋ₂ = (1 − x₁²)x₂ − x₁ + u
/// let x1 = Polynomial::var(3, 0);
/// let x2 = Polynomial::var(3, 1);
/// let u = Polynomial::var(3, 2);
/// let f = OdeRhs::new(2, 1, vec![
///     x2.clone(),
///     x2.clone() - x1.clone() * x1.clone() * x2 - x1 + u,
/// ]);
/// assert_eq!(f.eval(&[0.5, -1.0, 0.2]), vec![-1.0, -1.0 + 0.25 - 0.5 + 0.2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OdeRhs {
    n_state: usize,
    n_input: usize,
    field: Vec<Polynomial>,
}

impl OdeRhs {
    /// Creates a vector field.
    ///
    /// # Panics
    ///
    /// Panics if `field.len() != n_state` or any component polynomial does
    /// not have `n_state + n_input` variables.
    #[must_use]
    pub fn new(n_state: usize, n_input: usize, field: Vec<Polynomial>) -> Self {
        assert_eq!(field.len(), n_state, "field component count mismatch");
        assert!(
            field.iter().all(|p| p.nvars() == n_state + n_input),
            "field polynomials must be in n_state + n_input variables"
        );
        Self {
            n_state,
            n_input,
            field,
        }
    }

    /// The state dimension `n`.
    #[must_use]
    pub fn n_state(&self) -> usize {
        self.n_state
    }

    /// The input dimension `m`.
    #[must_use]
    pub fn n_input(&self) -> usize {
        self.n_input
    }

    /// The field components.
    #[must_use]
    pub fn field(&self) -> &[Polynomial] {
        &self.field
    }

    /// Evaluates the field at `(x, u)` (concatenated in that order).
    ///
    /// # Panics
    ///
    /// Panics if `xu.len() != n_state + n_input`.
    #[must_use]
    pub fn eval(&self, xu: &[f64]) -> Vec<f64> {
        assert_eq!(xu.len(), self.n_state + self.n_input, "xu length mismatch");
        self.field.iter().map(|p| p.eval(xu)).collect()
    }

    /// The maximal total degree across components.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.field.iter().map(Polynomial::degree).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let p = Polynomial::var(3, 0);
        let f = OdeRhs::new(2, 1, vec![p.clone(), p]);
        assert_eq!(f.n_state(), 2);
        assert_eq!(f.n_input(), 1);
        assert_eq!(f.degree(), 1);
    }

    #[test]
    #[should_panic(expected = "component count")]
    fn wrong_component_count_panics() {
        let p = Polynomial::var(3, 0);
        let _ = OdeRhs::new(2, 1, vec![p]);
    }

    #[test]
    fn eval_linear_system() {
        // ACC: ds = vf - v, dv = k v + u with vf=40, k=-0.2
        let v = Polynomial::var(3, 1);
        let u = Polynomial::var(3, 2);
        let f = OdeRhs::new(
            2,
            1,
            vec![Polynomial::constant(3, 40.0) - v.clone(), v.scale(-0.2) + u],
        );
        let d = f.eval(&[123.0, 50.0, 1.5]);
        assert!((d[0] - -10.0).abs() < 1e-12);
        assert!((d[1] - (-10.0 + 1.5)).abs() < 1e-12);
    }
}
