//! The Wasserstein distance metric (paper §3.2, Eq. 4).
//!
//! The last step of the reachable set, the goal set and the unsafe set are
//! viewed as uniform distributions; the metric evaluates
//! `W(r_θ, g)` and `W(r_θ, u)` and the constraint flags
//! `X_r ∩ X_g ≠ ∅`, `X_r ∩ X_u = ∅`. The learning objective is
//! `min W(r_θ, g) − W(r_θ, u)`.
//!
//! Distributions are discretized into equal-weight point clouds (grid points
//! of the box, or rejection samples for half-space regions clipped to the
//! universe) and the distance computed by exact assignment
//! ([`crate::ot::hungarian`]).

use crate::ot;
use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_reach::Flowpipe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Wasserstein distances and constraint flags for one flowpipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WassersteinDistances {
    /// `W(r_θ, g)` — transport distance from the final reach set to the
    /// goal distribution (to be minimized).
    pub w_goal: f64,
    /// `W(r_θ, u)` — transport distance to the unsafe distribution (to be
    /// maximized).
    pub w_unsafe: f64,
    /// Whether the final instantaneous reach set intersects the goal set.
    pub intersects_goal: bool,
    /// Whether the whole flowpipe intersects the unsafe set.
    pub intersects_unsafe: bool,
}

impl WassersteinDistances {
    /// The feasibility of Problem 1's constraint set
    /// (`X_r ∩ X_g ≠ ∅ ∧ X_r ∩ X_u = ∅`).
    #[must_use]
    pub fn is_reach_avoid(&self) -> bool {
        self.intersects_goal && !self.intersects_unsafe
    }

    /// The paper's Wasserstein objective `W(r, g) − W(r, u)` (minimized).
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.w_goal - self.w_unsafe
    }
}

/// Which optimal-transport solver computes the cloud distances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OtSolver {
    /// Exact assignment (Jonker–Volgenant Hungarian, `O(n³)`) — the default.
    #[default]
    Hungarian,
    /// Entropy-regularized Sinkhorn iterations: approximate, asymptotically
    /// cheaper per iteration, and the solver the optimal-transport
    /// literature (the paper's reference \[19\]) recommends at scale.
    Sinkhorn {
        /// Regularization strength (→ exact as ε → 0).
        epsilon: f64,
        /// Iteration count.
        iterations: usize,
    },
}

/// Evaluator of the Wasserstein metric for a fixed problem instance.
#[derive(Debug, Clone)]
pub struct WassersteinMetric {
    unsafe_region: Region,
    goal_region: Region,
    universe: IntervalBox,
    /// Number of points per cloud (default 64).
    pub samples: usize,
    /// Sampling seed (the metric is deterministic in it).
    pub seed: u64,
    /// The OT solver.
    pub solver: OtSolver,
}

impl WassersteinMetric {
    /// Creates the evaluator with 64-point clouds.
    #[must_use]
    pub fn new(unsafe_region: Region, goal_region: Region, universe: IntervalBox) -> Self {
        Self {
            unsafe_region,
            goal_region,
            universe,
            samples: 64,
            seed: 0x5EED,
            solver: OtSolver::default(),
        }
    }

    /// Convenience constructor from a problem definition.
    #[must_use]
    pub fn for_problem(problem: &dwv_dynamics::ReachAvoidProblem) -> Self {
        Self::new(
            problem.unsafe_region.clone(),
            problem.goal_region.clone(),
            problem.universe.clone(),
        )
    }

    /// Evaluates the metric on a flowpipe.
    #[must_use]
    pub fn evaluate(&self, fp: &Flowpipe) -> WassersteinDistances {
        let final_box = &fp.final_step().end_box;
        let r_cloud = self.sample_box(final_box);
        let g_cloud = self.sample_region(&self.goal_region);
        let u_cloud = self.sample_region(&self.unsafe_region);
        let w_goal = cloud_distance(&r_cloud, &g_cloud, self.solver);
        let w_unsafe = cloud_distance(&r_cloud, &u_cloud, self.solver);
        WassersteinDistances {
            w_goal,
            w_unsafe,
            intersects_goal: self.goal_region.intersects_box(&fp.final_step().end_box),
            intersects_unsafe: fp
                .iter()
                .any(|s| self.unsafe_region.intersects_box(&s.enclosure)),
        }
    }

    /// Uniform sample cloud from a box (deterministic in the seed).
    fn sample_box(&self, b: &IntervalBox) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.samples)
            .map(|_| {
                (0..b.dim())
                    .map(|i| {
                        let iv = b.interval(i);
                        if iv.width() > 0.0 {
                            rng.gen_range(iv.lo()..=iv.hi())
                        } else {
                            iv.lo()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Uniform sample cloud from a region clipped to the universe.
    ///
    /// Box regions sample the clipped box directly; half-space regions use
    /// rejection sampling inside the universe.
    fn sample_region(&self, region: &Region) -> Vec<Vec<f64>> {
        if let Some(clipped) = region.clipped_box(&self.universe) {
            return self.sample_box(&clipped);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xABCD);
        let mut out = Vec::with_capacity(self.samples);
        let mut guard = 0usize;
        while out.len() < self.samples {
            let p: Vec<f64> = (0..self.universe.dim())
                .map(|i| {
                    let iv = self.universe.interval(i);
                    rng.gen_range(iv.lo()..=iv.hi())
                })
                .collect();
            if region.contains_point(&p) {
                out.push(p);
            }
            guard += 1;
            assert!(
                guard < self.samples * 10_000,
                "rejection sampling failed: region has negligible measure in the universe"
            );
        }
        out
    }
}

/// 1-Wasserstein distance between two equal-size uniform clouds.
fn cloud_distance(a: &[Vec<f64>], b: &[Vec<f64>], solver: OtSolver) -> f64 {
    let cost = ot::euclidean_cost(a, b);
    match solver {
        OtSolver::Hungarian => {
            let (_, total) = ot::hungarian(&cost);
            total / a.len() as f64
        }
        OtSolver::Sinkhorn {
            epsilon,
            iterations,
        } => {
            let wa = vec![1.0 / a.len() as f64; a.len()];
            let wb = vec![1.0 / b.len() as f64; b.len()];
            ot::sinkhorn(&cost, &wa, &wb, epsilon, iterations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> IntervalBox {
        IntervalBox::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)])
    }

    fn metric() -> WassersteinMetric {
        let mut m = WassersteinMetric::new(
            Region::from_box(IntervalBox::from_bounds(&[(-6.0, -4.0), (-1.0, 1.0)])),
            Region::from_box(IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])),
            universe(),
        );
        m.samples = 32;
        m
    }

    fn pipe(boxes: Vec<IntervalBox>) -> Flowpipe {
        Flowpipe::from_boxes(boxes, 0.1)
    }

    #[test]
    fn distances_reflect_position() {
        let m = metric();
        // Final set sits exactly on the goal.
        let fp = pipe(vec![IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])]);
        let d = m.evaluate(&fp);
        assert!(d.w_goal < d.w_unsafe, "{d:?}");
        assert!(d.intersects_goal);
        assert!(d.is_reach_avoid());
        // And vice versa on the unsafe set.
        let fp = pipe(vec![IntervalBox::from_bounds(&[(-6.0, -4.0), (-1.0, 1.0)])]);
        let d = m.evaluate(&fp);
        assert!(d.w_unsafe < d.w_goal);
        assert!(d.intersects_unsafe);
        assert!(!d.is_reach_avoid());
    }

    #[test]
    fn translation_scales_distance() {
        let m = metric();
        let near = pipe(vec![IntervalBox::from_bounds(&[(3.0, 4.0), (0.0, 1.0)])]);
        let far = pipe(vec![IntervalBox::from_bounds(&[(-2.0, -1.0), (0.0, 1.0)])]);
        let dn = m.evaluate(&near);
        let df = m.evaluate(&far);
        assert!(dn.w_goal < df.w_goal);
    }

    #[test]
    fn deterministic() {
        let m = metric();
        let fp = pipe(vec![IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)])]);
        let a = m.evaluate(&fp);
        let b = m.evaluate(&fp);
        assert_eq!(a, b);
    }

    #[test]
    fn goal_flag_uses_final_step_only() {
        let m = metric();
        // Goal touched mid-horizon (a whip-through), final step elsewhere:
        // the goal flag follows the final instantaneous set.
        let fp = pipe(vec![
            IntervalBox::from_bounds(&[(4.5, 5.0), (0.0, 0.5)]),
            IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
        ]);
        let d = m.evaluate(&fp);
        assert!(!d.intersects_goal);
        assert!(!d.intersects_unsafe);
        assert!(!d.is_reach_avoid());
    }

    #[test]
    fn unsafe_flag_uses_all_steps() {
        let m = metric();
        // Unsafe touched mid-horizon: safety is violated regardless of where
        // the pipe ends.
        let fp = pipe(vec![
            IntervalBox::from_bounds(&[(-5.0, -4.5), (0.0, 0.5)]),
            IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)]),
        ]);
        let d = m.evaluate(&fp);
        assert!(d.intersects_unsafe);
        assert!(!d.is_reach_avoid());
    }

    #[test]
    fn halfspace_region_rejection_sampling() {
        let mut m = WassersteinMetric::new(
            Region::from_halfspace(dwv_geom::HalfSpace::new(vec![1.0, 0.0], -5.0)),
            Region::from_box(IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])),
            universe(),
        );
        m.samples = 16;
        let fp = pipe(vec![IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)])]);
        let d = m.evaluate(&fp);
        // The unsafe half-space {x ≤ −5} is ~5.75 away from [0,1]².
        assert!(d.w_unsafe > 4.0);
    }

    #[test]
    fn sinkhorn_solver_close_to_exact() {
        let mut exact = metric();
        let mut approx = metric();
        approx.solver = OtSolver::Sinkhorn {
            epsilon: 0.02,
            iterations: 300,
        };
        let fp = pipe(vec![IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 1.0)])]);
        let de = exact.evaluate(&fp);
        let da = approx.evaluate(&fp);
        exact.samples = 32;
        approx.samples = 32;
        assert!(
            (de.w_goal - da.w_goal).abs() < 0.15 * de.w_goal.max(1.0),
            "sinkhorn {} vs exact {}",
            da.w_goal,
            de.w_goal
        );
        assert_eq!(de.intersects_goal, da.intersects_goal);
    }

    #[test]
    fn objective_sign() {
        let m = metric();
        let at_goal = pipe(vec![IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])]);
        let at_unsafe = pipe(vec![IntervalBox::from_bounds(&[(-6.0, -4.0), (-1.0, 1.0)])]);
        assert!(m.evaluate(&at_goal).objective() < m.evaluate(&at_unsafe).objective());
    }
}
