//! Optimal-transport solvers.
//!
//! The Wasserstein metric of the paper (Eq. 4) is computed on discretized
//! uniform distributions. Three solvers, trading exactness for generality:
//!
//! * [`wasserstein_1d`] — exact 1-D `W_p` via sorted quantile matching,
//! * [`hungarian`] — exact assignment for equal-size uniform clouds
//!   (Jonker–Volgenant shortest augmenting paths, `O(n³)`),
//! * [`sinkhorn`] — entropic regularization for general weighted clouds.

/// Exact 1-D 1-Wasserstein distance between two equal-size empirical
/// distributions: the mean absolute difference of sorted samples.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use dwv_metrics::ot::wasserstein_1d;
///
/// let w = wasserstein_1d(&[0.0, 1.0], &[2.0, 3.0]);
/// assert!((w - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn wasserstein_1d(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sample counts must match");
    assert!(!a.is_empty(), "samples must be non-empty");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    sa.iter().zip(&sb).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Exact minimum-cost assignment (Hungarian / Jonker–Volgenant shortest
/// augmenting paths). `cost` is row-major `n × n`. Returns
/// `(assignment, total_cost)` where `assignment[row] = column`.
///
/// For two equal-size uniform point clouds with `cost[i][j] = d(xᵢ, yⱼ)`,
/// `total_cost / n` is the exact 1-Wasserstein distance.
///
/// # Panics
///
/// Panics if `cost` is empty or not square.
#[must_use]
pub fn hungarian(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be non-empty");
    assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );
    // JV algorithm with 1-based sentinel column 0.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row assigned to column j (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

/// Entropy-regularized optimal transport (Sinkhorn–Knopp).
///
/// `a` and `b` are the (positive, summing to 1) weights of the two clouds,
/// `cost[i][j]` the ground cost. Returns the regularized transport cost
/// `⟨P, C⟩`, which converges to the exact OT cost as `epsilon → 0`.
///
/// # Panics
///
/// Panics if shapes are inconsistent, weights are non-positive, or
/// `epsilon <= 0`.
#[must_use]
pub fn sinkhorn(cost: &[Vec<f64>], a: &[f64], b: &[f64], epsilon: f64, iters: usize) -> f64 {
    let n = a.len();
    let m = b.len();
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert_eq!(cost.len(), n, "cost rows must match a");
    assert!(cost.iter().all(|r| r.len() == m), "cost cols must match b");
    assert!(
        a.iter().all(|&w| w > 0.0) && b.iter().all(|&w| w > 0.0),
        "weights must be positive"
    );
    // Log-domain Sinkhorn for numerical stability.
    let mut f = vec![0.0f64; n];
    let mut g = vec![0.0f64; m];
    let log_a: Vec<f64> = a.iter().map(|w| w.ln()).collect();
    let log_b: Vec<f64> = b.iter().map(|w| w.ln()).collect();
    for _ in 0..iters {
        for (i, fi) in f.iter_mut().enumerate() {
            let lse = log_sum_exp((0..m).map(|j| (g[j] - cost[i][j]) / epsilon + log_b[j]));
            *fi = -epsilon * lse;
        }
        for (j, gj) in g.iter_mut().enumerate() {
            let lse = log_sum_exp((0..n).map(|i| (f[i] - cost[i][j]) / epsilon + log_a[i]));
            *gj = -epsilon * lse;
        }
    }
    // Transport cost ⟨P, C⟩ with P_ij = a_i b_j exp((f_i + g_j − C_ij)/ε).
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..m {
            let p = ((f[i] + g[j] - cost[i][j]) / epsilon + log_a[i] + log_b[j]).exp();
            total += p * cost[i][j];
        }
    }
    total
}

fn log_sum_exp<I: Iterator<Item = f64>>(xs: I) -> f64 {
    let vals: Vec<f64> = xs.collect();
    let m = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return m;
    }
    m + vals.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Exact minimum assignment cost by brute-force permutation enumeration —
/// an independent `O(n!)` oracle for differential testing of [`hungarian`]
/// (`dwv-check`'s Wasserstein family and the property tests use it).
///
/// # Panics
///
/// Panics if `cost` is empty, not square, or larger than 9×9 (10! ≈ 3.6M
/// permutations is past the point of being a useful test oracle).
#[must_use]
pub fn brute_force_assignment(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    assert!((1..=9).contains(&n), "brute force supports 1..=9 rows");
    assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );
    // Iterative Heap's algorithm over column permutations.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut counters = vec![0usize; n];
    let assignment_cost =
        |p: &[usize]| -> f64 { p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum() };
    let mut best = assignment_cost(&perm);
    let mut i = 0;
    while i < n {
        if counters[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(counters[i], i);
            }
            best = best.min(assignment_cost(&perm));
            counters[i] += 1;
            i = 0;
        } else {
            counters[i] = 0;
            i += 1;
        }
    }
    best
}

/// Builds the Euclidean cost matrix between two point clouds.
///
/// # Panics
///
/// Panics if points have inconsistent dimensions.
#[must_use]
pub fn euclidean_cost(xs: &[Vec<f64>], ys: &[Vec<f64>]) -> Vec<Vec<f64>> {
    xs.iter()
        .map(|x| {
            ys.iter()
                .map(|y| {
                    assert_eq!(x.len(), y.len(), "point dimension mismatch");
                    x.iter()
                        .zip(y)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w1d_translation() {
        let a = [0.0, 0.5, 1.0];
        let b = [2.0, 2.5, 3.0];
        assert!((wasserstein_1d(&a, &b) - 2.0).abs() < 1e-12);
        assert!((wasserstein_1d(&a, &a) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn w1d_symmetric() {
        let a = [0.0, 1.0, 4.0];
        let b = [1.0, 2.0, 2.0];
        assert!((wasserstein_1d(&a, &b) - wasserstein_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn hungarian_identity() {
        // Diagonal dominant: identity assignment.
        let cost = vec![
            vec![0.0, 10.0, 10.0],
            vec![10.0, 0.0, 10.0],
            vec![10.0, 10.0, 0.0],
        ];
        let (asg, total) = hungarian(&cost);
        assert_eq!(asg, vec![0, 1, 2]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn hungarian_antidiagonal() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let (asg, total) = hungarian(&cost);
        assert_eq!(asg, vec![1, 0]);
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hungarian_matches_bruteforce() {
        // Random-ish 4x4: compare against all 24 permutations.
        let cost = vec![
            vec![3.0, 7.0, 5.0, 11.0],
            vec![2.0, 4.0, 9.0, 8.0],
            vec![6.0, 1.0, 7.0, 4.0],
            vec![5.0, 9.0, 2.0, 3.0],
        ];
        let (_, total) = hungarian(&cost);
        let mut best = f64::INFINITY;
        let perms = permutations(4);
        for p in perms {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            best = best.min(c);
        }
        assert!((total - best).abs() < 1e-9, "JV {total} vs brute {best}");
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let smaller = permutations(n - 1);
        let mut out = Vec::new();
        for p in smaller {
            for pos in 0..n {
                let mut q: Vec<usize> = p
                    .iter()
                    .map(|&v| if v >= pos { v + 1 } else { v })
                    .collect();
                q.insert(0, pos);
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn hungarian_equals_1d_wasserstein() {
        // For 1-D clouds, assignment OT equals quantile OT.
        let xs: Vec<Vec<f64>> = [0.0, 0.3, 0.9, 1.4].iter().map(|&v| vec![v]).collect();
        let ys: Vec<Vec<f64>> = [2.0, 2.2, 2.7, 3.0].iter().map(|&v| vec![v]).collect();
        let cost = euclidean_cost(&xs, &ys);
        let (_, total) = hungarian(&cost);
        let w_assign = total / 4.0;
        let w_quant = wasserstein_1d(
            &xs.iter().map(|p| p[0]).collect::<Vec<_>>(),
            &ys.iter().map(|p| p[0]).collect::<Vec<_>>(),
        );
        assert!((w_assign - w_quant).abs() < 1e-12);
    }

    #[test]
    fn sinkhorn_close_to_exact() {
        let xs: Vec<Vec<f64>> = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
            .iter()
            .map(|p| p.to_vec())
            .collect();
        let ys: Vec<Vec<f64>> = [[2.0, 0.0], [3.0, 0.0], [2.0, 1.0]]
            .iter()
            .map(|p| p.to_vec())
            .collect();
        let cost = euclidean_cost(&xs, &ys);
        let (_, exact) = hungarian(&cost);
        let exact = exact / 3.0;
        let w = vec![1.0 / 3.0; 3];
        let approx = sinkhorn(&cost, &w, &w, 0.01, 500);
        assert!(
            (approx - exact).abs() < 0.05 * exact.max(1.0),
            "sinkhorn {approx} vs exact {exact}"
        );
    }

    #[test]
    fn sinkhorn_handles_unequal_sizes() {
        let xs: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let ys: Vec<Vec<f64>> = vec![vec![5.0], vec![6.0], vec![7.0]];
        let cost = euclidean_cost(&xs, &ys);
        let a = vec![0.5; 2];
        let b = vec![1.0 / 3.0; 3];
        let w = sinkhorn(&cost, &a, &b, 0.05, 300);
        assert!(w > 4.0 && w < 7.0);
    }

    #[test]
    fn euclidean_cost_values() {
        let c = euclidean_cost(&[vec![0.0, 0.0]], &[vec![3.0, 4.0]]);
        assert!((c[0][0] - 5.0).abs() < 1e-12);
    }
}
