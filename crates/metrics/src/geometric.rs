//! The geometric distance metrics `d_θ^u` and `d_θ^g` (paper Eqs. 2, 3).
//!
//! * `d^u` is negative (−|X_r ∩ X_u|) when the reach set touches the unsafe
//!   region and the squared set distance otherwise — positive iff safe;
//! * `d^g` is positive (+|X_r ∩ X_g|) when the reach set touches the goal
//!   and the negated squared distance otherwise — positive iff reaching.
//!
//! Intersection measures use exact polygons when the verifier provides them
//! (the 2-D linear verifier) and box enclosures otherwise; unbounded regions
//! are clipped against the problem's universe box before measuring (see
//! `dwv_geom::Region::intersection_volume`).

use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_reach::{Flowpipe, StepEnclosure};

/// The pair `(d_θ^u, d_θ^g)` for one flowpipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricDistances {
    /// `d_θ^u` of Eq. (2): positive iff the flowpipe avoids the unsafe set.
    pub d_unsafe: f64,
    /// `d_θ^g` of Eq. (3): positive iff the flowpipe meets the goal set.
    pub d_goal: f64,
}

impl GeometricDistances {
    /// Whether the (over-approximated) reach-avoid property holds:
    /// `d^u > 0 ∧ d^g > 0`.
    #[must_use]
    pub fn is_reach_avoid(&self) -> bool {
        self.d_unsafe > 0.0 && self.d_goal > 0.0
    }

    /// The combined learning objective `d^u + d^g` the paper maximizes.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.d_unsafe + self.d_goal
    }
}

/// Evaluator of the geometric metrics for a fixed problem instance.
///
/// # Example
///
/// See the crate-level documentation.
#[derive(Debug, Clone)]
pub struct GeometricMetric {
    unsafe_region: Region,
    goal_region: Region,
    universe: IntervalBox,
}

impl GeometricMetric {
    /// Creates the evaluator.
    #[must_use]
    pub fn new(unsafe_region: Region, goal_region: Region, universe: IntervalBox) -> Self {
        Self {
            unsafe_region,
            goal_region,
            universe,
        }
    }

    /// Convenience constructor from a problem definition.
    #[must_use]
    pub fn for_problem(problem: &dwv_dynamics::ReachAvoidProblem) -> Self {
        Self::new(
            problem.unsafe_region.clone(),
            problem.goal_region.clone(),
            problem.universe.clone(),
        )
    }

    /// Evaluates `(d^u, d^g)` on a flowpipe.
    #[must_use]
    pub fn evaluate(&self, fp: &Flowpipe) -> GeometricDistances {
        GeometricDistances {
            d_unsafe: self.distance_unsafe(fp),
            d_goal: self.distance_goal(fp),
        }
    }

    /// `d^u` of Eq. (2).
    #[must_use]
    pub fn distance_unsafe(&self, fp: &Flowpipe) -> f64 {
        let overlap: f64 = fp
            .iter()
            .map(|s| self.step_intersection(s, &self.unsafe_region))
            .sum();
        if overlap > 0.0 {
            return -overlap;
        }
        // Any touching step (zero-measure overlap) still violates safety:
        // treat "distance 0 but measure 0" as d^u = 0. The distance uses the
        // same set representation as the measure (polygon on instantaneous
        // steps, sweep box otherwise), so the two branches agree.
        let min_dist = fp
            .iter()
            .map(|s| self.step_distance(s, &self.unsafe_region))
            .fold(f64::INFINITY, f64::min);
        if min_dist <= 0.0 {
            return 0.0;
        }
        min_dist.powi(2)
    }

    /// `d^g` of Eq. (3), evaluated on the *final instantaneous* reach set
    /// `X_r[T]` (like the Wasserstein metric's last-step distribution,
    /// §3.2). Two reasons for this reading of Eq. (3):
    ///
    /// * gradient signal — when the pipe drifts away from the goal, a
    ///   whole-pipe minimum distance is the constant `dist(X₀, X_g)` with
    ///   zero gradient in `θ`, useless to the difference method;
    /// * settling — a whole-pipe intersection rewards controllers that whip
    ///   *through* the goal's neighbourhood mid-horizon without parking
    ///   there; such controllers satisfy the optimistic stop criterion but
    ///   give Algorithm 2 no cell whose image fits inside `X_g`. Driving the
    ///   final set onto the goal makes the learned controllers *settle*,
    ///   which is what the paper's `X_I = X₀` results require.
    ///
    /// Sign semantics are unchanged: positive iff the (instantaneous) final
    /// set meets `X_g`.
    #[must_use]
    pub fn distance_goal(&self, fp: &Flowpipe) -> f64 {
        let last = fp.final_step();
        let overlap = self.end_intersection(last, &self.goal_region);
        if overlap > 0.0 {
            return overlap;
        }
        if self.goal_region.intersects_box(&last.end_box) {
            // Zero-measure touching still counts as "not yet reaching".
            return 0.0;
        }
        let d = self.end_distance(last, &self.goal_region);
        -d.powi(2)
    }

    /// Measure of `step ∩ region`. The exact polygon is used only when the
    /// step is instantaneous (`t0 == t1`) — for sweep steps the polygon
    /// describes the step-end set, not the whole period, so the (sound)
    /// sweep box is used instead.
    fn step_intersection(&self, step: &StepEnclosure, region: &Region) -> f64 {
        match &step.polygon {
            Some(poly) if region.dim() == 2 && step.t0 == step.t1 => {
                region.intersection_area(poly, &self.universe)
            }
            _ => region.intersection_volume(&step.enclosure, &self.universe),
        }
    }

    /// Distance from the step set to the region (same polygon rule as
    /// [`GeometricMetric::step_intersection`]).
    fn step_distance(&self, step: &StepEnclosure, region: &Region) -> f64 {
        match &step.polygon {
            Some(poly) if region.dim() == 2 && step.t0 == step.t1 => {
                region.distance_to_polygon(poly)
            }
            _ => region.distance_to_box(&step.enclosure),
        }
    }

    /// Measure of `X_r[t1] ∩ region` using the instantaneous end set.
    fn end_intersection(&self, step: &StepEnclosure, region: &Region) -> f64 {
        match &step.polygon {
            Some(poly) if region.dim() == 2 => region.intersection_area(poly, &self.universe),
            _ => region.intersection_volume(&step.end_box, &self.universe),
        }
    }

    /// Distance from the instantaneous end set to the region.
    fn end_distance(&self, step: &StepEnclosure, region: &Region) -> f64 {
        match &step.polygon {
            Some(poly) if region.dim() == 2 => region.distance_to_polygon(poly),
            _ => region.distance_to_box(&step.end_box),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> IntervalBox {
        IntervalBox::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)])
    }

    fn metric() -> GeometricMetric {
        GeometricMetric::new(
            Region::from_box(IntervalBox::from_bounds(&[(-6.0, -4.0), (-1.0, 1.0)])),
            Region::from_box(IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])),
            universe(),
        )
    }

    fn pipe(boxes: Vec<IntervalBox>) -> Flowpipe {
        Flowpipe::from_boxes(boxes, 0.1)
    }

    #[test]
    fn safe_and_reaching_is_reach_avoid() {
        let m = metric();
        let fp = pipe(vec![
            IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
            IntervalBox::from_bounds(&[(4.5, 5.5), (-0.5, 0.5)]),
        ]);
        let d = m.evaluate(&fp);
        assert!(d.is_reach_avoid());
        // d^u = squared distance from closest step to unsafe box.
        assert!((d.d_unsafe - 16.0).abs() < 1e-9); // gap 4 → 16
        assert!((d.d_goal - 1.0).abs() < 1e-9); // overlap area 1
    }

    #[test]
    fn unsafe_overlap_is_negative() {
        let m = metric();
        let fp = pipe(vec![IntervalBox::from_bounds(&[(-5.0, -4.5), (0.0, 0.5)])]);
        let d = m.evaluate(&fp);
        assert!(d.d_unsafe < 0.0);
        assert!((d.d_unsafe + 0.25).abs() < 1e-9);
        assert!(!d.is_reach_avoid());
    }

    #[test]
    fn goal_missed_is_negative() {
        let m = metric();
        let fp = pipe(vec![IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)])]);
        let d = m.evaluate(&fp);
        assert!(d.d_goal < 0.0);
        assert!((d.d_goal + 9.0).abs() < 1e-9); // gap 3 → −9
    }

    #[test]
    fn touching_unsafe_is_zero() {
        let m = metric();
        // Shares only the boundary x = −4.
        let fp = pipe(vec![IntervalBox::from_bounds(&[(-4.0, -3.0), (0.0, 0.5)])]);
        let d = m.evaluate(&fp);
        assert_eq!(d.d_unsafe, 0.0);
        assert!(!d.is_reach_avoid());
    }

    #[test]
    fn objective_is_sum() {
        let m = metric();
        let fp = pipe(vec![IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)])]);
        let d = m.evaluate(&fp);
        assert!((d.objective() - (d.d_unsafe + d.d_goal)).abs() < 1e-12);
    }

    #[test]
    fn polygon_path_used_when_present() {
        use dwv_geom::ConvexPolygon;
        let m = metric();
        // A triangle whose bounding box overlaps the goal more than the
        // triangle itself does, so the polygon path gives a smaller overlap.
        let poly = ConvexPolygon::from_points(vec![
            dwv_geom::Vec2::new(4.0, -1.0),
            dwv_geom::Vec2::new(6.0, -1.0),
            dwv_geom::Vec2::new(5.0, 3.0),
        ])
        .unwrap();
        let bb = poly.bounding_box();
        let step = StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            end_box: bb.clone(),
            enclosure: bb.clone(),
            polygon: Some(poly),
        };
        let fp = Flowpipe::new(vec![step]);
        let d_poly = m.distance_goal(&fp);
        let fp_box = pipe(vec![bb]);
        let d_box = m.distance_goal(&fp_box);
        assert!(d_poly > 0.0 && d_box > 0.0);
        assert!(
            d_poly < d_box,
            "polygon overlap {d_poly} should be below box {d_box}"
        );
    }

    #[test]
    fn sweep_steps_ignore_instantaneous_polygon() {
        use dwv_geom::ConvexPolygon;
        let m = metric();
        // A sweep step whose *end* polygon is safely away from the unsafe
        // region while the sweep box overlaps it: the box must win (the
        // polygon only describes t1, not the whole period).
        let poly = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]));
        let step = StepEnclosure {
            t0: 0.0,
            t1: 0.1, // a sweep step
            enclosure: IntervalBox::from_bounds(&[(-5.5, 1.0), (0.0, 1.0)]),
            end_box: IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
            polygon: Some(poly),
        };
        let fp = Flowpipe::new(vec![step]);
        let d = m.evaluate(&fp);
        assert!(d.d_unsafe < 0.0, "sweep overlap must be detected: {d:?}");
    }

    #[test]
    fn instantaneous_steps_use_polygon() {
        use dwv_geom::ConvexPolygon;
        // A triangle near the unsafe box whose bounding box would overlap it
        // but whose polygon does not: on an instantaneous step the polygon
        // must win (exact, tighter).
        let poly = ConvexPolygon::from_points(vec![
            dwv_geom::Vec2::new(-3.5, 2.0),
            dwv_geom::Vec2::new(-2.0, 0.5),
            dwv_geom::Vec2::new(-2.0, 2.0),
        ])
        .unwrap();
        let bb = poly.bounding_box();
        // Make the bounding box dip into the unsafe region by translating it
        // conceptually: use a region adjacent to the triangle's empty corner.
        let m2 = GeometricMetric::new(
            Region::from_box(IntervalBox::from_bounds(&[(-3.6, -3.0), (0.4, 0.9)])),
            Region::from_box(IntervalBox::from_bounds(&[(4.0, 6.0), (-1.0, 1.0)])),
            universe(),
        );
        let step = StepEnclosure {
            t0: 0.2,
            t1: 0.2, // instantaneous
            enclosure: bb.clone(),
            end_box: bb,
            polygon: Some(poly),
        };
        let fp = Flowpipe::new(vec![step]);
        let d = m2.evaluate(&fp);
        // The triangle's hypotenuse stays clear of the small unsafe box even
        // though the bounding box covers it.
        assert!(d.d_unsafe > 0.0, "polygon precision lost: {d:?}");
    }

    #[test]
    fn multi_step_uses_closest_for_distance() {
        let m = metric();
        let fp = pipe(vec![
            IntervalBox::from_bounds(&[(-1.0, 0.0), (0.0, 1.0)]),
            IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 1.0)]), // final step (gap 1)
        ]);
        let d = m.evaluate(&fp);
        assert!((d.d_goal + 1.0).abs() < 1e-9);
    }
}
