//! Distance metrics over reachable sets (paper §3.2).
//!
//! Two metric families turn a verifier's [`Flowpipe`](dwv_reach::Flowpipe)
//! into the scalar feedback Algorithm 1 descends on:
//!
//! * [`geometric`] — the geometric distances `d_θ^u` (Eq. 2) and `d_θ^g`
//!   (Eq. 3): negative intersection measure on overlap, squared set–set
//!   distance otherwise;
//! * [`wasserstein`] — the Wasserstein-distance metric (Eq. 4) between the
//!   uniform distribution on the last reach-set step and the goal / unsafe
//!   distributions, computed by exact optimal transport on uniform point
//!   clouds ([`ot::hungarian`]) or entropic regularization
//!   ([`ot::sinkhorn`]);
//! * [`ot`] — the optimal-transport solvers themselves (exact 1-D quantile
//!   transport, Hungarian assignment, Sinkhorn iterations).
//!
//! # Example
//!
//! ```
//! use dwv_metrics::geometric::GeometricMetric;
//! use dwv_geom::Region;
//! use dwv_interval::IntervalBox;
//! use dwv_reach::Flowpipe;
//!
//! let universe = IntervalBox::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]);
//! let goal = Region::from_box(IntervalBox::from_bounds(&[(4.0, 6.0), (4.0, 6.0)]));
//! let unsafe_r = Region::from_box(IntervalBox::from_bounds(&[(-6.0, -4.0), (-6.0, -4.0)]));
//! let metric = GeometricMetric::new(unsafe_r, goal, universe);
//!
//! let fp = Flowpipe::from_boxes(vec![
//!     IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
//!     IntervalBox::from_bounds(&[(4.5, 5.5), (4.5, 5.5)]),
//! ], 0.1);
//! let d = metric.evaluate(&fp);
//! assert!(d.d_unsafe > 0.0 && d.d_goal > 0.0); // reach-avoid satisfied
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod geometric;
pub mod ot;
pub mod wasserstein;

pub use geometric::{GeometricDistances, GeometricMetric};
pub use wasserstein::{OtSolver, WassersteinDistances, WassersteinMetric};
