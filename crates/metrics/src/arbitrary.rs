//! Seed-driven distribution generators for falsification harnesses.
//!
//! Entropy comes from a caller-supplied `next: &mut impl FnMut() -> u64`
//! word source, keeping generation a pure function of the seed stream.

use dwv_interval::arbitrary::f64_in;

/// A random 1-D point cloud of `n` samples with values of magnitude at most
/// `mag` (an equal-weight empirical distribution).
pub fn cloud_1d(next: &mut impl FnMut() -> u64, n: usize, mag: f64) -> Vec<f64> {
    (0..n.max(1)).map(|_| f64_in(next(), -mag, mag)).collect()
}

/// A random `dim`-dimensional point cloud of `n` samples with coordinates of
/// magnitude at most `mag`.
pub fn cloud(next: &mut impl FnMut() -> u64, n: usize, dim: usize, mag: f64) -> Vec<Vec<f64>> {
    (0..n.max(1))
        .map(|_| (0..dim).map(|_| f64_in(next(), -mag, mag)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_shapes() {
        let mut a = stream(23);
        let mut b = stream(23);
        assert_eq!(cloud_1d(&mut a, 5, 3.0), cloud_1d(&mut b, 5, 3.0));
        let c = cloud(&mut a, 4, 3, 2.0);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|p| p.len() == 3));
        assert_eq!(cloud_1d(&mut a, 0, 1.0).len(), 1);
    }
}
