//! Property-based tests for the optimal-transport solvers.
//!
//! The three independent implementations — closed-form 1-D quantile
//! transport, the Jonker–Volgenant assignment solver, and exhaustive
//! permutation enumeration — must agree wherever their domains overlap,
//! and the quantile distance must satisfy the metric axioms.

use dwv_metrics::ot::{
    brute_force_assignment, euclidean_cost, hungarian, sinkhorn, wasserstein_1d,
};
use proptest::prelude::*;

const N: usize = 5;

fn cloud() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, N)
}

fn to_points(xs: &[f64]) -> Vec<Vec<f64>> {
    xs.iter().map(|&v| vec![v]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// W1 is symmetric.
    #[test]
    fn wasserstein_symmetric(a in cloud(), b in cloud()) {
        let fwd = wasserstein_1d(&a, &b);
        let bwd = wasserstein_1d(&b, &a);
        prop_assert!((fwd - bwd).abs() < 1e-9, "d(a,b) = {fwd}, d(b,a) = {bwd}");
    }

    /// W1 of a cloud against itself is zero, and distances are nonnegative.
    #[test]
    fn wasserstein_identity(a in cloud(), b in cloud()) {
        prop_assert!(wasserstein_1d(&a, &a) < 1e-12);
        prop_assert!(wasserstein_1d(&a, &b) >= 0.0);
    }

    /// W1 satisfies the triangle inequality.
    #[test]
    fn wasserstein_triangle(a in cloud(), b in cloud(), c in cloud()) {
        let ab = wasserstein_1d(&a, &b);
        let ac = wasserstein_1d(&a, &c);
        let cb = wasserstein_1d(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-9, "d(a,b) = {ab} > {ac} + {cb}");
    }

    /// The Hungarian solver matches the closed-form 1-D quantile optimum.
    #[test]
    fn hungarian_matches_quantile_formula(a in cloud(), b in cloud()) {
        let w = wasserstein_1d(&a, &b);
        let cost = euclidean_cost(&to_points(&a), &to_points(&b));
        let (_, total) = hungarian(&cost);
        let avg = total / N as f64;
        prop_assert!((w - avg).abs() < 1e-9, "quantile {w} vs assignment {avg}");
    }

    /// The Hungarian solver matches exhaustive permutation enumeration on
    /// arbitrary (not just 1-D Euclidean) square cost matrices.
    #[test]
    fn hungarian_matches_brute_force(rows in proptest::collection::vec(proptest::collection::vec(0.0..50.0f64, N), N)) {
        let (_, total) = hungarian(&rows);
        let exact = brute_force_assignment(&rows);
        prop_assert!((total - exact).abs() < 1e-9, "JV {total} vs exhaustive {exact}");
    }

    /// W1 is translation-invariant and positively homogeneous.
    #[test]
    fn wasserstein_translation_and_scaling(a in cloud(), b in cloud(), t in -5.0..5.0f64, s in 0.1..3.0f64) {
        let base = wasserstein_1d(&a, &b);
        let at: Vec<f64> = a.iter().map(|v| v + t).collect();
        let bt: Vec<f64> = b.iter().map(|v| v + t).collect();
        prop_assert!((wasserstein_1d(&at, &bt) - base).abs() < 1e-9);
        let asc: Vec<f64> = a.iter().map(|v| v * s).collect();
        let bsc: Vec<f64> = b.iter().map(|v| v * s).collect();
        prop_assert!((wasserstein_1d(&asc, &bsc) - s * base).abs() < 1e-8 * (1.0 + base));
    }

    /// Sinkhorn (cost-relative regularization) never undercuts the exact
    /// optimum by more than its entropic slack.
    #[test]
    fn sinkhorn_upper_bounds_exact(a in cloud(), b in cloud()) {
        let cost = euclidean_cost(&to_points(&a), &to_points(&b));
        let scale = cost.iter().flatten().fold(0.0f64, |m, &c| m.max(c));
        let uniform = vec![1.0 / N as f64; N];
        let sk = sinkhorn(&cost, &uniform, &uniform, 0.05 * (1.0 + scale), 300);
        let exact = brute_force_assignment(&cost) / N as f64;
        prop_assert!(sk >= exact - 0.05 * (1.0 + scale), "sinkhorn {sk} vs exact {exact}");
    }
}
