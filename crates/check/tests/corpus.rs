//! Replays the committed regression corpus as an ordinary test: every seed
//! that ever produced (or guards against) a soundness finding must stay
//! clean forever.

use dwv_check::families::CaseOutcome;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_replays_clean() {
    let entries = dwv_check::corpus::load_dir(&corpus_dir()).expect("corpus dir readable");
    assert!(!entries.is_empty(), "corpus must not be empty");
    for entry in &entries {
        let (family, outcome) = dwv_check::replay(entry.id).expect("corpus family registered");
        if let CaseOutcome::Violation(msg) = outcome {
            panic!(
                "corpus seed {} [{}] regressed ({}): {msg}",
                entry.id.hex(),
                family,
                entry.comment
            );
        }
    }
}

#[test]
fn corpus_covers_multiple_families() {
    let entries = dwv_check::corpus::load_dir(&corpus_dir()).expect("corpus dir readable");
    let mut families: Vec<u8> = entries.iter().map(|e| e.id.family).collect();
    families.sort_unstable();
    families.dedup();
    assert!(
        families.len() >= 2,
        "corpus should guard more than one family, has {families:?}"
    );
}

#[test]
fn corpus_files_parse_strictly() {
    // Every *.seeds file must parse without error even when read directly
    // (guards against comment-format drift).
    let dir = corpus_dir();
    for entry in std::fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "seeds") {
            let text = std::fs::read_to_string(&path).expect("readable");
            dwv_check::corpus::parse(&text).expect("parseable corpus file");
        }
    }
}
