//! The determinism guard: the harness is only a *replayable* falsifier if
//! the whole run — generation, oracle verdicts, shrinking, reporting — is a
//! pure function of the configuration. Two runs with the same seed must
//! produce byte-identical JSON, serial or parallel alike.

use dwv_check::{run, Config};

fn base() -> Config {
    Config {
        seed: 0x00D3_C0DE,
        budget: 160,
        max_size: 6,
        ..Config::default()
    }
}

#[test]
fn same_seed_same_bytes() {
    let a = run(&base()).expect("run").to_json();
    let b = run(&base()).expect("run").to_json();
    assert_eq!(a, b, "same-seed runs must serialize byte-identically");
}

#[test]
fn parallel_equals_serial_bytes() {
    let serial = run(&base()).expect("run").to_json();
    for threads in [2, 4, 8] {
        let parallel = run(&Config { threads, ..base() }).expect("run").to_json();
        assert_eq!(
            serial, parallel,
            "worker-pool fan-out must not perturb the report ({threads} threads)"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(&base()).expect("run");
    let b = run(&Config {
        seed: 0xFACADE,
        ..base()
    })
    .expect("run");
    // Same shape, different cases: tallies are identical only by massive
    // coincidence; compare the JSON minus the seed lines to be robust.
    assert_eq!(a.total_cases(), b.total_cases());
    assert_ne!(a.seed, b.seed);
}

#[test]
fn report_contains_no_wallclock_fields() {
    let json = run(&base()).expect("run").to_json();
    for needle in ["time", "duration", "elapsed", "date"] {
        assert!(
            !json.contains(needle),
            "deterministic report must not embed {needle:?}"
        );
    }
}
