//! The `dwv-check` command-line falsifier.
//!
//! ```text
//! dwv-check [--seed 0xHEX] [--budget-cases N] [--family NAME]
//!           [--threads N] [--max-size N] [--no-shrink] [--json]
//! dwv-check --replay 0xTOKEN [--json]
//! dwv-check --corpus DIR [--json]
//! dwv-check --list-families
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage error.

use dwv_check::case::CaseId;
use dwv_check::families::{self, CaseOutcome};
use dwv_check::{corpus, replay, run, Config};
use std::path::Path;
use std::process::ExitCode;

struct Args {
    config: Config,
    replay_token: Option<String>,
    corpus_dir: Option<String>,
    json: bool,
    list: bool,
}

fn usage() -> &'static str {
    "usage: dwv-check [--seed 0xHEX] [--budget-cases N] [--family NAME] \
     [--threads N] [--max-size N] [--no-shrink] [--json]\n\
     \x20      dwv-check --replay 0xTOKEN | --corpus DIR | --list-families"
}

fn parse_u64(s: &str) -> Option<u64> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        t.parse().ok()
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        config: Config::default(),
        replay_token: None,
        corpus_dir: None,
        json: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                args.config.seed =
                    parse_u64(&v).ok_or_else(|| format!("bad --seed value {v:?}"))?;
            }
            "--budget-cases" => {
                let v = value("--budget-cases")?;
                args.config.budget =
                    parse_u64(&v).ok_or_else(|| format!("bad --budget-cases value {v:?}"))?;
            }
            "--family" => args.config.family = Some(value("--family")?),
            "--threads" => {
                let v = value("--threads")?;
                args.config.threads =
                    parse_u64(&v).ok_or_else(|| format!("bad --threads value {v:?}"))? as usize;
            }
            "--max-size" => {
                let v = value("--max-size")?;
                let n = parse_u64(&v).ok_or_else(|| format!("bad --max-size value {v:?}"))?;
                args.config.max_size =
                    u8::try_from(n).map_err(|_| format!("--max-size must be <= 255, got {n}"))?;
            }
            "--no-shrink" => args.config.shrink = false,
            "--json" => args.json = true,
            "--replay" => args.replay_token = Some(value("--replay")?),
            "--corpus" => args.corpus_dir = Some(value("--corpus")?),
            "--list-families" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn replay_one(token: &str, json: bool) -> Result<bool, String> {
    let id = CaseId::parse(token).ok_or_else(|| format!("malformed replay token {token:?}"))?;
    let (family, outcome) = replay(id)?;
    let (verdict, detail) = match &outcome {
        CaseOutcome::Pass => ("pass", String::new()),
        CaseOutcome::Skip => ("skip", String::new()),
        CaseOutcome::Violation(m) => ("violation", m.clone()),
    };
    if json {
        println!(
            "{{\"replay\": \"{}\", \"family\": \"{family}\", \"outcome\": \"{verdict}\", \"message\": \"{}\"}}",
            id.hex(),
            detail.replace('\\', "\\\\").replace('"', "\\\"")
        );
    } else {
        println!("{} [{family}] size {} -> {verdict}", id.hex(), id.size);
        if !detail.is_empty() {
            println!("  {detail}");
        }
    }
    Ok(matches!(outcome, CaseOutcome::Violation(_)))
}

fn run_corpus(dir: &str, json: bool) -> Result<bool, String> {
    let entries = corpus::load_dir(Path::new(dir)).map_err(|e| format!("corpus {dir}: {e}"))?;
    let mut violated = false;
    let mut replayed = 0usize;
    for entry in &entries {
        let hit = replay_one(&entry.id.hex(), json)?;
        if hit && !entry.comment.is_empty() && !json {
            println!("  corpus note: {} ({})", entry.comment, entry.file);
        }
        violated |= hit;
        replayed += 1;
    }
    if !json {
        println!("corpus: {replayed} seed(s) replayed from {dir}");
    }
    Ok(violated)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("dwv-check: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list {
        for f in families::registry() {
            println!("{:<12} (id {}) oracle: {}", f.name(), f.id(), f.oracle());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(token) = &args.replay_token {
        return match replay_one(token, args.json) {
            Ok(true) => ExitCode::from(1),
            Ok(false) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("dwv-check: {msg}");
                ExitCode::from(2)
            }
        };
    }

    if let Some(dir) = &args.corpus_dir {
        return match run_corpus(dir, args.json) {
            Ok(true) => ExitCode::from(1),
            Ok(false) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("dwv-check: {msg}");
                ExitCode::from(2)
            }
        };
    }

    match run(&args.config) {
        Ok(report) => {
            if args.json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.summary());
            }
            if report.total_violations() > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("dwv-check: {msg}");
            ExitCode::from(2)
        }
    }
}
