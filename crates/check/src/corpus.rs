//! The regression-seed corpus.
//!
//! Every confirmed finding is committed as a replay token in a text file
//! under `crates/check/corpus/`; the corpus is replayed by an ordinary
//! `#[test]` and by `dwv-check --corpus <dir>`, so a once-found soundness
//! bug can never silently return.
//!
//! # Format
//!
//! One token per line: `0x<16 hex digits>`, optionally followed by
//! whitespace and a `#`-prefixed comment. Blank lines and lines starting
//! with `#` are ignored.

use crate::case::CaseId;
use std::io;
use std::path::Path;

/// One corpus entry: a packed case plus its provenance comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The packed case to replay.
    pub id: CaseId,
    /// The trailing comment (empty when absent).
    pub comment: String,
    /// The file the entry came from (empty for in-memory parses).
    pub file: String,
}

/// Parses corpus text into entries; malformed token lines are reported as
/// `Err` with their 1-based line number.
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (token, comment) = match line.split_once('#') {
            Some((t, c)) => (t.trim(), c.trim().to_owned()),
            None => (line, String::new()),
        };
        match CaseId::parse(token) {
            Some(id) => out.push(CorpusEntry {
                id,
                comment,
                file: String::new(),
            }),
            None => return Err(format!("line {}: malformed token {token:?}", lineno + 1)),
        }
    }
    Ok(out)
}

/// Loads every `*.seeds` file under `dir` (sorted by file name for
/// deterministic replay order).
///
/// # Errors
///
/// I/O errors reading the directory or files; malformed lines surface as
/// [`io::ErrorKind::InvalidData`].
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut files: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seeds"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let entries = parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        out.extend(entries.into_iter().map(|mut en| {
            en.file = name.clone();
            en
        }));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tokens_comments_and_blanks() {
        let text = "# header\n\n0x0101000000000001\n0x0203000000000fff  # poly seam\n";
        let entries = parse(text).expect("valid corpus");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, CaseId::new(1, 1, 1));
        assert_eq!(entries[1].id, CaseId::new(2, 3, 0xFFF));
        assert_eq!(entries[1].comment, "poly seam");
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse("0xnope\n").expect_err("malformed");
        assert!(err.contains("line 1"));
    }
}
