//! Trace-analyzer determinism family.
//!
//! Random multi-threaded span forests (nested spans per thread, worker
//! fan-outs across threads, occasional malformed records, a final
//! portfolio counter snapshot) are rendered as the exact JSONL stream
//! `dwv-obs` emits and pushed through the `dwv-trace` analyzer. Three
//! oracles:
//!
//! 1. **Reference tree builder** — the indexed [`SpanForest`] builder
//!    must agree with the naive O(n²) scan on every input, including
//!    malformed ones (orphans, duplicate ids).
//! 2. **Pool-width bit-identity** — the rendered analysis report must be
//!    byte-identical between the serial parser and
//!    [`parse_trace_pooled`] at worker-pool widths 2, 4 and 8.
//! 3. **Bill round-trip & nesting** — the tier bill recovered from the
//!    trace must equal the counters injected into the snapshot, and
//!    well-formed cases must pass the strict [`validate_nesting`] gate.

use super::{case_rng, CaseOutcome, Family};
use crate::rng::CheckRng;
use dwv_trace::{
    analyze, parse_trace, parse_trace_pooled, render_report, validate_nesting, SpanForest,
    SpanRecord, NESTING_SLACK_US,
};

/// Trace analyzer vs naive tree builder and serial/pooled bit-identity.
pub struct TraceFamily;

/// The instrumentation-site name pool (repeats on purpose, so the
/// attribution table has to aggregate).
const NAMES: [&str; 6] = [
    "train",
    "verify",
    "reach.run",
    "pool.map",
    "pool.chunk",
    "sim",
];

/// Recursively grows one span and its children on `tid`, emitting records
/// in close order (children before parents, as the RAII guards do).
#[allow(clippy::too_many_arguments)]
fn gen_span(
    rng: &mut CheckRng,
    tid: u64,
    clock: &mut f64,
    depth: u32,
    budget: &mut u32,
    next_id: &mut u64,
    parent: u64,
    records: &mut Vec<SpanRecord>,
) {
    let start = *clock;
    *clock += (rng.next_u64() % 40) as f64 + 1.0;
    let id = *next_id;
    *next_id += 1;
    while depth < 3 && *budget > 0 && !rng.next_u64().is_multiple_of(3) {
        *budget -= 1;
        gen_span(rng, tid, clock, depth + 1, budget, next_id, id, records);
    }
    *clock += (rng.next_u64() % 20) as f64 + 1.0;
    records.push(SpanRecord {
        t_us: *clock,
        tid,
        name: NAMES[(rng.next_u64() % NAMES.len() as u64) as usize].to_string(),
        span_id: id,
        parent_id: parent,
        dur_us: *clock - start,
    });
}

/// Renders records plus a portfolio counter snapshot as the JSONL stream
/// `dwv-obs` would emit.
fn render_jsonl(records: &[SpanRecord], bill: &[u64]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"t_us\":{},\"tid\":{},\"kind\":\"span\",\"name\":\"{}\",\"span_id\":{},\"parent_id\":{},\"dur_us\":{}}}\n",
            r.t_us, r.tid, r.name, r.span_id, r.parent_id, r.dur_us
        ));
    }
    let counters = bill
        .iter()
        .enumerate()
        .map(|(i, c)| format!("\"portfolio.tier{i}.calls\":{c}"))
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&format!(
        "{{\"t_us\":1e9,\"tid\":0,\"kind\":\"snapshot\",\"name\":\"metrics\",\"metrics\":{{\"counters\":{{{counters}}},\"gauges\":{{}},\"histograms\":{{}}}}}}\n"
    ));
    out
}

impl Family for TraceFamily {
    fn id(&self) -> u8 {
        11
    }

    fn name(&self) -> &'static str {
        "trace"
    }

    fn oracle(&self) -> &'static str {
        "naive O(n^2) tree builder + serial/pooled report bit-identity"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let threads = 1 + rng.next_u64() % 4;
        let mut next_id = 1u64;
        let mut records = Vec::new();
        for tid in 0..threads {
            // Overlapping per-thread clocks, so cross-thread adoption of
            // worker roots has real candidates.
            let mut clock = (rng.next_u64() % 50) as f64;
            let mut budget = 4 + 4 * u32::from(size.min(8));
            while budget > 0 {
                budget -= 1;
                gen_span(
                    &mut rng,
                    tid,
                    &mut clock,
                    0,
                    &mut budget,
                    &mut next_id,
                    0,
                    &mut records,
                );
            }
        }

        // A third of the cases get malformed records: the analyzers must
        // stay lenient (orphans become roots) and the two tree builders
        // must still agree. Nesting validation is only asserted on the
        // well-formed two thirds.
        let mut well_formed = true;
        if rng.next_u64().is_multiple_of(3) && !records.is_empty() {
            well_formed = false;
            let donor = (rng.next_u64() % records.len() as u64) as usize;
            let mut orphan = records[donor].clone();
            orphan.span_id = next_id;
            orphan.parent_id = next_id + 100; // resolves to nothing
            records.push(orphan);
            if rng.next_u64().is_multiple_of(2) {
                let dup = (rng.next_u64() % records.len() as u64) as usize;
                let mut clone = records[dup].clone();
                clone.t_us += 1.0;
                records.push(clone); // duplicate span_id: last one wins
            }
        }

        let bill: Vec<u64> = (0..1 + rng.next_u64() % 3)
            .map(|_| rng.next_u64() % 1000)
            .collect();
        let text = render_jsonl(&records, &bill);

        let data = match parse_trace(&text) {
            Ok(d) => d,
            Err(e) => {
                return CaseOutcome::Violation(format!(
                    "self-generated trace failed to parse: {e}"
                ));
            }
        };
        if data.spans.len() != records.len() {
            return CaseOutcome::Violation(format!(
                "parse kept {} of {} span records",
                data.spans.len(),
                records.len()
            ));
        }

        // --- 1. indexed builder vs naive O(n²) reference ----------------
        let fast = SpanForest::from_records(&data.spans);
        let naive = SpanForest::from_records_naive(&data.spans);
        if fast != naive {
            return CaseOutcome::Violation(format!(
                "indexed forest disagrees with the naive reference: roots {:?} vs {:?} \
                 ({} spans, well_formed={well_formed})",
                fast.roots(),
                naive.roots(),
                data.spans.len()
            ));
        }

        // --- 2. serial vs pooled report bit-identity --------------------
        let analysis = analyze(&data);
        let serial_report = render_report(&analysis);
        for width in [2usize, 4, 8] {
            let pool = dwv_core::WorkerPool::new(width).force_parallel();
            let pooled = match parse_trace_pooled(&text, &pool) {
                Ok(d) => d,
                Err(e) => {
                    return CaseOutcome::Violation(format!(
                        "pooled parse (width {width}) failed on a serially-parseable trace: {e}"
                    ));
                }
            };
            let pooled_report = render_report(&analyze(&pooled));
            if pooled_report != serial_report {
                return CaseOutcome::Violation(format!(
                    "report differs at pool width {width}:\n--- serial ---\n{serial_report}\
                     --- width {width} ---\n{pooled_report}"
                ));
            }
        }

        // --- 3. bill round-trip and strict nesting on clean cases -------
        if analysis.bill != bill {
            return CaseOutcome::Violation(format!(
                "tier bill {:?} does not round-trip the injected counters {bill:?}",
                analysis.bill
            ));
        }
        if well_formed {
            if let Err(e) = validate_nesting(&data.spans, NESTING_SLACK_US) {
                return CaseOutcome::Violation(format!(
                    "well-formed synthetic trace fails strict nesting: {e}"
                ));
            }
        }
        for cost in &analysis.attribution {
            if cost.self_us > cost.total_us + 1e-9 {
                return CaseOutcome::Violation(format!(
                    "attribution row '{}' has self {:.3}µs > total {:.3}µs",
                    cost.name, cost.self_us, cost.total_us
                ));
            }
        }
        CaseOutcome::Pass
    }
}
