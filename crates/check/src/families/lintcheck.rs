//! Lint-engine differential family.
//!
//! Random miniature workspaces — a call DAG of generated functions with
//! known panic seeds, raw-float helpers, and float-zone consumers — are
//! rendered as Rust source and pushed through the full interprocedural
//! `dwv-lint` engine. Three oracles:
//!
//! 1. **Ground-truth spans** — the generator knows exactly which
//!    `(rule, sub-rule, file, line)` tuples the engine must report: the
//!    per-file seed sites, the public functions whose generated call DAG
//!    reaches a seed (computed here by an independent DFS over the plan,
//!    not by the engine's graph), and the zone calls into tainted
//!    helpers. The reported findings must match the set exactly.
//! 2. **Input-order determinism** — feeding the same sources in reversed
//!    order must produce a byte-identical JSON report.
//! 3. **Serial/parallel bit-identity** — the engine's parallel phases at
//!    pool widths 2, 4 and 8 must reproduce the serial report
//!    byte-for-byte.

use super::{case_rng, CaseOutcome, Family};
use dwv_lint::{lint_sources, EngineOptions, Rule, ZoneConfig};

/// Interprocedural lint engine vs generator ground truth and pool-width
/// bit-identity.
pub struct LintcheckFamily;

/// One generated call-DAG node (`pub fn g{k}`).
struct Node {
    /// Index of the generated file hosting the node.
    file: usize,
    /// Whether the body carries an `.unwrap()` panic seed.
    seeded: bool,
    /// Callee node indices (all strictly greater — the DAG is acyclic).
    callees: Vec<usize>,
    /// 1-based line of the `pub fn` token, filled in by the renderer.
    fn_line: u32,
    /// 1-based line of the seed site, filled in by the renderer.
    seed_line: u32,
}

/// A generated source file accumulating lines.
struct SrcFile {
    path: String,
    lines: Vec<String>,
}

impl SrcFile {
    fn new(path: String, header: &str) -> Self {
        Self {
            path,
            lines: vec![header.to_string(), String::new()],
        }
    }

    /// Appends a line and returns its 1-based number.
    fn push(&mut self, s: &str) -> u32 {
        self.lines.push(s.to_string());
        self.lines.len() as u32
    }

    fn text(&self) -> String {
        let mut t = self.lines.join("\n");
        t.push('\n');
        t
    }
}

/// The fully rendered plan: sources plus the expected finding tuples.
struct Plan {
    sources: Vec<(String, String)>,
    expected: Vec<(String, u32, &'static str, Option<&'static str>)>,
}

/// Generates the miniature workspace for `(seed, size)`.
fn gen_plan(rng: &mut crate::rng::CheckRng, size: u8) -> Plan {
    let n_nodes = 3 + (size as usize % 5);
    let n_files = 2 + (rng.next_u64() % 2) as usize;
    let n_helpers = 1 + (rng.next_u64() % 2) as usize;
    let n_zone = 1 + (rng.next_u64() % 2) as usize;

    let mut nodes: Vec<Node> = (0..n_nodes)
        .map(|k| {
            let mut callees = Vec::new();
            if k + 1 < n_nodes {
                for _ in 0..(rng.next_u64() % 3) {
                    let span = (n_nodes - k - 1) as u64;
                    let j = k + 1 + (rng.next_u64() % span) as usize;
                    if !callees.contains(&j) {
                        callees.push(j);
                    }
                }
                callees.sort_unstable();
            }
            Node {
                file: k * n_files / n_nodes,
                seeded: rng.next_u64().is_multiple_of(4),
                callees,
                fn_line: 0,
                seed_line: 0,
            }
        })
        .collect();
    // At least one seed, so every case exercises the reachability pass.
    if !nodes.iter().any(|n| n.seeded) {
        nodes.last_mut().expect("n_nodes >= 3").seeded = true;
    }

    let mut files: Vec<SrcFile> = (0..n_files)
        .map(|i| {
            SrcFile::new(
                format!("crates/reach/src/gen_{i}.rs"),
                "//! Generated lint-corpus file.",
            )
        })
        .collect();
    for (k, node) in nodes.iter_mut().enumerate() {
        let f = &mut files[node.file];
        f.push(&format!("/// Generated node {k}."));
        node.fn_line = f.push(&format!("pub fn g{k}(x: f64) -> f64 {{"));
        f.push("    let mut acc = x;");
        if node.seeded {
            f.push("    let probe: Option<f64> = None;");
            node.seed_line = f.push("    acc = probe.unwrap();");
        }
        for j in &node.callees {
            f.push(&format!("    acc = g{j}(acc);"));
        }
        f.push("    acc");
        f.push("}");
        f.push("");
    }
    // Raw-float helpers live in the first generated file: raw arithmetic
    // plus a raw `f64` return makes each one a taint source.
    for m in 0..n_helpers {
        let f = &mut files[0];
        f.push(&format!("/// Generated raw helper {m}."));
        f.push(&format!("pub fn h{m}(a: f64) -> f64 {{"));
        f.push("    a * 0.5");
        f.push("}");
        f.push("");
    }
    // Zone consumers are rendered at a default-zone float-zone path; every
    // call into a helper is a cross-function taint finding.
    let mut zone = SrcFile::new(
        "crates/reach/src/interval_reach.rs".to_string(),
        "//! Generated zone consumers.",
    );
    let mut zone_calls: Vec<u32> = Vec::new();
    for k in 0..n_zone {
        let m = (rng.next_u64() % n_helpers as u64) as usize;
        zone.push(&format!("/// Generated zone consumer {k}."));
        zone.push(&format!("pub fn z{k}(x: f64) -> f64 {{"));
        zone_calls.push(zone.push(&format!("    h{m}(x)")));
        zone.push("}");
        zone.push("");
    }

    // Independent reachability oracle: a node reaches a seed iff it is
    // seeded or any callee does. Callees are strictly higher-indexed, so
    // one reverse sweep settles the fixpoint.
    let mut reaches = vec![false; n_nodes];
    for k in (0..n_nodes).rev() {
        reaches[k] = nodes[k].seeded || nodes[k].callees.iter().any(|&j| reaches[j]);
    }

    let mut expected: Vec<(String, u32, &'static str, Option<&'static str>)> = Vec::new();
    for (k, n) in nodes.iter().enumerate() {
        let path = files[n.file].path.clone();
        if n.seeded {
            expected.push((path.clone(), n.seed_line, Rule::PanicFreedom.id(), None));
        }
        if reaches[k] {
            expected.push((path, n.fn_line, Rule::PanicFreedom.id(), Some("reach")));
        }
    }
    for line in zone_calls {
        expected.push((
            zone.path.clone(),
            line,
            Rule::FloatHygiene.id(),
            Some("taint"),
        ));
    }
    expected.sort();

    let mut sources: Vec<(String, String)> =
        files.iter().map(|f| (f.path.clone(), f.text())).collect();
    sources.push((zone.path.clone(), zone.text()));
    Plan { sources, expected }
}

impl Family for LintcheckFamily {
    fn id(&self) -> u8 {
        12
    }

    fn name(&self) -> &'static str {
        "lintcheck"
    }

    fn oracle(&self) -> &'static str {
        "generator ground-truth spans + input-order and pool-width report bit-identity"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let plan = gen_plan(&mut rng, size);
        let zones = ZoneConfig::default();
        let serial_opts = EngineOptions {
            serial: true,
            ..EngineOptions::default()
        };
        let report = lint_sources(&plan.sources, &zones, &serial_opts);

        // Oracle 1: exact finding tuples against the generator's ground truth.
        let mut got: Vec<(String, u32, &'static str, Option<&'static str>)> = report
            .findings
            .iter()
            .map(|f| {
                (
                    f.file.clone(),
                    f.line,
                    f.rule.id(),
                    match f.sub.as_deref() {
                        Some("reach") => Some("reach"),
                        Some("taint") => Some("taint"),
                        Some(_) => Some("other"),
                        None => None,
                    },
                )
            })
            .collect();
        got.sort();
        if got != plan.expected {
            let missing: Vec<_> = plan.expected.iter().filter(|e| !got.contains(e)).collect();
            let extra: Vec<_> = got.iter().filter(|g| !plan.expected.contains(g)).collect();
            return CaseOutcome::Violation(format!(
                "engine findings disagree with generator ground truth: missing {missing:?}, \
                 unexpected {extra:?}"
            ));
        }

        // Oracle 2: reversed input order must not change a byte.
        let baseline = report.to_json(Rule::all());
        let mut reversed = plan.sources.clone();
        reversed.reverse();
        let rev_json = lint_sources(&reversed, &zones, &serial_opts).to_json(Rule::all());
        if rev_json != baseline {
            return CaseOutcome::Violation(
                "report differs under reversed source order".to_string(),
            );
        }

        // Oracle 3: the parallel phases are bit-identical to serial. Width
        // 2 on every case; the full 4/8 matrix on the larger ramps.
        let widths: &[usize] = if size >= 3 { &[2, 4, 8] } else { &[2] };
        for &w in widths {
            let par_opts = EngineOptions {
                threads: Some(w),
                ..EngineOptions::default()
            };
            let par_json = lint_sources(&plan.sources, &zones, &par_opts).to_json(Rule::all());
            if par_json != baseline {
                return CaseOutcome::Violation(format!(
                    "parallel report differs from serial at width {w}"
                ));
            }
        }
        CaseOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_shapes_pass() {
        for seed in 0..8 {
            for size in [1, 3, 6] {
                assert_eq!(
                    LintcheckFamily.check(seed, size),
                    CaseOutcome::Pass,
                    "seed {seed} size {size}"
                );
            }
        }
    }

    #[test]
    fn plans_always_have_a_seed_and_a_taint_call() {
        for seed in 0..16 {
            let mut rng = case_rng(12, seed);
            let plan = gen_plan(&mut rng, (seed % 7) as u8);
            assert!(plan
                .expected
                .iter()
                .any(|(_, _, r, s)| *r == "panic-freedom" && s.is_none()));
            assert!(plan
                .expected
                .iter()
                .any(|(_, _, r, s)| *r == "float-hygiene" && *s == Some("taint")));
        }
    }
}
