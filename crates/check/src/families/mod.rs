//! The oracle families: each pairs a subsystem of the verified stack with
//! an independent brute-force oracle and checks randomly generated
//! instances against it.
//!
//! A family's [`Family::check`] is a pure function of `(seed, size)`:
//! the same pair always generates the same instance and reaches the same
//! verdict, which is what makes every finding replayable from its packed
//! [`CaseId`](crate::case::CaseId) alone.
//!
//! # Verdict semantics
//!
//! * [`CaseOutcome::Pass`] — the instance was checked and the oracle agreed.
//! * [`CaseOutcome::Skip`] — the draw was unproductive (e.g. validated
//!   integration refused to enclose, or a sampled point evaluated to NaN).
//!   Refusing to produce an enclosure is never a soundness violation, so
//!   skips are counted but harmless.
//! * [`CaseOutcome::Violation`] — the subsystem's claim was falsified; the
//!   message states the witness.

mod flow;
mod geom;
mod interval;
mod lintcheck;
mod nn;
mod poly;
mod portfolio;
mod serve;
mod simd;
mod taylor;
mod trace;
mod verdict;
mod wasserstein;

/// The verdict of one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Instance generated, oracle agreed.
    Pass,
    /// Unproductive draw (divergence, NaN sample, degenerate instance).
    Skip,
    /// Oracle disagreement — the contained message is the witness.
    Violation(String),
}

/// One subsystem-vs-oracle pairing.
pub trait Family: Sync {
    /// Stable one-byte identifier, packed into case ids.
    fn id(&self) -> u8;
    /// Short lowercase name used by `--family` and in reports.
    fn name(&self) -> &'static str;
    /// One-line description of the oracle for `--list-families`.
    fn oracle(&self) -> &'static str;
    /// Generates and checks the case `(seed, size)`.
    fn check(&self, seed: u64, size: u8) -> CaseOutcome;
}

/// All registered families, in fixed id order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Family>> {
    vec![
        Box::new(interval::IntervalFamily),
        Box::new(poly::PolyFamily),
        Box::new(taylor::TaylorFamily),
        Box::new(flow::FlowFamily),
        Box::new(geom::GeomFamily),
        Box::new(wasserstein::WassersteinFamily),
        Box::new(nn::NnFamily),
        Box::new(verdict::VerdictFamily),
        Box::new(simd::SimdFamily),
        Box::new(portfolio::PortfolioFamily),
        Box::new(trace::TraceFamily),
        Box::new(lintcheck::LintcheckFamily),
        Box::new(serve::ServeFamily),
    ]
}

/// Looks a family up by its `--family` name.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Family>> {
    registry().into_iter().find(|f| f.name() == name)
}

/// Looks a family up by its packed id byte.
#[must_use]
pub fn by_id(id: u8) -> Option<Box<dyn Family>> {
    registry().into_iter().find(|f| f.id() == id)
}

/// The per-family entropy stream for a case: the family id is folded into
/// the high bits so families draw decorrelated streams from equal seeds.
#[must_use]
pub(crate) fn case_rng(family_id: u8, seed: u64) -> crate::rng::CheckRng {
    crate::rng::CheckRng::new(seed ^ (u64::from(family_id) << 56))
}

/// A relative tolerance absorbing f64 rounding on the *oracle's* side of a
/// comparison (the enclosures themselves must be outward-rounded and get no
/// slack beyond this).
#[must_use]
pub(crate) fn oracle_tol(scale: f64) -> f64 {
    1e-9 * (1.0 + scale.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_and_names_are_unique() {
        let fams = registry();
        for (i, a) in fams.iter().enumerate() {
            for b in fams.iter().skip(i + 1) {
                assert_ne!(a.id(), b.id());
                assert_ne!(a.name(), b.name());
            }
        }
        assert!(fams.len() >= 6, "issue requires >= 6 oracle families");
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        for f in registry() {
            let by_n = by_name(f.name()).map(|g| g.id());
            let by_i = by_id(f.id()).map(|g| g.name().to_owned());
            assert_eq!(by_n, Some(f.id()));
            assert_eq!(by_i.as_deref(), Some(f.name()));
        }
    }

    #[test]
    fn checks_are_deterministic() {
        for f in registry() {
            for seed in [0u64, 0xBEEF, 0x1234_5678] {
                assert_eq!(f.check(seed, 3), f.check(seed, 3), "family {}", f.name());
            }
        }
    }
}
