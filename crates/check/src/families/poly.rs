//! Polynomial-range oracle family.
//!
//! Random sparse polynomials are evaluated at sampled points (corners,
//! grid nodes, and uniform draws) of a random bounded domain; the sampled
//! values must lie inside the Bernstein-form range enclosure and the
//! Horner interval evaluation. The cached Bernstein range must agree
//! bitwise with the direct computation, and affine substitution must
//! commute with evaluation up to rigorous rounding slack.

use super::{case_rng, CaseOutcome, Family};
use dwv_interval::arbitrary::{f64_in, narrow_box, point_in_box};
use dwv_poly::bernstein::{range_enclosure, RangeCache};
use dwv_poly::{arbitrary, Polynomial};

/// Bernstein/interval range enclosures vs sampled evaluation.
pub struct PolyFamily;

/// A rigorous bound on the `f64` evaluation error of `p` at `x`:
/// `eps * Σ_t |c_t| Π_i |x_i|^{e_i}` scaled by the term count and degree
/// (each Horner step contributes at most one rounding of the running
/// magnitude).
fn eval_slack(p: &Polynomial, x: &[f64]) -> f64 {
    let abs_sum: f64 = p
        .iter()
        .map(|(exps, c)| {
            let m: f64 = exps
                .iter()
                .zip(x.iter())
                .map(|(&e, &xi)| xi.abs().powi(e as i32))
                .product();
            c.abs() * m
        })
        .sum();
    let ops = (p.iter().count() as f64 + 1.0) * (f64::from(p.degree()) + 1.0);
    f64::EPSILON * ops * (abs_sum + 1.0)
}

impl Family for PolyFamily {
    fn id(&self) -> u8 {
        2
    }

    fn name(&self) -> &'static str {
        "poly"
    }

    fn oracle(&self) -> &'static str {
        "pointwise evaluation at corners/grid/uniform samples of the domain"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let nvars = 1 + (next() as usize) % 3;
        let max_degree = 1 + u32::from(size) / 2;
        let max_terms = 2 + usize::from(size);
        let coeff_mag = 1.0 + f64::from(size);
        let p = arbitrary::polynomial(
            &mut next,
            nvars,
            max_degree.min(6),
            max_terms.min(10),
            coeff_mag,
        );
        let domain = narrow_box(&mut next, nvars, 2.0, 1.5);

        let bern = range_enclosure(&p, &domain);
        let horner = p.eval_interval(domain.intervals());

        // Cached path must agree bitwise with the direct path, twice (the
        // second call is served from the memo).
        let mut cache = RangeCache::new();
        let c1 = cache.range_enclosure(&p, domain.intervals());
        let c2 = cache.range_enclosure(&p, domain.intervals());
        if c1 != bern || c2 != bern {
            return CaseOutcome::Violation(format!(
                "cached Bernstein range [{:e}, {:e}] differs from direct [{:e}, {:e}]",
                c1.lo(),
                c1.hi(),
                bern.lo(),
                bern.hi()
            ));
        }

        // Affine substitution differential: q(x) must equal p(a + b*x).
        let a: Vec<f64> = (0..nvars).map(|_| f64_in(next(), -1.0, 1.0)).collect();
        let b: Vec<f64> = (0..nvars).map(|_| f64_in(next(), -1.0, 1.0)).collect();
        let q = p.affine_substitution(&a, &b);

        let mut points = domain.corners();
        points.extend(domain.grid(2));
        for _ in 0..4 {
            points.push(point_in_box(&mut next, &domain));
        }

        for x in &points {
            let v = p.eval(x);
            if v.is_nan() {
                return CaseOutcome::Skip;
            }
            let slack = eval_slack(&p, x);
            if !bern.inflate(slack).contains_value(v) {
                return CaseOutcome::Violation(format!(
                    "Bernstein range [{:e}, {:e}] excludes p({x:?}) = {v:e} (slack {slack:e})",
                    bern.lo(),
                    bern.hi()
                ));
            }
            if !horner.inflate(slack).contains_value(v) {
                return CaseOutcome::Violation(format!(
                    "interval evaluation [{:e}, {:e}] excludes p({x:?}) = {v:e}",
                    horner.lo(),
                    horner.hi()
                ));
            }
            let y: Vec<f64> = a
                .iter()
                .zip(b.iter())
                .zip(x.iter())
                .map(|((&ai, &bi), &xi)| ai + bi * xi)
                .collect();
            let direct = p.eval(&y);
            let subst = q.eval(x);
            let tol = eval_slack(&p, &y) + eval_slack(&q, x) + super::oracle_tol(direct);
            if (direct - subst).abs() > tol {
                return CaseOutcome::Violation(format!(
                    "affine substitution drifts: p(a+b*x) = {direct:e} vs q(x) = {subst:e} (tol {tol:e})"
                ));
            }
        }
        CaseOutcome::Pass
    }
}
