//! Optimal-transport oracle family.
//!
//! Three independent implementations of the same quantity are played
//! against each other: the closed-form sorted-quantile 1-D Wasserstein
//! distance, the Jonker–Volgenant Hungarian assignment solver, and an
//! exhaustive permutation enumeration (Heap's algorithm, n ≤ 8). On top of
//! the differential checks, metric axioms (symmetry, triangle inequality,
//! identity) are asserted for the quantile implementation, and the
//! entropic Sinkhorn value is required to upper-bound the exact optimum
//! (its transport plan is feasible, so it can never beat the optimum by
//! more than its numerical slack).

use super::{case_rng, CaseOutcome, Family};
use dwv_metrics::arbitrary::{cloud, cloud_1d};
use dwv_metrics::ot::{
    brute_force_assignment, euclidean_cost, hungarian, sinkhorn, wasserstein_1d,
};

/// Quantile vs Hungarian vs exhaustive-permutation transport costs.
pub struct WassersteinFamily;

impl Family for WassersteinFamily {
    fn id(&self) -> u8 {
        6
    }

    fn name(&self) -> &'static str {
        "wasserstein"
    }

    fn oracle(&self) -> &'static str {
        "exhaustive assignment enumeration and the exact 1-D quantile formula"
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let n = 2 + (next() as usize) % 6;
        let mag = 1.0 + f64::from(size);
        let tol = super::oracle_tol(mag) * n as f64;

        // --- 1-D: quantile formula vs assignment solvers -----------------
        let a = cloud_1d(&mut next, n, mag);
        let b = cloud_1d(&mut next, n, mag);
        let w_quantile = wasserstein_1d(&a, &b);
        let pts_a: Vec<Vec<f64>> = a.iter().map(|&v| vec![v]).collect();
        let pts_b: Vec<Vec<f64>> = b.iter().map(|&v| vec![v]).collect();
        let cost = euclidean_cost(&pts_a, &pts_b);
        let (_, total) = hungarian(&cost);
        let w_hungarian = total / n as f64;
        let w_brute = brute_force_assignment(&cost) / n as f64;
        if (w_quantile - w_brute).abs() > tol {
            return CaseOutcome::Violation(format!(
                "1-D quantile W1 = {w_quantile:e} disagrees with exhaustive optimum {w_brute:e}"
            ));
        }
        if (w_hungarian - w_brute).abs() > tol {
            return CaseOutcome::Violation(format!(
                "Hungarian W1 = {w_hungarian:e} disagrees with exhaustive optimum {w_brute:e}"
            ));
        }

        // --- metric axioms ------------------------------------------------
        let w_ba = wasserstein_1d(&b, &a);
        if (w_quantile - w_ba).abs() > tol {
            return CaseOutcome::Violation(format!(
                "W1 asymmetric: d(a,b) = {w_quantile:e}, d(b,a) = {w_ba:e}"
            ));
        }
        if wasserstein_1d(&a, &a) > tol {
            return CaseOutcome::Violation("W1(a, a) is not zero".to_owned());
        }
        let c = cloud_1d(&mut next, n, mag);
        let w_ac = wasserstein_1d(&a, &c);
        let w_cb = wasserstein_1d(&c, &b);
        if w_quantile > w_ac + w_cb + tol {
            return CaseOutcome::Violation(format!(
                "triangle inequality fails: d(a,b) = {w_quantile:e} > {:e}",
                w_ac + w_cb
            ));
        }

        // --- multi-dimensional: Hungarian vs exhaustive -------------------
        let dim = 2 + (next() as usize) % 2;
        let xs = cloud(&mut next, n, dim, mag);
        let ys = cloud(&mut next, n, dim, mag);
        let cost_nd = euclidean_cost(&xs, &ys);
        let (_, total_nd) = hungarian(&cost_nd);
        let brute_nd = brute_force_assignment(&cost_nd);
        if (total_nd - brute_nd).abs() > tol * n as f64 {
            return CaseOutcome::Violation(format!(
                "{dim}-D Hungarian total {total_nd:e} disagrees with exhaustive {brute_nd:e}"
            ));
        }

        // --- Sinkhorn upper-bounds the exact optimum ----------------------
        // The entropic plan is only feasible (hence >= the optimum) at
        // convergence, and convergence speed scales with epsilon relative to
        // the cost magnitudes — so regularize *relative* to the cost scale
        // and allow slack on the same scale. (An absolute epsilon of 0.1
        // against costs of ~40 leaves the marginals unconverged after 300
        // iterations and the value legitimately undercuts the optimum; seed
        // 0x060c66b32c0661f2 in the corpus pins the recalibrated oracle.)
        let cost_scale = cost_nd.iter().flatten().fold(0.0f64, |m, &c| m.max(c));
        let uniform = vec![1.0 / n as f64; n];
        let eps = 0.05 * (1.0 + cost_scale);
        let sk = sinkhorn(&cost_nd, &uniform, &uniform, eps, 300);
        let exact_mean = brute_nd / n as f64;
        if sk < exact_mean - 0.05 * (1.0 + cost_scale) {
            return CaseOutcome::Violation(format!(
                "Sinkhorn value {sk:e} undercuts the exact optimum {exact_mean:e} \
                 (epsilon {eps:e}, cost scale {cost_scale:e})"
            ));
        }
        CaseOutcome::Pass
    }
}
