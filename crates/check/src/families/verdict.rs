//! Verifier-verdict oracle family.
//!
//! The geometric metric's sign semantics are the paper's safety contract:
//! `d^u > 0` claims the flowpipe *provably avoids* the unsafe set and
//! `d^g < 0` claims the final set *provably misses* the goal. Both are
//! universally-quantified claims, so point sampling can falsify them:
//! generate random flowpipes and regions, and hunt for a member point that
//! contradicts the claimed verdict. (The opposite signs are existence
//! claims — sampling cannot refute those, so they are not checked.)

use super::{case_rng, CaseOutcome, Family};
use dwv_core::arbitrary::{box_flowpipe, region};
use dwv_interval::arbitrary::point_in_box;
use dwv_interval::IntervalBox;
use dwv_metrics::GeometricMetric;

/// Geometric-distance sign semantics vs point-membership sampling.
pub struct VerdictFamily;

impl Family for VerdictFamily {
    fn id(&self) -> u8 {
        8
    }

    fn name(&self) -> &'static str {
        "verdict"
    }

    fn oracle(&self) -> &'static str {
        "point-membership sampling against claimed safety/goal verdict signs"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let dim = 2 + (next() as usize) % 2;
        let mag = 2.0 + f64::from(size);
        let n_steps = 1 + (next() as usize) % 5;
        let fp = box_flowpipe(&mut next, dim, n_steps, mag);
        let unsafe_region = region(&mut next, dim, mag);
        let goal_region = region(&mut next, dim, mag);
        let universe = IntervalBox::from_bounds(&vec![(-4.0 * mag, 4.0 * mag); dim]);
        let metric = GeometricMetric::new(unsafe_region.clone(), goal_region.clone(), universe);
        let d = metric.evaluate(&fp);

        // d_unsafe > 0 claims every flowpipe point avoids the unsafe set.
        if d.d_unsafe > 1e-12 {
            for step in fp.iter() {
                let mut pts = step.enclosure.corners();
                for _ in 0..3 {
                    pts.push(point_in_box(&mut next, &step.enclosure));
                }
                for p in &pts {
                    if unsafe_region.contains_point(p) {
                        return CaseOutcome::Violation(format!(
                            "d_unsafe = {:e} claims safety but flowpipe point {p:?} lies in \
                             the unsafe region",
                            d.d_unsafe
                        ));
                    }
                }
            }
        }

        // d_goal < 0 claims the final instantaneous set misses the goal.
        if d.d_goal < -1e-12 {
            let end = &fp.final_step().end_box;
            let mut pts = end.corners();
            for _ in 0..3 {
                pts.push(point_in_box(&mut next, end));
            }
            for p in &pts {
                if goal_region.contains_point(p) {
                    return CaseOutcome::Violation(format!(
                        "d_goal = {:e} claims the goal is missed but final-set point {p:?} \
                         lies in the goal region",
                        d.d_goal
                    ));
                }
            }
        }
        CaseOutcome::Pass
    }
}
