//! Differential serve-vs-batch family.
//!
//! Each case boots a real `dwv-serve` server on loopback, drives a
//! seed-derived interleaving of submits, duplicate submissions, cancels,
//! and mid-stream disconnects against it, then holds every job that ran to
//! completion to the parity contract: the streamed [`JobOutput`] must be
//! **byte-identical** to a fresh in-process [`run_job`] of the same spec —
//! at a *different* worker-pool width, so the comparison simultaneously
//! pins thread-count invariance.
//!
//! Randomized-but-deterministic: every choice (job mix, pool widths,
//! which job gets a duplicate or a cancel, where the disconnecting client
//! cuts its frame) is drawn from the case's seeded stream, so a replay
//! token reproduces the exact interleaving. Timing races the server is
//! *allowed* to resolve either way (a cancel landing before or after
//! completion) are scored identically on both branches, keeping the
//! verdict a pure function of `(seed, size)`.

use super::{case_rng, CaseOutcome, Family};
use dwv_core::parallel::{CancelToken, WorkerPool};
use dwv_interval::arbitrary::f64_in;
use dwv_reach::ReachCache;
use dwv_serve::{
    run_job, Client, Frame, JobEvent, JobKind, JobSpec, ProblemId, RejectCode, ServeConfig, Server,
};

/// Loopback serve-vs-batch differential with randomized interleavings.
pub struct ServeFamily;

/// Stable-band ACC gains: mostly verify, some land near the boundary so
/// verdict strings vary across cases.
///
/// `allow_assess` admits the full-report `AssessLinear` kind, which costs
/// ~50× a `VerifyLinear` (Algorithm-2 cell search + rollout rates); the
/// caller seed-gates it the way the portfolio family gates learning runs.
fn random_spec(next: &mut impl FnMut() -> u64, allow_assess: bool) -> JobSpec {
    let gains = vec![f64_in(next(), 0.2, 1.0), f64_in(next(), -2.6, -1.4)];
    if allow_assess && next().is_multiple_of(2) {
        JobSpec {
            problem: ProblemId::Acc,
            kind: JobKind::AssessLinear { gains },
        }
    } else {
        JobSpec {
            problem: ProblemId::Acc,
            kind: JobKind::VerifyLinear {
                gains,
                grid: 1 + (next() % 2) as u32,
                samples: 10 + (next() % 16) as u32,
            },
        }
    }
}

/// One fresh in-process reference run: new pool, cold cache, no cancel.
fn batch_reference(
    spec: &JobSpec,
    tenant: u64,
    width: usize,
) -> Result<dwv_serve::JobOutput, dwv_serve::JobError> {
    let pool = WorkerPool::new(width);
    let cache = ReachCache::new();
    run_job(spec, tenant, &pool, &cache, &CancelToken::new())
}

impl Family for ServeFamily {
    fn id(&self) -> u8 {
        13
    }

    fn name(&self) -> &'static str {
        "serve"
    }

    fn oracle(&self) -> &'static str {
        "loopback server vs fresh in-process run_job at a different pool width"
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();

        let n_jobs = 2 + (next() % u64::from(1 + size.min(2))) as usize;
        // Full-report jobs are ~50× a verify sweep; admit them on the same
        // sparse schedule the portfolio family uses for learning runs.
        let allow_assess = seed.is_multiple_of(32);
        let jobs: Vec<(u64, u64, JobSpec)> = (0..n_jobs)
            .map(|j| {
                let tenant = 1 + next() % 2; // two tenants share the server
                (tenant, j as u64 + 1, random_spec(&mut next, allow_assess))
            })
            .collect();

        // Server pool width and the reference width must differ, so every
        // parity comparison is also a thread-count-invariance check.
        let widths = [2usize, 4, 8];
        let serve_width = widths[(next() % 3) as usize];
        let batch_width = widths[(next() % 3) as usize];
        let batch_width = if batch_width == serve_width {
            widths[(widths.iter().position(|&w| w == serve_width).unwrap_or(0) + 1) % 3]
        } else {
            batch_width
        };

        let server = match Server::start(ServeConfig {
            workers: 1 + (next() % 2) as usize,
            pool_threads: serve_width,
            queue_capacity: 64,
            ..ServeConfig::default()
        }) {
            Ok(s) => s,
            Err(_) => return CaseOutcome::Skip, // loopback bind refused
        };
        let Ok(mut client) = Client::connect(server.addr()) else {
            server.shutdown();
            return CaseOutcome::Skip;
        };

        // --- Phase 1: concurrent-ish submits, one deliberate duplicate ---
        for (tenant, job_id, spec) in &jobs {
            match client.submit(*tenant, *job_id, 0, spec.clone()) {
                Ok(Frame::Accepted { .. }) => {}
                Ok(other) => {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "fresh job {job_id} under tenant {tenant} not admitted: {other:?}"
                    ));
                }
                Err(_) => {
                    server.shutdown();
                    return CaseOutcome::Skip;
                }
            }
        }
        let (dup_tenant, dup_id, dup_spec) = &jobs[(next() % jobs.len() as u64) as usize];
        match client.submit(*dup_tenant, *dup_id, 0, dup_spec.clone()) {
            Ok(Frame::Rejected {
                code: RejectCode::DuplicateJob,
                ..
            }) => {}
            Ok(other) => {
                server.shutdown();
                return CaseOutcome::Violation(format!(
                    "duplicate (tenant {dup_tenant}, job {dup_id}) not rejected as \
                     DuplicateJob: {other:?}"
                ));
            }
            Err(_) => {
                server.shutdown();
                return CaseOutcome::Skip;
            }
        }

        // --- Phase 2: a client disconnects mid-frame; server must shrug ---
        if next() % 2 == 0 {
            if let Ok(mut rude) = Client::connect(server.addr()) {
                let wire = Frame::Submit {
                    tenant: 99,
                    job_id: 99,
                    deadline_ms: 0,
                    spec: jobs[0].2.clone(),
                }
                .encode();
                let cut = 1 + (next() % (wire.len() as u64 - 1)) as usize;
                let _ = rude.send_raw(&wire[..cut]);
            } // dropped here, mid-frame
        }

        // --- Phase 3: racing cancel on one job (either outcome is legal) --
        let cancel_target = if next() % 2 == 0 {
            let (t, id, _) = &jobs[(next() % jobs.len() as u64) as usize];
            match client.cancel(*t, *id) {
                Ok(_) => Some((*t, *id)),
                Err(_) => {
                    server.shutdown();
                    return CaseOutcome::Skip;
                }
            }
        } else {
            None
        };

        // --- Phase 4: stream every job to terminal; hold Done to parity ---
        for (tenant, job_id, spec) in &jobs {
            let Ok(events) = client.stream_events(*tenant, *job_id) else {
                server.shutdown();
                return CaseOutcome::Skip;
            };
            match events.last() {
                Some(JobEvent::Cancelled) if cancel_target == Some((*tenant, *job_id)) => {
                    // The cancel won the race — legal, nothing to compare.
                    continue;
                }
                Some(JobEvent::Done) => {}
                other => {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "job {job_id} (tenant {tenant}, {spec:?}) ended in {other:?} \
                         instead of Done"
                    ));
                }
            }
            let served = match dwv_serve::reassemble(&events) {
                Ok(out) => out,
                Err(e) => {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "job {job_id} (tenant {tenant}) stream reassembly failed: {e}"
                    ));
                }
            };
            let batch = match batch_reference(spec, *tenant, batch_width) {
                Ok(out) => out,
                Err(e) => {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "batch reference for job {job_id} ({spec:?}) errored: {e}"
                    ));
                }
            };
            if served != batch {
                server.shutdown();
                return CaseOutcome::Violation(format!(
                    "serve-vs-batch divergence for job {job_id} (tenant {tenant}, \
                     {spec:?}, serve pool {serve_width}, batch pool {batch_width}): \
                     served verdict {:?} segments {} report {:?} bytes, batch verdict \
                     {:?} segments {} report {:?} bytes",
                    served.verdict,
                    served.segments.len(),
                    served.report_csv.as_ref().map(Vec::len),
                    batch.verdict,
                    batch.segments.len(),
                    batch.report_csv.as_ref().map(Vec::len),
                ));
            }
        }

        // --- Phase 5 (sparse): full width sweep 2/4/8 on one spec ---------
        if seed.is_multiple_of(16) {
            let (tenant, _, spec) = &jobs[0];
            let base = batch_reference(spec, *tenant, 2);
            for w in [4usize, 8] {
                if batch_reference(spec, *tenant, w) != base {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "run_job({spec:?}) differs between pool widths 2 and {w}"
                    ));
                }
            }
        }

        // --- Phase 6: drain refuses new work once everything is terminal -
        if next() % 2 == 0 {
            let Ok((queued, running)) = client.drain() else {
                server.shutdown();
                return CaseOutcome::Skip;
            };
            if (queued, running) != (0, 0) {
                server.shutdown();
                return CaseOutcome::Violation(format!(
                    "drain after all jobs terminal reported backlog ({queued} queued, \
                     {running} running)"
                ));
            }
            match client.submit(7, 1000, 0, jobs[0].2.clone()) {
                Ok(Frame::Rejected {
                    code: RejectCode::Draining,
                    ..
                }) => {}
                Ok(other) => {
                    server.shutdown();
                    return CaseOutcome::Violation(format!(
                        "submit on a draining server not rejected as Draining: {other:?}"
                    ));
                }
                Err(_) => {
                    server.shutdown();
                    return CaseOutcome::Skip;
                }
            }
        }

        server.shutdown();
        CaseOutcome::Pass
    }
}
