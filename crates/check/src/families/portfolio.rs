//! Tiered verifier-portfolio differential family.
//!
//! Random linear feedback gains and random initial cells of the ACC
//! benchmark are pushed through every tier of the portfolio stack
//! (interval, zonotope, exact linear) and cross-examined three ways:
//!
//! 1. **Tier soundness** — every tier's step enclosures must contain the
//!    boundary states of step-halved RK4 closed-loop simulations started
//!    at cell corners and random interior points. A tier may refuse to
//!    enclose (divergence is a skip), but a returned enclosure has no
//!    excuse for excluding a real trajectory.
//! 2. **No verdict contradiction** — the two claims a cheap tier is
//!    entitled to make must never be contradicted by the rigorous tier:
//!    a cheap enclosure with positive unsafe clearance implies the true
//!    reach set (and hence the exact tier) clears the unsafe region, and a
//!    cheap final box *contained* in the goal implies the exact final set
//!    meets the goal. (The intersection-based `d_goal` of the learning
//!    metric is optimistic on wide boxes, so mere cheap goal-overlap is
//!    not a claim; neither is a cheap "violates" — both carry no
//!    information and are not compared.)
//! 3. **Portfolio-accepted means rigorously verified** (seed-gated) — a
//!    short Algorithm 1 run in surrogate mode must only report reach-avoid
//!    for controllers that a freshly-built rigorous-only verifier also
//!    accepts, i.e. the tiered probe oracle never leaks a cheap acceptance
//!    into the final verdict.

use super::{case_rng, CaseOutcome, Family};
use dwv_core::{Algorithm1, LearnConfig, MetricKind, PortfolioMode};
use dwv_dynamics::{acc, simulate::Simulator, Controller, LinearController};
use dwv_interval::arbitrary::f64_in;
use dwv_interval::IntervalBox;
use dwv_metrics::GeometricMetric;
use dwv_reach::{IntervalReach, LinearReach, Verifier, ZonotopeReach};

/// Tiered portfolio vs RK4 sampling and the rigorous-only verifier.
pub struct PortfolioFamily;

/// Builds the three ACC tiers in escalation order (cheapest first); the
/// last entry is the rigorous authority. Mirrors
/// `Algorithm1::linear_portfolio`, but as plain trait objects so each tier
/// is queried (and blamed) individually.
fn acc_tiers() -> Option<Vec<Box<dyn Verifier<LinearController>>>> {
    let problem = acc::reach_avoid_problem();
    Some(vec![
        Box::new(IntervalReach::for_problem(&problem)),
        Box::new(ZonotopeReach::for_problem(&problem).ok()?),
        Box::new(LinearReach::for_problem(&problem).ok()?),
    ])
}

/// A random sub-box of `outer`: each axis keeps a random sub-interval.
fn sub_cell(next: &mut impl FnMut() -> u64, outer: &IntervalBox) -> IntervalBox {
    let mids = outer.center();
    let rads = outer.radii();
    let bounds: Vec<(f64, f64)> = (0..outer.dim())
        .map(|i| {
            let a = f64_in(next(), -1.0, 1.0);
            let b = f64_in(next(), -1.0, 1.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            (mids[i] + rads[i] * lo, mids[i] + rads[i] * hi)
        })
        .collect();
    IntervalBox::from_bounds(&bounds)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

impl Family for PortfolioFamily {
    fn id(&self) -> u8 {
        10
    }

    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn oracle(&self) -> &'static str {
        "RK4 trajectory sampling + rigorous-only verifier differential"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let problem = acc::reach_avoid_problem();
        let Some(tiers) = acc_tiers() else {
            return CaseOutcome::Skip;
        };

        // Gains straddling the stable band: some verify, some diverge on
        // the cheap tiers (escalation is the interesting path either way).
        let gains = vec![f64_in(next(), -0.5, 1.5), f64_in(next(), -3.5, 0.5)];
        let k = LinearController::new(2, 1, gains.clone());
        let cell = sub_cell(&mut next, &problem.x0);

        let pipes: Vec<_> = tiers
            .iter()
            .map(|tier| (tier.name(), tier.reach_from(&cell, &k)))
            .collect();
        if pipes.iter().all(|(_, r)| r.is_err()) {
            // Refusing to enclose is sound for every tier at once too.
            return CaseOutcome::Skip;
        }

        // --- 1. tier soundness against step-halved RK4 simulation -------
        let coarse_sim = Simulator::with_substeps(problem.dynamics.clone(), problem.delta, 8);
        let fine_sim = Simulator::with_substeps(problem.dynamics.clone(), problem.delta, 16);
        let mut starts = cell.corners();
        for _ in 0..2 {
            let t: Vec<f64> = (0..cell.dim()).map(|_| f64_in(next(), -1.0, 1.0)).collect();
            let mids = cell.center();
            let rads = cell.radii();
            starts.push((0..cell.dim()).map(|i| mids[i] + rads[i] * t[i]).collect());
        }
        for x0 in &starts {
            let coarse = coarse_sim.rollout(x0, &k, problem.horizon_steps);
            let fine = fine_sim.rollout(x0, &k, problem.horizon_steps);
            if fine.states.iter().any(|s| s.iter().any(|v| !v.is_finite())) {
                // A diverging rollout cannot falsify a (possibly refused)
                // enclosure without the oracle blaming itself.
                return CaseOutcome::Skip;
            }
            let sim_err = 2.0
                * coarse
                    .states
                    .iter()
                    .zip(&fine.states)
                    .map(|(a, b)| max_abs_diff(a, b))
                    .fold(0.0, f64::max)
                + 1e-9;
            for (name, pipe) in &pipes {
                let Ok(fp) = pipe else { continue };
                for step in fp.steps() {
                    // Each step's end box is the instantaneous enclosure at
                    // t1; map it onto the matching simulation boundary.
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let idx = (step.t1 / problem.delta).round() as usize;
                    let Some(state) = fine.states.get(idx) else {
                        continue;
                    };
                    for (i, &v) in state.iter().enumerate() {
                        let iv = step.end_box.interval(i);
                        if !iv.inflate(sim_err + super::oracle_tol(v)).contains_value(v) {
                            return CaseOutcome::Violation(format!(
                                "{name} tier end box dim {i} at t={:.3} [{:e}, {:e}] excludes \
                                 simulated state {v:e} (gains {gains:?}, x0 {x0:?}, \
                                 sim_err {sim_err:e})",
                                step.t1,
                                iv.lo(),
                                iv.hi()
                            ));
                        }
                    }
                }
            }
        }

        // --- 2. cheap claims never contradicted by the authority --------
        let metric = GeometricMetric::for_problem(&problem);
        let Some((rig_name, rig_pipe)) = pipes.last() else {
            return CaseOutcome::Skip;
        };
        if let Ok(rig_fp) = rig_pipe {
            let rig_d = metric.evaluate(rig_fp);
            for (name, pipe) in &pipes[..pipes.len() - 1] {
                let Ok(fp) = pipe else { continue };
                let d = metric.evaluate(fp);
                // Safe-with-clearance on the wide box implies the true set
                // (and so the exact one) is safe; the threshold keeps f64
                // rounding from manufacturing a claim.
                if d.d_unsafe > 1e-6 && rig_d.d_unsafe <= 0.0 {
                    return CaseOutcome::Violation(format!(
                        "{name} tier claims unsafe clearance {:e} but the rigorous \
                         {rig_name} tier reports d_unsafe {:e} (gains {gains:?}, \
                         cell {cell:?})",
                        d.d_unsafe, rig_d.d_unsafe
                    ));
                }
                // Cheap final box inside the goal implies the exact final
                // set is inside too — it cannot be strictly apart.
                if problem.goal_region.contains_box(&fp.final_step().end_box) && rig_d.d_goal < 0.0
                {
                    return CaseOutcome::Violation(format!(
                        "{name} tier's final box sits inside the goal but the rigorous \
                         {rig_name} tier reports d_goal {:e} (gains {gains:?}, \
                         cell {cell:?})",
                        rig_d.d_goal
                    ));
                }
            }
        }

        // --- 3. portfolio-accepted controllers survive rigorous-only -----
        // Sparse: a learning run is ~100x the cost of the checks above.
        if seed.is_multiple_of(32) {
            let budget = 20 + 5 * usize::from(size.min(8));
            let config = LearnConfig::builder()
                .metric(MetricKind::Geometric)
                .max_updates(budget)
                .seed(next())
                .portfolio(PortfolioMode::Surrogate { confirm_every: 5 })
                .build();
            let outcome = match Algorithm1::new(problem.clone(), config).learn_linear() {
                Ok(o) => o,
                Err(_) => return CaseOutcome::Skip,
            };
            let stats = outcome.portfolio.clone().unwrap_or_default();
            if stats.calls_by_tier.len() != 3 {
                return CaseOutcome::Violation(format!(
                    "surrogate learning must account for all 3 tiers, got {:?}",
                    stats.calls_by_tier
                ));
            }
            if outcome.verified.is_reach_avoid() {
                if *stats.calls_by_tier.last().unwrap_or(&0) == 0 {
                    return CaseOutcome::Violation(
                        "accepted a controller without ever consulting the rigorous tier"
                            .to_owned(),
                    );
                }
                let rigorous_only = match LinearReach::for_problem(&problem) {
                    Ok(v) => v,
                    Err(_) => return CaseOutcome::Skip,
                };
                match rigorous_only.reach(&outcome.controller) {
                    Ok(fp) => {
                        let d = metric.evaluate(&fp);
                        if !d.is_reach_avoid() {
                            return CaseOutcome::Violation(format!(
                                "portfolio accepted gains {:?} that the rigorous-only verifier \
                                 rejects (d_unsafe {:e}, d_goal {:e})",
                                outcome.controller.params(),
                                d.d_unsafe,
                                d.d_goal
                            ));
                        }
                    }
                    Err(e) => {
                        return CaseOutcome::Violation(format!(
                            "portfolio accepted gains {:?} the rigorous-only verifier cannot \
                             even enclose ({e})",
                            outcome.controller.params()
                        ));
                    }
                }
            }
        }
        CaseOutcome::Pass
    }
}
