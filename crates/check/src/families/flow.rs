//! Validated-integration oracle family.
//!
//! Random dissipative polynomial vector fields are integrated one
//! zero-order-hold step with the Picard-validated Taylor-model integrator,
//! then cross-examined against an independent classical RK4 simulation:
//! trajectories started inside the initial box (with inputs held anywhere
//! inside the input set) must stay inside the step sweep box for the whole
//! step and land inside the end enclosure at `t = δ`. The RK4 oracle runs
//! at two resolutions and a Richardson step-halving estimate bounds its own
//! discretization error, which inflates the containment test so only the
//! integrator can be blamed for a failure.

use super::{case_rng, CaseOutcome, Family};
use dwv_interval::arbitrary::{f64_in, narrow_interval};
use dwv_reach::arbitrary::{dissipative_rhs, initial_box};
use dwv_taylor::{unit_domain, OdeIntegrator, OdeRhs, TaylorModel, TmVector};

/// Picard-validated flowpipes vs high-resolution RK4 simulation.
pub struct FlowFamily;

/// Classic fixed-step RK4 over `[0, delta]` in `n` substeps, returning all
/// visited grid states (including the initial one).
fn rk4(rhs: &OdeRhs, x0: &[f64], u: &[f64], delta: f64, n: usize) -> Vec<Vec<f64>> {
    let h = delta / n as f64;
    let dim = x0.len();
    let mut x = x0.to_vec();
    let mut out = Vec::with_capacity(n + 1);
    out.push(x.clone());
    let f = |x: &[f64]| {
        let mut xu = x.to_vec();
        xu.extend_from_slice(u);
        rhs.eval(&xu)
    };
    for _ in 0..n {
        let k1 = f(&x);
        let x2: Vec<f64> = (0..dim).map(|i| x[i] + 0.5 * h * k1[i]).collect();
        let k2 = f(&x2);
        let x3: Vec<f64> = (0..dim).map(|i| x[i] + 0.5 * h * k2[i]).collect();
        let k3 = f(&x3);
        let x4: Vec<f64> = (0..dim).map(|i| x[i] + h * k3[i]).collect();
        let k4 = f(&x4);
        for i in 0..dim {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out.push(x.clone());
    }
    out
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

impl Family for FlowFamily {
    fn id(&self) -> u8 {
        4
    }

    fn name(&self) -> &'static str {
        "flow"
    }

    fn oracle(&self) -> &'static str {
        "step-halved RK4 simulation with Richardson error estimate"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let n_state = 1 + (next() as usize) % 3;
        let n_input = usize::from(size > 5 && next() % 2 == 0);
        let quadratic = size > 3;
        let rhs = dissipative_rhs(&mut next, n_state, n_input, quadratic);
        let x0_box = initial_box(&mut next, n_state, 0.3);
        let delta = f64_in(next(), 0.02, 0.08);
        let mut integ = OdeIntegrator::with_order(3 + u32::from(size) % 2);
        integ.bernstein_ranges = next() % 2 == 0;

        let u_iv = narrow_interval(&mut next, 0.5, 0.2);
        let x0 = TmVector::from_box(&x0_box);
        let u = if n_input == 1 {
            TmVector::new(vec![TaylorModel::from_interval(n_state, u_iv)])
        } else {
            TmVector::new(vec![])
        };
        let domain = unit_domain(n_state);
        let step = match integ.flow_step(&x0, &u, &rhs, delta, &domain) {
            Ok(s) => s,
            // Refusing to enclose is sound; only a wrong enclosure is a bug.
            Err(_) => return CaseOutcome::Skip,
        };

        let mids = x0_box.center();
        let rads = x0_box.radii();
        for _ in 0..3 {
            let t: Vec<f64> = (0..n_state).map(|_| f64_in(next(), -1.0, 1.0)).collect();
            let xi: Vec<f64> = (0..n_state).map(|i| mids[i] + rads[i] * t[i]).collect();
            let uv: Vec<f64> = if n_input == 1 {
                vec![f64_in(next(), u_iv.lo(), u_iv.hi())]
            } else {
                vec![]
            };
            let coarse = rk4(&rhs, &xi, &uv, delta, 64);
            let fine = rk4(&rhs, &xi, &uv, delta, 128);
            let Some(end_coarse) = coarse.last() else {
                return CaseOutcome::Skip;
            };
            let Some(end_fine) = fine.last() else {
                return CaseOutcome::Skip;
            };
            if end_fine.iter().any(|v| !v.is_finite()) {
                return CaseOutcome::Skip;
            }
            // Global error of the finer run is ~diff/15; inflate by 2*diff
            // for a ~30x margin over the estimate.
            let sim_err = 2.0 * max_abs_diff(end_coarse, end_fine) + 1e-9;

            for (i, &v) in end_fine.iter().enumerate() {
                let enc = step.end.component(i).eval(&t);
                if !enc
                    .inflate(sim_err + super::oracle_tol(v))
                    .contains_value(v)
                {
                    return CaseOutcome::Violation(format!(
                        "end enclosure dim {i} [{:e}, {:e}] excludes simulated state {v:e} \
                         (x0 {xi:?}, u {uv:?}, delta {delta:e}, sim_err {sim_err:e})",
                        enc.lo(),
                        enc.hi()
                    ));
                }
            }
            for state in &fine {
                for (i, &v) in state.iter().enumerate() {
                    let iv = step.step_box.interval(i);
                    if !iv.inflate(sim_err + super::oracle_tol(v)).contains_value(v) {
                        return CaseOutcome::Violation(format!(
                            "step sweep box dim {i} [{:e}, {:e}] excludes trajectory point \
                             {v:e} (x0 {xi:?}, u {uv:?}, delta {delta:e})",
                            iv.lo(),
                            iv.hi()
                        ));
                    }
                }
            }
        }
        CaseOutcome::Pass
    }
}
