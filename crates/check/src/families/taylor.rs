//! Taylor-model arithmetic oracle family.
//!
//! Random expression trees are evaluated twice: once in Taylor-model
//! arithmetic over the unit domain (with truncation and pruning sprinkled
//! in — both are function-preserving up to remainder transfer) and once
//! pointwise in plain `f64` on sampled domain points. The pointwise value
//! must lie inside the model's pointwise enclosure and inside both range
//! enclosures (interval and Bernstein), and the cached Bernstein range
//! must agree bitwise with the direct one.

use super::{case_rng, CaseOutcome, Family};
use crate::rng::CheckRng;
use dwv_interval::arbitrary::f64_in;
use dwv_poly::bernstein::RangeCache;
use dwv_taylor::{arbitrary, unit_domain, TaylorModel};

/// Taylor-model enclosures vs pointwise `f64` evaluation.
pub struct TaylorFamily;

const SAMPLES: usize = 3;

struct Node {
    tm: TaylorModel,
    /// Pointwise values of one member function (the remainder-center
    /// polynomial) at the sampled domain points.
    vals: [f64; SAMPLES],
    /// Magnitude bound used for floating-point slack.
    mag: f64,
    nodes: f64,
}

fn leaf(rng: &mut CheckRng, nvars: usize, pts: &[Vec<f64>], size: u8) -> Node {
    let mut next = || rng.next_u64();
    match next() % 4 {
        0 => {
            let i = (next() as usize) % nvars;
            let mut vals = [0.0; SAMPLES];
            for (v, t) in vals.iter_mut().zip(pts.iter()) {
                *v = t[i];
            }
            Node {
                tm: TaylorModel::var(nvars, i),
                vals,
                mag: 1.0,
                nodes: 1.0,
            }
        }
        1 => {
            let c = f64_in(next(), -2.0, 2.0);
            Node {
                tm: TaylorModel::constant(nvars, c),
                vals: [c; SAMPLES],
                mag: c.abs(),
                nodes: 1.0,
            }
        }
        _ => {
            let max_degree = 1 + u32::from(size) / 3;
            let tm = arbitrary::taylor_model(&mut next, nvars, max_degree.min(4), 5, 1.5, 0.1);
            let mut vals = [0.0; SAMPLES];
            for (v, t) in vals.iter_mut().zip(pts.iter()) {
                *v = tm.poly().eval(t);
            }
            // |t| <= 1 on the unit domain, so the coefficient L1 norm bounds
            // the polynomial part.
            let l1: f64 = tm.poly().iter().map(|(_, c)| c.abs()).sum();
            Node {
                tm,
                vals,
                mag: l1,
                nodes: 1.0,
            }
        }
    }
}

fn gen_node(rng: &mut CheckRng, nvars: usize, pts: &[Vec<f64>], depth: u32, size: u8) -> Node {
    if depth == 0 || rng.next_u64().is_multiple_of(3) {
        return leaf(rng, nvars, pts, size);
    }
    let order = 3 + u32::from(size) % 3;
    let domain = unit_domain(nvars);
    let op = rng.next_u64() % 8;
    let a = gen_node(rng, nvars, pts, depth - 1, size);
    match op {
        0 => {
            let b = gen_node(rng, nvars, pts, depth - 1, size);
            let mut vals = [0.0; SAMPLES];
            for (v, (&x, &y)) in vals.iter_mut().zip(a.vals.iter().zip(b.vals.iter())) {
                *v = x + y;
            }
            Node {
                tm: a.tm.add(&b.tm),
                vals,
                mag: a.mag + b.mag,
                nodes: a.nodes + b.nodes + 1.0,
            }
        }
        1 => {
            let b = gen_node(rng, nvars, pts, depth - 1, size);
            let mut vals = [0.0; SAMPLES];
            for (v, (&x, &y)) in vals.iter_mut().zip(a.vals.iter().zip(b.vals.iter())) {
                *v = x - y;
            }
            Node {
                tm: a.tm.sub(&b.tm),
                vals,
                mag: a.mag + b.mag,
                nodes: a.nodes + b.nodes + 1.0,
            }
        }
        2 => {
            let b = gen_node(rng, nvars, pts, depth - 1, size);
            let mut vals = [0.0; SAMPLES];
            for (v, (&x, &y)) in vals.iter_mut().zip(a.vals.iter().zip(b.vals.iter())) {
                *v = x * y;
            }
            Node {
                tm: a.tm.mul(&b.tm, order, &domain),
                vals,
                mag: a.mag * b.mag + 1.0,
                nodes: a.nodes + b.nodes + 1.0,
            }
        }
        3 => Node {
            tm: a.tm.neg(),
            vals: a.vals.map(|v| -v),
            mag: a.mag,
            nodes: a.nodes + 1.0,
        },
        4 => {
            let s = f64_in(rng.next_u64(), -2.0, 2.0);
            Node {
                tm: a.tm.scale(s),
                vals: a.vals.map(|v| s * v),
                mag: a.mag * s.abs(),
                nodes: a.nodes + 1.0,
            }
        }
        5 => {
            let e = 2 + (rng.next_u64() % 2) as u32;
            let mut vals = [0.0; SAMPLES];
            for (v, &x) in vals.iter_mut().zip(a.vals.iter()) {
                *v = x.powi(e as i32);
            }
            Node {
                tm: a.tm.powi(e, order, &domain),
                vals,
                mag: (a.mag + 1.0).powi(e as i32),
                nodes: a.nodes + 1.0,
            }
        }
        6 => Node {
            // Truncation moves high-order mass into the remainder: the
            // represented function set only grows.
            tm: a.tm.truncate(order.saturating_sub(1).max(1), &domain),
            vals: a.vals,
            mag: a.mag,
            nodes: a.nodes + 1.0,
        },
        _ => Node {
            tm: a.tm.prune(1e-6, &domain),
            vals: a.vals,
            mag: a.mag,
            nodes: a.nodes + 1.0,
        },
    }
}

impl Family for TaylorFamily {
    fn id(&self) -> u8 {
        3
    }

    fn name(&self) -> &'static str {
        "taylor"
    }

    fn oracle(&self) -> &'static str {
        "pointwise f64 evaluation of the remainder-center member function"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let nvars = 1 + (rng.next_u64() as usize) % 2;
        let pts: Vec<Vec<f64>> = (0..SAMPLES)
            .map(|_| {
                (0..nvars)
                    .map(|_| f64_in(rng.next_u64(), -1.0, 1.0))
                    .collect()
            })
            .collect();
        let depth = 1 + u32::from(size) / 3;
        let node = gen_node(&mut rng, nvars, &pts, depth.min(4), size);
        let domain = unit_domain(nvars);

        let range = node.tm.range(&domain);
        let bern = node.tm.range_bernstein(&domain);
        let mut cache = RangeCache::new();
        let cached = node.tm.range_bernstein_cached(&domain, &mut cache);
        if cached != bern {
            return CaseOutcome::Violation(format!(
                "cached Bernstein range [{:e}, {:e}] differs from direct [{:e}, {:e}]",
                cached.lo(),
                cached.hi(),
                bern.lo(),
                bern.hi()
            ));
        }

        let tol = f64::EPSILON * 32.0 * node.nodes * (node.mag + 1.0);
        for (t, &v) in pts.iter().zip(node.vals.iter()) {
            if v.is_nan() {
                return CaseOutcome::Skip;
            }
            let point = node.tm.eval(t);
            if !point.inflate(tol).contains_value(v) {
                return CaseOutcome::Violation(format!(
                    "pointwise enclosure [{:e}, {:e}] at {t:?} excludes member value {v:e}",
                    point.lo(),
                    point.hi()
                ));
            }
            if !range.inflate(tol).contains_value(v) {
                return CaseOutcome::Violation(format!(
                    "interval range [{:e}, {:e}] excludes member value {v:e} at {t:?}",
                    range.lo(),
                    range.hi()
                ));
            }
            if !bern.inflate(tol).contains_value(v) {
                return CaseOutcome::Violation(format!(
                    "Bernstein range [{:e}, {:e}] excludes member value {v:e} at {t:?}",
                    bern.lo(),
                    bern.hi()
                ));
            }
        }
        CaseOutcome::Pass
    }
}
