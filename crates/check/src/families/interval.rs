//! Interval-arithmetic oracle family.
//!
//! Generates random interval expression trees, evaluates them once in
//! interval arithmetic and once pointwise in plain `f64` on points sampled
//! from the leaf intervals, and demands the point result lie inside the
//! interval result — the fundamental inclusion property outward rounding
//! must guarantee. Alongside the expression check, random draws exercise
//! the box-level set operations: partition coverage (the PR4 seam bug
//! class), intersection soundness in both directions, and hull inclusion.

use super::{case_rng, CaseOutcome, Family};
use crate::rng::CheckRng;
use dwv_interval::arbitrary::{f64_in, interval, interval_box, point_in_box};
use dwv_interval::Interval;

/// Interval arithmetic vs pointwise `f64` evaluation.
pub struct IntervalFamily;

const SAMPLES: usize = 4;

enum Expr {
    Leaf(Interval),
    Unary(u8, Box<Expr>),
    Binary(u8, Box<Expr>, Box<Expr>),
}

const N_UNARY: u64 = 10;
const N_BINARY: u64 = 5;

fn gen_expr(rng: &mut CheckRng, depth: u32, mag: f64) -> Expr {
    let leaf = depth == 0 || rng.next_u64().is_multiple_of(3);
    if leaf {
        let mut next = || rng.next_u64();
        let iv = interval(&mut next, mag);
        // Degenerate leaves stress the endpoint-rounding paths.
        return match next() % 8 {
            0 => Expr::Leaf(Interval::point(iv.lo())),
            1 => Expr::Leaf(iv.hull(&Interval::point(0.0))),
            _ => Expr::Leaf(iv),
        };
    }
    if rng.next_u64().is_multiple_of(2) {
        let op = (rng.next_u64() % N_UNARY) as u8;
        Expr::Unary(op, Box::new(gen_expr(rng, depth - 1, mag)))
    } else {
        let op = (rng.next_u64() % N_BINARY) as u8;
        let a = Box::new(gen_expr(rng, depth - 1, mag));
        let b = Box::new(gen_expr(rng, depth - 1, mag));
        Expr::Binary(op, a, b)
    }
}

/// Evaluates the tree to an interval plus `SAMPLES` pointwise values whose
/// leaves are sampled from the leaf intervals.
fn eval(e: &Expr, rng: &mut CheckRng) -> (Interval, [f64; SAMPLES]) {
    match e {
        Expr::Leaf(iv) => {
            let mut pts = [0.0; SAMPLES];
            for p in &mut pts {
                *p = f64_in(rng.next_u64(), iv.lo(), iv.hi());
            }
            (*iv, pts)
        }
        Expr::Unary(op, a) => {
            let (ia, pa) = eval(a, rng);
            let iv = match op {
                0 => -ia,
                1 => ia.abs(),
                2 => ia.sqr(),
                3 => ia.powi(3),
                4 => ia.exp(),
                5 => ia.tanh(),
                6 => ia.sigmoid(),
                7 => ia.sin(),
                8 => ia.atan(),
                _ => ia.abs().sqrt(),
            };
            let mut pts = [0.0; SAMPLES];
            for (p, &v) in pts.iter_mut().zip(pa.iter()) {
                *p = match op {
                    0 => -v,
                    1 => v.abs(),
                    2 => v * v,
                    3 => v * v * v,
                    4 => v.exp(),
                    5 => v.tanh(),
                    6 => 1.0 / (1.0 + (-v).exp()),
                    7 => v.sin(),
                    8 => v.atan(),
                    _ => v.abs().sqrt(),
                };
            }
            (iv, pts)
        }
        Expr::Binary(op, a, b) => {
            let (ia, pa) = eval(a, rng);
            let (ib, pb) = eval(b, rng);
            let iv = match op {
                0 => ia + ib,
                1 => ia - ib,
                2 => ia * ib,
                3 => ia / ib,
                _ => ia.hull(&ib),
            };
            let sel = rng.next_u64();
            let mut pts = [0.0; SAMPLES];
            for (i, p) in pts.iter_mut().enumerate() {
                *p = match op {
                    0 => pa[i] + pb[i],
                    1 => pa[i] - pb[i],
                    2 => pa[i] * pb[i],
                    3 => pa[i] / pb[i],
                    // A hull contains the values of both operands; pick one
                    // per sample so both branches get exercised.
                    _ => {
                        if sel >> i & 1 == 0 {
                            pa[i]
                        } else {
                            pb[i]
                        }
                    }
                };
            }
            (iv, pts)
        }
    }
}

fn check_expr(rng: &mut CheckRng, size: u8) -> CaseOutcome {
    let depth = 1 + u32::from(size) / 2;
    let mag = 1.0 + f64::from(size);
    let e = gen_expr(rng, depth.min(6), mag);
    let (iv, pts) = eval(&e, rng);
    let mut checked = false;
    for &v in &pts {
        if v.is_nan() {
            continue;
        }
        checked = true;
        if !iv.contains_value(v) {
            return CaseOutcome::Violation(format!(
                "expression enclosure [{:e}, {:e}] excludes pointwise value {v:e}",
                iv.lo(),
                iv.hi()
            ));
        }
    }
    if checked {
        CaseOutcome::Pass
    } else {
        CaseOutcome::Skip
    }
}

fn check_boxes(rng: &mut CheckRng, size: u8) -> CaseOutcome {
    let mut next = || rng.next_u64();
    let dim = 1 + (next() as usize) % 3;
    let mag = 1.0 + f64::from(size);
    let a = interval_box(&mut next, dim, mag);
    match next() % 3 {
        0 => {
            // Partition coverage: every point of the box lies in some cell.
            let parts: Vec<usize> = (0..dim).map(|_| 1 + (next() as usize) % 3).collect();
            let p = point_in_box(&mut next, &a);
            let cells = a.partition(&parts);
            if cells.iter().any(|c| c.contains_point(&p)) {
                CaseOutcome::Pass
            } else {
                CaseOutcome::Violation(format!(
                    "partition {parts:?} of box misses member point {p:?}"
                ))
            }
        }
        1 => {
            // Intersection soundness, both directions.
            let b = interval_box(&mut next, dim, mag);
            let p = point_in_box(&mut next, &a);
            match a.intersection(&b) {
                Some(c) => {
                    if b.contains_point(&p) && !c.contains_point(&p) {
                        return CaseOutcome::Violation(format!(
                            "point {p:?} in both boxes but outside their intersection"
                        ));
                    }
                    let q = point_in_box(&mut next, &c);
                    if !a.contains_point(&q) || !b.contains_point(&q) {
                        return CaseOutcome::Violation(format!(
                            "intersection point {q:?} escapes an operand box"
                        ));
                    }
                    CaseOutcome::Pass
                }
                None => {
                    if b.contains_point(&p) {
                        CaseOutcome::Violation(format!(
                            "boxes report empty intersection yet share point {p:?}"
                        ))
                    } else {
                        CaseOutcome::Pass
                    }
                }
            }
        }
        _ => {
            // Hull inclusion: members of either operand are members of the hull.
            let b = interval_box(&mut next, dim, mag);
            let h = a.hull(&b);
            let pa = point_in_box(&mut next, &a);
            let pb = point_in_box(&mut next, &b);
            if h.contains_point(&pa) && h.contains_point(&pb) {
                CaseOutcome::Pass
            } else {
                CaseOutcome::Violation(format!("hull excludes operand member ({pa:?} or {pb:?})"))
            }
        }
    }
}

impl Family for IntervalFamily {
    fn id(&self) -> u8 {
        1
    }

    fn name(&self) -> &'static str {
        "interval"
    }

    fn oracle(&self) -> &'static str {
        "pointwise f64 evaluation of random expression trees; box set-op membership"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        if rng.next_u64().is_multiple_of(4) {
            check_boxes(&mut rng, size)
        } else {
            check_expr(&mut rng, size)
        }
    }
}
