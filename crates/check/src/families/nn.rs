//! Neural-network abstraction oracle family.
//!
//! Random small controllers are abstracted over random narrow state boxes
//! by both abstraction back-ends (Taylor with Lagrange remainder, Bernstein
//! with sampled remainder plus Lipschitz inflation); the resulting output
//! Taylor models must enclose the concrete `Network::forward` value at
//! sampled points of the box — the enclosure contract every verified
//! reachability step rests on.

use super::{case_rng, CaseOutcome, Family};
use dwv_dynamics::NnController;
use dwv_interval::arbitrary::f64_in;
use dwv_interval::IntervalBox;
use dwv_nn::arbitrary::network;
use dwv_reach::{BernsteinAbstraction, NnAbstraction, TaylorAbstraction};
use dwv_taylor::{unit_domain, TmVector};

/// NN output-set abstraction vs concrete forward evaluation.
pub struct NnFamily;

impl Family for NnFamily {
    fn id(&self) -> u8 {
        7
    }

    fn name(&self) -> &'static str {
        "nn"
    }

    fn oracle(&self) -> &'static str {
        "concrete Network::forward at sampled points of the state box"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();
        let in_dim = 1 + (next() as usize) % 2;
        let out_dim = 1 + (next() as usize) % 2;
        let max_width = 2 + usize::from(size) % 3;
        let net = network(&mut next, in_dim, out_dim, 2, max_width);
        let controller = NnController::new(net);

        let center: Vec<f64> = (0..in_dim).map(|_| f64_in(next(), -0.5, 0.5)).collect();
        let radius: Vec<f64> = (0..in_dim)
            .map(|_| {
                0.05 + 0.25 * {
                    let w = next();
                    dwv_interval::arbitrary::unit_f64(w)
                }
            })
            .collect();
        let state_box = IntervalBox::from_center_radius(&center, &radius);
        let state = TmVector::from_box(&state_box);
        let domain = unit_domain(in_dim);

        let use_taylor = next() % 2 == 0;
        let out = if use_taylor {
            let order = 2 + (next() % 2) as u32;
            TaylorAbstraction::with_order(order).abstract_network(&controller, &state, &domain)
        } else {
            let degree = 2 + (next() % 2) as u32;
            BernsteinAbstraction::with_degree(degree).abstract_network(&controller, &state, &domain)
        };
        let out = match out {
            Ok(o) => o,
            // Refusing to abstract is sound.
            Err(_) => return CaseOutcome::Skip,
        };

        let mids = state_box.center();
        let rads = state_box.radii();
        for _ in 0..5 {
            let t: Vec<f64> = (0..in_dim).map(|_| f64_in(next(), -1.0, 1.0)).collect();
            let x: Vec<f64> = (0..in_dim).map(|i| mids[i] + rads[i] * t[i]).collect();
            let y = controller.network().forward(&x);
            for (j, &yj) in y.iter().enumerate() {
                if yj.is_nan() {
                    return CaseOutcome::Skip;
                }
                let enc = out.component(j).eval(&t);
                if !enc.inflate(super::oracle_tol(yj)).contains_value(yj) {
                    let kind = if use_taylor { "Taylor" } else { "Bernstein" };
                    return CaseOutcome::Violation(format!(
                        "{kind} abstraction output {j} [{:e}, {:e}] excludes forward value \
                         {yj:e} at x = {x:?} (box {state_box:?})",
                        enc.lo(),
                        enc.hi()
                    ));
                }
            }
        }
        CaseOutcome::Pass
    }
}
