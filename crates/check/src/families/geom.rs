//! Geometric set-operation oracle family.
//!
//! Zonotopes and convex polygons are checked against dense point-membership
//! sampling: a concrete member point (built from explicit generator
//! coefficients or a convex combination of vertices) must survive every set
//! operation that claims to over-approximate or preserve the set — support
//! functions, bounding boxes, Minkowski sums, affine images, order
//! reduction, polygon conversion, clipping, and intersection.

use super::{case_rng, CaseOutcome, Family};
use crate::rng::CheckRng;
use dwv_geom::arbitrary::{
    affine_map, convex_polygon, direction, point_in_polygon, zonotope, zonotope_coeffs,
    zonotope_point,
};
use dwv_geom::Vec2;

/// Zonotope/polygon operations vs explicit member-point sampling.
pub struct GeomFamily;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

fn scale_of(z: &dwv_geom::Zonotope) -> f64 {
    let c: f64 = z.center().iter().map(|v| v.abs()).sum();
    let g: f64 = z
        .generators()
        .iter()
        .map(|g| g.iter().map(|v| v.abs()).sum::<f64>())
        .sum();
    c + g + 1.0
}

fn check_zonotope(rng: &mut CheckRng, size: u8) -> CaseOutcome {
    let mut next = || rng.next_u64();
    let dim = 2 + (next() as usize) % 2;
    let n_gens = 1 + (next() as usize) % (2 + usize::from(size) / 2).min(6);
    let mag = 1.0 + f64::from(size) / 2.0;
    let z = zonotope(&mut next, dim, n_gens, mag);
    let alphas = zonotope_coeffs(&mut next, n_gens);
    let x = zonotope_point(&z, &alphas);
    let tol = super::oracle_tol(scale_of(&z));

    // Support function dominates every member point in every direction.
    for _ in 0..3 {
        let d = direction(&mut next, dim);
        let dx = dot(&d, &x);
        let s = z.support(&d);
        if s < dx - tol {
            return CaseOutcome::Violation(format!(
                "support h(Z, {d:?}) = {s:e} below member projection {dx:e}"
            ));
        }
    }

    // Bounding box contains the member point.
    if !z.bounding_box().inflate(tol).contains_point(&x) {
        return CaseOutcome::Violation(format!("bounding box excludes member point {x:?}"));
    }

    // Minkowski sum contains pointwise sums (same coefficient trick on the
    // second operand).
    let z2 = zonotope(&mut next, dim, n_gens, mag);
    let alphas2 = zonotope_coeffs(&mut next, n_gens);
    let y = zonotope_point(&z2, &alphas2);
    let sum = z.minkowski_sum(&z2);
    let xy: Vec<f64> = x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect();
    let sum_tol = super::oracle_tol(scale_of(&sum));
    for _ in 0..2 {
        let d = direction(&mut next, dim);
        if sum.support(&d) < dot(&d, &xy) - sum_tol {
            return CaseOutcome::Violation(format!(
                "Minkowski sum support misses pointwise sum {xy:?} along {d:?}"
            ));
        }
    }

    // Affine image contains the mapped member point.
    let (m, b) = affine_map(&mut next, dim, dim, 1.5);
    let img = z.affine_image(&m, &b);
    let mx: Vec<f64> = m
        .iter()
        .zip(b.iter())
        .map(|(row, &bi)| dot(row, &x) + bi)
        .collect();
    let img_tol = super::oracle_tol(scale_of(&img));
    for _ in 0..2 {
        let d = direction(&mut next, dim);
        if img.support(&d) < dot(&d, &mx) - img_tol {
            return CaseOutcome::Violation(format!(
                "affine image support misses mapped point {mx:?} along {d:?}"
            ));
        }
    }

    // Order reduction only ever grows the set.
    let reduced = z.reduce_order(1.5);
    for _ in 0..2 {
        let d = direction(&mut next, dim);
        if reduced.support(&d) < dot(&d, &x) - tol {
            return CaseOutcome::Violation(format!(
                "order reduction shrank the set: member {x:?} escapes along {d:?}"
            ));
        }
    }

    // 2-D zonotopes convert to polygons that keep every member point and
    // agree with the zonotope's support function.
    if dim == 2 {
        if let Some(poly) = z.to_polygon() {
            let p = Vec2::new(x[0], x[1]);
            let d = poly.distance_to_point(p);
            if d > tol {
                return CaseOutcome::Violation(format!(
                    "zonotope polygon excludes member point {x:?} (distance {d:e})"
                ));
            }
            for _ in 0..2 {
                let dvec = direction(&mut next, 2);
                let sv = poly.support(Vec2::new(dvec[0], dvec[1]));
                let hp = sv.x * dvec[0] + sv.y * dvec[1];
                let hz = z.support(&dvec);
                if (hp - hz).abs() > tol {
                    return CaseOutcome::Violation(format!(
                        "polygon support {hp:e} differs from zonotope support {hz:e} along {dvec:?}"
                    ));
                }
            }
        }
    }
    CaseOutcome::Pass
}

fn check_polygon(rng: &mut CheckRng, size: u8) -> CaseOutcome {
    let mut next = || rng.next_u64();
    let mag = 1.0 + f64::from(size) / 2.0;
    let n_pts = 3 + (next() as usize) % 6;
    let (Some(a), Some(b)) = (
        convex_polygon(&mut next, n_pts, mag),
        convex_polygon(&mut next, n_pts, mag),
    ) else {
        return CaseOutcome::Skip;
    };
    let tol = super::oracle_tol(mag * 4.0);

    let pa = point_in_polygon(&mut next, &a);
    // "Strictly interior by a margin": every inward edge slack clears the
    // clipper's own epsilon, so degenerate touching cannot explain a miss.
    let strict = 1e-6 * mag;
    let interior = |poly: &dwv_geom::ConvexPolygon, p: Vec2| {
        poly.edge_halfplanes()
            .iter()
            .all(|hp| hp.signed_slack(p) > strict)
    };
    // Intersection: common members survive; intersection members belong to
    // both operands.
    match a.intersect(&b) {
        Some(c) => {
            if interior(&a, pa) && interior(&b, pa) && c.distance_to_point(pa) > tol {
                return CaseOutcome::Violation(format!(
                    "point {pa:?} interior to both polygons escapes their intersection"
                ));
            }
            let pc = point_in_polygon(&mut next, &c);
            if a.distance_to_point(pc) > tol || b.distance_to_point(pc) > tol {
                return CaseOutcome::Violation(format!(
                    "intersection point {pc:?} escapes an operand polygon"
                ));
            }
        }
        None => {
            if interior(&a, pa) && interior(&b, pa) {
                return CaseOutcome::Violation(format!(
                    "polygons report empty intersection yet share interior point {pa:?}"
                ));
            }
        }
    }

    // Hull contains members of both operands.
    let h = a.hull_with(&b);
    let pb = point_in_polygon(&mut next, &b);
    if h.distance_to_point(pa) > tol || h.distance_to_point(pb) > tol {
        return CaseOutcome::Violation(format!(
            "convex hull excludes an operand member ({pa:?} or {pb:?})"
        ));
    }

    // Bounding box contains members.
    if !a.bounding_box().inflate(tol).contains_point(&[pa.x, pa.y]) {
        return CaseOutcome::Violation(format!("polygon bounding box excludes member {pa:?}"));
    }
    CaseOutcome::Pass
}

impl Family for GeomFamily {
    fn id(&self) -> u8 {
        5
    }

    fn name(&self) -> &'static str {
        "geom"
    }

    fn oracle(&self) -> &'static str {
        "explicit member-point construction and support-projection comparison"
    }

    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        if rng.next_u64().is_multiple_of(2) {
            check_zonotope(&mut rng, size)
        } else {
            check_polygon(&mut rng, size)
        }
    }
}
