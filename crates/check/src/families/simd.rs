//! SIMD-kernel equivalence family.
//!
//! The chunked coefficient kernels in `dwv_poly::kernels` document exact
//! bit-level contracts: elementwise operations are width-independent, and
//! the reductions follow a fixed 4-lane combine order reproduced verbatim
//! by the opt-in AVX2 path. This family re-derives every contract from an
//! independently written scalar oracle and checks the *dispatched*
//! implementation against it — with the `simd` feature on, that pits the
//! vector path against the reference; with it off, it pins the scalar
//! chunked loops. It also covers the two structural bit-identity promises
//! built on the kernels: the degree-filtered staging of truncated products
//! and the deterministic `WorkerPool` reduction (parallel ≡ serial at any
//! thread count).

use super::{case_rng, CaseOutcome, Family};
use dwv_core::WorkerPool;
use dwv_interval::arbitrary::f64_in;
use dwv_interval::Interval;
use dwv_poly::kernels::{self, LANES};
use dwv_poly::{arbitrary, PolyWorkspace, Polynomial};

/// Vectorized kernels vs independently written scalar reference, bit for bit.
pub struct SimdFamily;

/// The documented dot contract, written without reusing the kernel body:
/// independent lane partials, `(0+2)+(1+3)` combine, sequential tail.
fn dot_oracle(a: &[f64], b: &[f64]) -> f64 {
    let chunks = a.len() / LANES;
    let mut lane = [0.0f64; LANES];
    for i in 0..chunks {
        for j in 0..LANES {
            lane[j] += a[i * LANES + j] * b[i * LANES + j];
        }
    }
    let mut acc = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for k in chunks * LANES..a.len() {
        acc += a[k] * b[k];
    }
    acc
}

/// Same contract for the absolute-value reduction.
fn abs_sum_oracle(xs: &[f64]) -> f64 {
    let chunks = xs.len() / LANES;
    let mut lane = [0.0f64; LANES];
    for i in 0..chunks {
        for j in 0..LANES {
            lane[j] += xs[i * LANES + j].abs();
        }
    }
    let mut acc = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for x in &xs[chunks * LANES..] {
        acc += x.abs();
    }
    acc
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

impl Family for SimdFamily {
    fn id(&self) -> u8 {
        9
    }

    fn name(&self) -> &'static str {
        "simd"
    }

    fn oracle(&self) -> &'static str {
        "independent scalar re-derivation of the chunked-kernel bit contracts"
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, seed: u64, size: u8) -> CaseOutcome {
        let mut rng = case_rng(self.id(), seed);
        let mut next = || rng.next_u64();

        // Lengths straddle the lane boundary on purpose: the tail handling
        // (`len % 4`) is where a vector/scalar split would first diverge.
        let n = 1 + (next() as usize) % (4 + 8 * usize::from(size));
        let a: Vec<f64> = (0..n).map(|_| f64_in(next(), -8.0, 8.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| f64_in(next(), -8.0, 8.0)).collect();
        let s = f64_in(next(), -4.0, 4.0);

        // Reductions: dispatched kernel vs the documented combine order.
        let dot = kernels::dot_chunked(&a, &b);
        if dot.to_bits() != dot_oracle(&a, &b).to_bits() {
            return CaseOutcome::Violation(format!(
                "dot_chunked({n}) = {dot:e} differs bitwise from the lane-order oracle"
            ));
        }
        let asum = kernels::abs_sum_chunked(&a);
        if asum.to_bits() != abs_sum_oracle(&a).to_bits() {
            return CaseOutcome::Violation(format!(
                "abs_sum_chunked({n}) = {asum:e} differs bitwise from the lane-order oracle"
            ));
        }

        // Elementwise kernels: every lane width must produce the scalar bits.
        let expect_scale: Vec<u64> = a.iter().map(|&x| (x * s).to_bits()).collect();
        let mut in_place = a.clone();
        kernels::scale_slice(&mut in_place, s);
        let mut into = Vec::new();
        kernels::scale_into(&mut into, &a, s);
        let mut into_slice = vec![0.0; n];
        kernels::scale_into_slice(&mut into_slice, &a, s);
        if bits(&in_place) != expect_scale
            || bits(&into) != expect_scale
            || bits(&into_slice) != expect_scale
        {
            return CaseOutcome::Violation(format!(
                "a scale kernel ({n} elements, s = {s:e}) diverged from elementwise bits"
            ));
        }
        let expect_axpy: Vec<u64> = b
            .iter()
            .zip(&a)
            .map(|(&d, &x)| (d + s * x).to_bits())
            .collect();
        let mut dst = b.clone();
        kernels::axpy(&mut dst, s, &a);
        if bits(&dst) != expect_axpy {
            return CaseOutcome::Violation(format!(
                "axpy({n}) diverged from the two-rounding elementwise bits"
            ));
        }

        // Degree-filtered staging vs offset+scale+retain: two kernel
        // compositions that must emit the same (key, coeff) stream.
        let bkeys: Vec<u64> = (0..n)
            .map(|_| {
                let e0 = next() % 6;
                let e1 = next() % 6;
                (e0 << 56) | (e1 << 48)
            })
            .collect();
        let bdeg: Vec<u32> = bkeys
            .iter()
            .map(|k| k.to_be_bytes().iter().map(|&d| u32::from(d)).sum())
            .collect();
        let rem = (next() % 11) as u32;
        let ka = (next() % 4) << 56;
        let mut fkeys = Vec::new();
        let mut fcoeffs = Vec::new();
        kernels::stage_row_filtered(&mut fkeys, &mut fcoeffs, ka, s, &bkeys, &a, &bdeg, rem);
        let mut okeys = Vec::new();
        kernels::offset_keys_into(&mut okeys, &bkeys, ka);
        let mut ocoeffs = Vec::new();
        kernels::scale_into(&mut ocoeffs, &a, s);
        let survivors: Vec<(u64, u64)> = okeys
            .iter()
            .zip(&ocoeffs)
            .zip(&bdeg)
            .filter(|&(_, &d)| d <= rem)
            .map(|((&k, &c), _)| (k, c.to_bits()))
            .collect();
        let filtered: Vec<(u64, u64)> = fkeys
            .iter()
            .zip(&fcoeffs)
            .map(|(&k, &c)| (k, c.to_bits()))
            .collect();
        if filtered != survivors {
            return CaseOutcome::Violation(format!(
                "stage_row_filtered kept {} pairs; offset+scale+retain kept {}",
                filtered.len(),
                survivors.len()
            ));
        }

        // Polynomial layer: the dropping product (filtered staging inside)
        // must keep the exact coefficient stream of the accounting product,
        // and the packed substitution must match monomial accumulation.
        let nvars = 1 + (next() as usize) % 2;
        let max_degree = 2 + u32::from(size % 4);
        let p = arbitrary::polynomial(&mut next, nvars, max_degree, 6, 2.0);
        let q = arbitrary::polynomial(&mut next, nvars, max_degree, 6, 2.0);
        let dom = vec![Interval::new(-1.0, 1.0); nvars];
        let d = (next() % u64::from(max_degree + 2)) as u32;
        let mut ws = PolyWorkspace::new();
        let mut kept = Polynomial::zero(nvars);
        p.mul_truncated_into(&q, d, &dom, &mut kept, &mut ws);
        let mut dropped = Polynomial::zero(nvars);
        p.mul_dropping_into(&q, d, &mut dropped, &mut ws);
        if !kept.bits_eq(&dropped) {
            return CaseOutcome::Violation(format!(
                "mul_dropping_into(degree {d}) diverged bitwise from mul_truncated_into"
            ));
        }
        let var = (next() as usize) % nvars;
        let value = match next() % 3 {
            0 => 0.0,
            1 => 1.0,
            _ => f64_in(next(), -2.0, 2.0),
        };
        let mut reference = Polynomial::zero(nvars);
        for (exps, c) in p.iter() {
            let mut e = exps.to_vec();
            let k = e[var];
            e[var] = 0;
            let coeff = if k == 0 || value == 1.0 {
                c
            } else {
                c * value.powi(k as i32)
            };
            reference += Polynomial::monomial(nvars, e, coeff);
        }
        if !p.substitute_value(var, value).bits_eq(&reference) {
            return CaseOutcome::Violation(format!(
                "substitute_value(x{var} := {value:e}) diverged bitwise from monomial accumulation"
            ));
        }

        // WorkerPool: the guided-chunk schedule must reduce to serial bits.
        let threads = [2, 3, 4, 8][(next() as usize) % 4];
        let work = |&x: &f64| {
            let y = x.mul_add(1.25, -0.5);
            y * y + (s - y)
        };
        let serial: Vec<f64> = a.iter().map(work).collect();
        let parallel = WorkerPool::new(threads).force_parallel().map(&a, work);
        if bits(&parallel) != bits(&serial) {
            return CaseOutcome::Violation(format!(
                "WorkerPool({threads}).map over {n} items diverged bitwise from serial"
            ));
        }

        CaseOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_pass_and_are_deterministic() {
        for seed in 0..64 {
            let o1 = SimdFamily.check(seed, (seed % 16) as u8);
            let o2 = SimdFamily.check(seed, (seed % 16) as u8);
            assert_eq!(o1, o2, "seed {seed} not deterministic");
            assert_eq!(o1, CaseOutcome::Pass, "seed {seed}");
        }
    }

    #[test]
    fn oracles_match_simple_closed_forms() {
        // 5 elements: one full chunk + tail of 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0; 5];
        assert_eq!(dot_oracle(&a, &b), ((1.0 + 3.0) + (2.0 + 4.0)) + 5.0);
        assert_eq!(abs_sum_oracle(&[-1.0, 2.0, -3.0]), 1.0 + 2.0 + 3.0);
    }
}
