//! `dwv-check` — deterministic soundness falsification for the verified
//! stack.
//!
//! The design-while-verify loop leans on a tower of *sound
//! over-approximation* claims: outward-rounded interval arithmetic,
//! Bernstein range enclosures, Taylor-model remainder bookkeeping,
//! Picard-validated flowpipes, zonotope/polygon set operations, optimal
//! transport, and the geometric safety verdict. Unit tests pin known
//! examples; this crate instead *hunts* for counterexamples: it generates
//! random instances from a seeded entropy stream, checks each against an
//! independent brute-force oracle (pointwise evaluation, exhaustive
//! enumeration, step-halved RK4 simulation, dense membership sampling),
//! shrinks any disagreement to a minimal reproducer, and emits a replay
//! token that reproduces the finding bit-identically on any machine.
//!
//! # Architecture
//!
//! * [`rng`] — SplitMix64 entropy; cases are pure functions of their seed.
//! * [`case`] — the packed `family | size | seed` case id and replay token.
//! * [`families`] — the oracle families (one per subsystem under test).
//! * [`shrink`] — greedy size/seed minimization of findings.
//! * [`corpus`] — the committed regression-seed corpus.
//! * [`report`] — deterministic, timestamp-free JSON reports.
//!
//! # Example
//!
//! ```
//! use dwv_check::{run, Config};
//!
//! let report = run(&Config {
//!     budget: 64,
//!     ..Config::default()
//! })
//! .expect("default families exist");
//! assert_eq!(report.total_cases(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod families;
pub mod report;
pub mod rng;
pub mod shrink;

use case::CaseId;
use families::{CaseOutcome, Family};
use report::{FamilyReport, Report, ViolationReport};

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run seed: every case seed derives from it.
    pub seed: u64,
    /// Number of cases to generate across all selected families.
    pub budget: u64,
    /// Restrict the run to one family (by name).
    pub family: Option<String>,
    /// Worker threads (1 = serial; results are identical either way).
    pub threads: usize,
    /// Ceiling of the size ramp (sizes grow 1..=`max_size` over the run).
    pub max_size: u8,
    /// Whether to shrink findings to minimal reproducers.
    pub shrink: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0x00D3_C0DE,
            budget: 1200,
            family: None,
            threads: 1,
            max_size: 8,
            shrink: true,
        }
    }
}

/// Runs the harness and collects a [`Report`].
///
/// # Errors
///
/// Returns `Err` with a message when `config.family` names no registered
/// family.
pub fn run(config: &Config) -> Result<Report, String> {
    let all = families::registry();
    let fams: Vec<Box<dyn Family>> = match &config.family {
        Some(name) => {
            let found: Vec<Box<dyn Family>> =
                all.into_iter().filter(|f| f.name() == *name).collect();
            if found.is_empty() {
                return Err(format!("unknown family {name:?} (try --list-families)"));
            }
            found
        }
        None => all,
    };

    let max_size = config.max_size.max(1);
    let tasks: Vec<(usize, CaseId)> = (0..config.budget)
        .map(|i| {
            let fam_idx = (i % fams.len() as u64) as usize;
            let ramp = 1 + (i * u64::from(max_size - 1)) / config.budget.max(1);
            let size = u8::try_from(ramp.min(u64::from(max_size))).unwrap_or(max_size);
            let seed = rng::derive_case_seed(config.seed, i);
            (fam_idx, CaseId::new(fams[fam_idx].id(), size, seed))
        })
        .collect();

    let pool = dwv_core::parallel::WorkerPool::new(config.threads);
    let outcomes: Vec<CaseOutcome> = pool.map(&tasks, |(fam_idx, id)| {
        fams[*fam_idx].check(id.seed, id.size)
    });

    let mut reports: Vec<FamilyReport> = fams
        .iter()
        .map(|f| FamilyReport {
            name: f.name().to_owned(),
            cases: 0,
            passes: 0,
            skips: 0,
            violations: Vec::new(),
        })
        .collect();

    for ((fam_idx, id), outcome) in tasks.iter().zip(outcomes) {
        let fr = &mut reports[*fam_idx];
        fr.cases += 1;
        match outcome {
            CaseOutcome::Pass => fr.passes += 1,
            CaseOutcome::Skip => fr.skips += 1,
            CaseOutcome::Violation(msg) => {
                let (final_id, final_msg, steps) = if config.shrink {
                    let r = shrink::shrink(fams[*fam_idx].as_ref(), *id, msg);
                    (r.id, r.message, r.steps)
                } else {
                    (*id, msg, 0)
                };
                fr.violations.push(ViolationReport {
                    family: fams[*fam_idx].name().to_owned(),
                    replay: final_id.hex(),
                    original: id.hex(),
                    size: final_id.size,
                    message: final_msg,
                    shrink_steps: steps,
                });
            }
        }
    }

    let report = Report {
        seed: config.seed,
        budget: config.budget,
        max_size,
        families: reports,
    };
    if dwv_obs::enabled() {
        dwv_obs::counter("check.cases").add(report.total_cases());
        dwv_obs::counter("check.skips").add(report.total_skips());
        dwv_obs::counter("check.violations").add(report.total_violations() as u64);
    }
    Ok(report)
}

/// Replays one packed case, returning the family name and outcome.
///
/// # Errors
///
/// Returns `Err` when the id's family byte is not registered.
pub fn replay(id: CaseId) -> Result<(&'static str, CaseOutcome), String> {
    let fam = families::by_id(id.family)
        .ok_or_else(|| format!("unknown family id {} in replay token", id.family))?;
    let outcome = fam.check(id.seed, id.size);
    Ok((fam.name(), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_respects_budget_and_family_filter() {
        let r = run(&Config {
            budget: 24,
            family: Some("interval".to_owned()),
            max_size: 4,
            ..Config::default()
        })
        .expect("interval family exists");
        assert_eq!(r.total_cases(), 24);
        assert_eq!(r.families.len(), 1);
        assert_eq!(r.families[0].name, "interval");
    }

    #[test]
    fn unknown_family_is_an_error() {
        let err = run(&Config {
            family: Some("nope".to_owned()),
            ..Config::default()
        });
        assert!(err.is_err());
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let base = Config {
            budget: 48,
            max_size: 4,
            ..Config::default()
        };
        let serial = run(&base).expect("run");
        let parallel = run(&Config { threads: 4, ..base }).expect("run");
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn replay_roundtrip() {
        let (name, outcome) = replay(CaseId::new(1, 2, 42)).expect("family 1 exists");
        assert_eq!(name, "interval");
        assert_eq!(replay(CaseId::new(1, 2, 42)).expect("family").1, outcome);
        assert!(replay(CaseId::new(200, 1, 0)).is_err());
    }
}
