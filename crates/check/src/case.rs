//! Packed, replayable case identifiers.
//!
//! Every generated case is identified by a single `u64` that encodes the
//! oracle family, the size parameter the generators were ramped to, and the
//! 48-bit case seed. The hex form of this word is what `dwv-check --replay`
//! accepts and what the regression corpus stores — one token fully
//! reproduces a finding.
//!
//! Layout (most-significant byte first):
//!
//! ```text
//! byte 7    byte 6    bytes 5..0
//! family    size      case seed (48 bits)
//! ```

/// Mask selecting the 48-bit seed field.
pub const SEED_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

/// A fully-specified generated case: family, size ramp value, seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaseId {
    /// Oracle family identifier (see `families::registry`).
    pub family: u8,
    /// Size parameter (1..=255) the generators were ramped to.
    pub size: u8,
    /// 48-bit SplitMix64 seed for the case's entropy stream.
    pub seed: u64,
}

impl CaseId {
    /// Builds a case id, masking `seed` to its 48-bit field.
    #[must_use]
    pub fn new(family: u8, size: u8, seed: u64) -> Self {
        Self {
            family,
            size,
            seed: seed & SEED_MASK,
        }
    }

    /// Packs the id into a single word.
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.family) << 56) | (u64::from(self.size) << 48) | (self.seed & SEED_MASK)
    }

    /// Unpacks a word produced by [`CaseId::pack`].
    #[must_use]
    pub fn unpack(word: u64) -> Self {
        Self {
            family: (word >> 56) as u8,
            size: (word >> 48) as u8,
            seed: word & SEED_MASK,
        }
    }

    /// The canonical replay token, e.g. `0x010300000000002a`.
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:#018x}", self.pack())
    }

    /// Parses a replay token (`0x`-prefixed hex, case-insensitive, optional
    /// `_` separators). Returns `None` on malformed input.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        let t = token.trim();
        let hex = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))?;
        let cleaned: String = hex.chars().filter(|c| *c != '_').collect();
        if cleaned.is_empty() || cleaned.len() > 16 {
            return None;
        }
        u64::from_str_radix(&cleaned, 16).ok().map(Self::unpack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let id = CaseId::new(3, 17, 0xABCD_EF01_2345);
        assert_eq!(CaseId::unpack(id.pack()), id);
        assert_eq!(CaseId::parse(&id.hex()), Some(id));
    }

    #[test]
    fn seed_is_masked() {
        let id = CaseId::new(1, 1, u64::MAX);
        assert_eq!(id.seed, SEED_MASK);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(CaseId::parse("12ab"), None);
        assert_eq!(CaseId::parse("0x"), None);
        assert_eq!(CaseId::parse("0xzz"), None);
        assert_eq!(CaseId::parse("0x1_0000_0000_0000_0000_0"), None);
    }

    #[test]
    fn parse_accepts_separators_and_case() {
        let id = CaseId::parse("0X01_02_0000_0000_002A");
        assert_eq!(id, Some(CaseId::new(1, 2, 0x2A)));
    }
}
