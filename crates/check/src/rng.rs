//! Deterministic entropy for the falsification harness.
//!
//! A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream: one `u64`
//! seed, full-period 64-bit output, no global state, no platform
//! dependence. Every generated test case is a pure function of its packed
//! case id, so any finding replays bit-identically on any machine.

/// A SplitMix64 pseudo-random stream.
#[derive(Debug, Clone)]
pub struct CheckRng {
    state: u64,
}

impl CheckRng {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A derived independent substream, labelled so sibling forks differ.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> CheckRng {
        CheckRng::new(self.next_u64() ^ label.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// Derives the 48-bit case seed for case index `i` of a run seeded with
/// `run_seed` (an avalanche mix, so consecutive indices decorrelate).
#[must_use]
pub fn derive_case_seed(run_seed: u64, i: u64) -> u64 {
    let mut rng = CheckRng::new(run_seed ^ i.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    rng.next_u64() & crate::case::SEED_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = CheckRng::new(42);
        let mut b = CheckRng::new(42);
        let words: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(words, again);
        assert_ne!(words[0], words[1]);
    }

    #[test]
    fn forks_are_independent() {
        let mut root = CheckRng::new(7);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn case_seed_is_48_bit() {
        for i in 0..100 {
            assert_eq!(derive_case_seed(0xD3C0DE, i) >> 48, 0);
        }
    }
}
