//! Deterministic run reports.
//!
//! The JSON serialization is hand-rolled (no dependencies) and contains no
//! timestamps, durations, or machine identifiers — two runs with the same
//! seed and budget produce byte-identical reports, which the determinism
//! guard test asserts. Keys are emitted in a fixed order and floats never
//! appear (all numeric fields are integers), so formatting is stable.

/// One confirmed, shrunk violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationReport {
    /// Family name the violation belongs to.
    pub family: String,
    /// Replay token of the *shrunk* minimal reproducer.
    pub replay: String,
    /// Replay token of the originally-failing case.
    pub original: String,
    /// Size the shrunk case runs at.
    pub size: u8,
    /// The oracle's witness message.
    pub message: String,
    /// Number of shrink candidate executions spent minimizing.
    pub shrink_steps: u64,
}

/// Per-family tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyReport {
    /// Family name.
    pub name: String,
    /// Cases generated for this family.
    pub cases: u64,
    /// Cases where the oracle agreed.
    pub passes: u64,
    /// Unproductive draws.
    pub skips: u64,
    /// Confirmed violations, in case-index order.
    pub violations: Vec<ViolationReport>,
}

/// A whole harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The run seed.
    pub seed: u64,
    /// The case budget.
    pub budget: u64,
    /// The size-ramp ceiling.
    pub max_size: u8,
    /// Per-family results in registry order.
    pub families: Vec<FamilyReport>,
}

impl Report {
    /// Total cases across families.
    #[must_use]
    pub fn total_cases(&self) -> u64 {
        self.families.iter().map(|f| f.cases).sum()
    }

    /// Total skips across families.
    #[must_use]
    pub fn total_skips(&self) -> u64 {
        self.families.iter().map(|f| f.skips).sum()
    }

    /// Total confirmed violations across families.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.families.iter().map(|f| f.violations.len()).sum()
    }

    /// Deterministic JSON rendering (fixed key order, integers only, no
    /// wall-clock data).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": \"{:#x}\",\n", self.seed));
        s.push_str(&format!("  \"budget\": {},\n", self.budget));
        s.push_str(&format!("  \"max_size\": {},\n", self.max_size));
        s.push_str(&format!("  \"total_cases\": {},\n", self.total_cases()));
        s.push_str(&format!("  \"total_skips\": {},\n", self.total_skips()));
        s.push_str(&format!(
            "  \"total_violations\": {},\n",
            self.total_violations()
        ));
        s.push_str("  \"families\": [\n");
        for (i, f) in self.families.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", escape(&f.name)));
            s.push_str(&format!("      \"cases\": {},\n", f.cases));
            s.push_str(&format!("      \"passes\": {},\n", f.passes));
            s.push_str(&format!("      \"skips\": {},\n", f.skips));
            s.push_str("      \"violations\": [");
            for (j, v) in f.violations.iter().enumerate() {
                s.push_str("\n        {\n");
                s.push_str(&format!(
                    "          \"replay\": \"{}\",\n",
                    escape(&v.replay)
                ));
                s.push_str(&format!(
                    "          \"original\": \"{}\",\n",
                    escape(&v.original)
                ));
                s.push_str(&format!("          \"size\": {},\n", v.size));
                s.push_str(&format!(
                    "          \"shrink_steps\": {},\n",
                    v.shrink_steps
                ));
                s.push_str(&format!(
                    "          \"message\": \"{}\"\n",
                    escape(&v.message)
                ));
                s.push_str("        }");
                if j + 1 < f.violations.len() {
                    s.push(',');
                }
            }
            if f.violations.is_empty() {
                s.push_str("]\n");
            } else {
                s.push_str("\n      ]\n");
            }
            s.push_str("    }");
            if i + 1 < self.families.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable summary for terminal output.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "dwv-check: seed {:#x}, {} cases ({} skips), {} violation(s)\n",
            self.seed,
            self.total_cases(),
            self.total_skips(),
            self.total_violations()
        ));
        for f in &self.families {
            s.push_str(&format!(
                "  {:<12} {:>5} cases  {:>5} pass  {:>4} skip  {:>3} fail\n",
                f.name,
                f.cases,
                f.passes,
                f.skips,
                f.violations.len()
            ));
        }
        for f in &self.families {
            for v in &f.violations {
                s.push_str(&format!(
                    "\nVIOLATION [{}] replay with: dwv-check --replay {}\n  {}\n  (original case {}, {} shrink steps)\n",
                    f.name, v.replay, v.message, v.original, v.shrink_steps
                ));
            }
        }
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            seed: 0xD3C0DE,
            budget: 10,
            max_size: 8,
            families: vec![
                FamilyReport {
                    name: "interval".to_owned(),
                    cases: 5,
                    passes: 4,
                    skips: 1,
                    violations: vec![],
                },
                FamilyReport {
                    name: "poly".to_owned(),
                    cases: 5,
                    passes: 4,
                    skips: 0,
                    violations: vec![ViolationReport {
                        family: "poly".to_owned(),
                        replay: "0x0201000000000007".to_owned(),
                        original: "0x020500000000b33f".to_owned(),
                        size: 1,
                        message: "range [1, 2] excludes \"value\" 3".to_owned(),
                        shrink_steps: 12,
                    }],
                },
            ],
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample();
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.to_json().contains("\\\"value\\\""));
        assert_eq!(r.total_cases(), 10);
        assert_eq!(r.total_violations(), 1);
    }

    #[test]
    fn summary_mentions_replay_token() {
        assert!(sample().summary().contains("--replay 0x0201000000000007"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("x\ny"), "x\\ny");
    }
}
