//! Greedy minimization of failing cases.
//!
//! A finding is shrunk along two axes, both of which preserve replayability
//! because a case is a pure function of `(family, size, seed)`:
//!
//! 1. **size** — try the smallest sizes first; the smallest size at which
//!    *any* violation of the same family reproduces wins (the message may
//!    differ — any violation is a bug).
//! 2. **seed** — try numerically simpler seeds (small constants, the
//!    original seed with low-order bits cleared or shifted away). A simpler
//!    seed has no structural meaning, but it yields short, stable replay
//!    tokens for the corpus.
//!
//! Shrinking is bounded (≤ ~350 candidate executions) and deterministic.

use crate::case::CaseId;
use crate::families::{CaseOutcome, Family};

/// The result of shrinking one finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkResult {
    /// The minimal reproducer.
    pub id: CaseId,
    /// The witness message the minimal reproducer fails with.
    pub message: String,
    /// Candidate executions spent.
    pub steps: u64,
}

/// Shrinks a confirmed violation to a minimal reproducer.
#[must_use]
pub fn shrink(family: &dyn Family, found: CaseId, message: String) -> ShrinkResult {
    let mut best = found;
    let mut best_msg = message;
    let mut steps = 0u64;

    // Phase 1: smallest failing size (ascending scan stops at the first
    // size that still reproduces).
    for size in 1..best.size {
        steps += 1;
        if let CaseOutcome::Violation(m) = family.check(best.seed, size) {
            best = CaseId::new(best.family, size, best.seed);
            best_msg = m;
            break;
        }
    }

    // Phase 2: numerically simpler seeds at the chosen size.
    let mut candidates: Vec<u64> = (0..32).collect();
    for k in 1..48 {
        candidates.push(best.seed >> k);
    }
    for k in (8..48).step_by(8) {
        candidates.push(best.seed & !((1u64 << k) - 1));
        candidates.push(best.seed & ((1u64 << k) - 1));
    }
    candidates.sort_unstable();
    candidates.dedup();
    for seed in candidates {
        if seed >= best.seed {
            continue;
        }
        steps += 1;
        if let CaseOutcome::Violation(m) = family.check(seed, best.size) {
            best = CaseId::new(best.family, best.size, seed);
            best_msg = m;
        }
    }

    if dwv_obs::enabled() {
        dwv_obs::counter("check.shrink_steps").add(steps);
    }
    ShrinkResult {
        id: best,
        message: best_msg,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A family failing exactly when `seed % 3 == 0 && size >= 2`.
    struct Synthetic;

    impl Family for Synthetic {
        fn id(&self) -> u8 {
            99
        }
        fn name(&self) -> &'static str {
            "synthetic"
        }
        fn oracle(&self) -> &'static str {
            "test stub"
        }
        fn check(&self, seed: u64, size: u8) -> CaseOutcome {
            if seed.is_multiple_of(3) && size >= 2 {
                CaseOutcome::Violation(format!("fails at seed {seed} size {size}"))
            } else {
                CaseOutcome::Pass
            }
        }
    }

    #[test]
    fn shrinks_size_and_seed_to_minimum() {
        let found = CaseId::new(99, 9, 0x9_0000);
        let r = shrink(&Synthetic, found, "original".to_owned());
        assert_eq!(r.id.size, 2, "smallest failing size");
        assert_eq!(r.id.seed, 0, "smallest failing seed (0 % 3 == 0)");
        assert!(r.steps > 0);
        assert!(matches!(
            Synthetic.check(r.id.seed, r.id.size),
            CaseOutcome::Violation(_)
        ));
    }

    #[test]
    fn shrink_keeps_original_when_nothing_simpler_fails() {
        /// Fails only for one exact case.
        struct Needle;
        impl Family for Needle {
            fn id(&self) -> u8 {
                98
            }
            fn name(&self) -> &'static str {
                "needle"
            }
            fn oracle(&self) -> &'static str {
                "test stub"
            }
            fn check(&self, seed: u64, size: u8) -> CaseOutcome {
                if seed == 0xABCD && size == 5 {
                    CaseOutcome::Violation("needle".to_owned())
                } else {
                    CaseOutcome::Pass
                }
            }
        }
        let found = CaseId::new(98, 5, 0xABCD);
        let r = shrink(&Needle, found, "needle".to_owned());
        assert_eq!(r.id, found);
        assert_eq!(r.message, "needle");
    }
}
