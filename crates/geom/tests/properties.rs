//! Property-based tests for the convex-geometry substrate.

use dwv_geom::{ConvexPolygon, HalfPlane, Region, Vec2, Zonotope};
use dwv_interval::IntervalBox;
use proptest::prelude::*;

fn boxes() -> impl Strategy<Value = IntervalBox> {
    (-5.0..5.0f64, -5.0..5.0f64, 0.2..4.0f64, 0.2..4.0f64)
        .prop_map(|(x, y, w, h)| IntervalBox::from_bounds(&[(x, x + w), (y, y + h)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The convex hull of random points contains all of them.
    #[test]
    fn hull_contains_inputs(pts in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 3..12)) {
        let vecs: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        if let Ok(p) = ConvexPolygon::from_points(vecs.clone()) {
            for v in vecs {
                prop_assert!(p.contains_point(v), "{v} escapes its own hull");
            }
        }
    }

    /// Intersection commutes (as an area).
    #[test]
    fn intersect_commutes(a in boxes(), b in boxes()) {
        let pa = ConvexPolygon::from_box(&a);
        let pb = ConvexPolygon::from_box(&b);
        match (pa.intersect(&pb), pb.intersect(&pa)) {
            (Some(x), Some(y)) => prop_assert!((x.area() - y.area()).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "intersection existence must commute"),
        }
    }

    /// The polygon distance matches the box distance for axis-aligned boxes.
    #[test]
    fn polygon_distance_matches_box_distance(a in boxes(), b in boxes()) {
        let pa = ConvexPolygon::from_box(&a);
        let pb = ConvexPolygon::from_box(&b);
        let dp = pa.distance_to(&pb);
        let db = a.distance(&b);
        prop_assert!((dp - db).abs() < 1e-9, "polygon {dp} vs box {db}");
    }

    /// Clipping by a half-plane never increases area, and clipping by both a
    /// half-plane and its complement partitions the area.
    #[test]
    fn clip_partitions_area(b in boxes(), nx in -1.0..1.0f64, c in -6.0..6.0f64) {
        prop_assume!(nx.abs() > 0.05);
        let p = ConvexPolygon::from_box(&b);
        let hp = HalfPlane::new([nx, 1.0], c);
        let a1 = p.clip_halfplane(&hp).map_or(0.0, |q| q.area());
        let a2 = p.clip_halfplane(&hp.complement()).map_or(0.0, |q| q.area());
        prop_assert!(a1 <= p.area() + 1e-9);
        prop_assert!((a1 + a2 - p.area()).abs() < 1e-6 * p.area().max(1.0));
    }

    /// Affine images preserve area scaling by |det M|.
    #[test]
    fn affine_area_scaling(b in boxes(), m00 in -2.0..2.0f64, m01 in -2.0..2.0f64, m10 in -2.0..2.0f64, m11 in -2.0..2.0f64) {
        let det = (m00 * m11 - m01 * m10).abs();
        prop_assume!(det > 0.05);
        let p = ConvexPolygon::from_box(&b);
        if let Some(img) = p.affine_image(&[[m00, m01], [m10, m11]], &[1.0, -2.0]) {
            prop_assert!((img.area() - det * p.area()).abs() < 1e-6 * (1.0 + det * p.area()));
        }
    }

    /// Region distances: zero iff intersecting, for box regions.
    #[test]
    fn region_distance_consistent(a in boxes(), b in boxes()) {
        let r = Region::from_box(a.clone());
        prop_assert_eq!(r.distance_to_box(&b) == 0.0, r.intersects_box(&b));
    }

    /// Region intersection volume is monotone in the box argument.
    #[test]
    fn region_volume_monotone(a in boxes(), b in boxes()) {
        let universe = IntervalBox::from_bounds(&[(-20.0, 20.0), (-20.0, 20.0)]);
        let r = Region::from_box(a);
        let bigger = b.inflate(0.5);
        let v1 = r.intersection_volume(&b, &universe);
        let v2 = r.intersection_volume(&bigger, &universe);
        prop_assert!(v2 + 1e-9 >= v1);
    }

    /// Zonotope affine images commute with sampling.
    #[test]
    fn zonotope_affine_encloses(b in boxes(), m00 in -2.0..2.0f64, m01 in -2.0..2.0f64, m10 in -2.0..2.0f64, m11 in -2.0..2.0f64, a0 in -1.0..1.0f64, a1 in -1.0..1.0f64) {
        let z = Zonotope::from_box(&b);
        let m = vec![vec![m00, m01], vec![m10, m11]];
        let img = z.affine_image(&m, &[0.5, -0.5]);
        // A sample of the zonotope, mapped forward.
        let gens = z.generators();
        let mut x = z.center().to_vec();
        for (g, a) in gens.iter().zip([a0, a1]) {
            for (xi, gi) in x.iter_mut().zip(g) {
                *xi += a * gi;
            }
        }
        let y = [
            m[0][0] * x[0] + m[0][1] * x[1] + 0.5,
            m[1][0] * x[0] + m[1][1] * x[1] - 0.5,
        ];
        prop_assert!(img.bounding_box().inflate(1e-9).contains_point(&y));
    }

    /// Zonotope order reduction never shrinks the support function.
    #[test]
    fn zonotope_reduction_sound(b in boxes(), g0 in -1.0..1.0f64, g1 in -1.0..1.0f64, g2 in -1.0..1.0f64, g3 in -1.0..1.0f64, th in 0.0..std::f64::consts::TAU) {
        let z = Zonotope::from_box(&b)
            .minkowski_sum(&Zonotope::new(vec![0.0, 0.0], vec![vec![g0, g1], vec![g2, g3]]));
        let r = z.reduce_order(1.0);
        let d = [th.cos(), th.sin()];
        prop_assert!(r.support(&d) + 1e-9 >= z.support(&d));
    }

    /// 2-D zonotope polygons agree with the bounding box on axis supports.
    #[test]
    fn zonotope_polygon_supports(b in boxes(), g0 in -1.0..1.0f64, g1 in -1.0..1.0f64) {
        let z = Zonotope::from_box(&b)
            .minkowski_sum(&Zonotope::new(vec![0.0, 0.0], vec![vec![g0, g1]]));
        if let Some(p) = z.to_polygon() {
            let bb = z.bounding_box();
            prop_assert!((p.bounding_box().interval(0).hi() - bb.interval(0).hi()).abs() < 1e-9);
            prop_assert!((p.bounding_box().interval(1).lo() - bb.interval(1).lo()).abs() < 1e-9);
        }
    }

    /// Support-function consistency: h(K, d) >= <x, d> for every member x,
    /// in every direction — the defining inequality of the support function.
    #[test]
    fn zonotope_support_dominates_members(
        b in boxes(),
        g0 in -1.0..1.0f64, g1 in -1.0..1.0f64, g2 in -1.0..1.0f64, g3 in -1.0..1.0f64,
        a0 in -1.0..1.0f64, a1 in -1.0..1.0f64, a2 in -1.0..1.0f64, a3 in -1.0..1.0f64,
        th in 0.0..std::f64::consts::TAU,
    ) {
        let z = Zonotope::from_box(&b)
            .minkowski_sum(&Zonotope::new(vec![0.0, 0.0], vec![vec![g0, g1], vec![g2, g3]]));
        // Member x = c + sum a_i g_i with coefficients in [-1, 1].
        let mut x = z.center().to_vec();
        for (g, a) in z.generators().iter().zip([a0, a1, a2, a3]) {
            for (xi, gi) in x.iter_mut().zip(g) {
                *xi += a * gi;
            }
        }
        let d = [th.cos(), th.sin()];
        let dot = x[0] * d[0] + x[1] * d[1];
        prop_assert!(z.support(&d) + 1e-9 >= dot, "h(K,d) = {} < <x,d> = {dot}", z.support(&d));
    }

    /// Zonotope -> polygon conversion preserves membership: every sampled
    /// member of the zonotope lies inside (or on) the converted polygon.
    #[test]
    fn zonotope_polygon_preserves_membership(
        b in boxes(),
        g0 in -1.0..1.0f64, g1 in -1.0..1.0f64, g2 in -1.0..1.0f64, g3 in -1.0..1.0f64,
        a0 in -1.0..1.0f64, a1 in -1.0..1.0f64, a2 in -1.0..1.0f64, a3 in -1.0..1.0f64,
    ) {
        let z = Zonotope::from_box(&b)
            .minkowski_sum(&Zonotope::new(vec![0.0, 0.0], vec![vec![g0, g1], vec![g2, g3]]));
        if let Some(p) = z.to_polygon() {
            let mut x = z.center().to_vec();
            for (g, a) in z.generators().iter().zip([a0, a1, a2, a3]) {
                for (xi, gi) in x.iter_mut().zip(g) {
                    *xi += a * gi;
                }
            }
            let scale: f64 = 1.0 + x[0].abs() + x[1].abs();
            prop_assert!(
                p.distance_to_point(Vec2::new(x[0], x[1])) <= 1e-9 * scale,
                "member ({}, {}) escapes the converted polygon", x[0], x[1]
            );
        }
    }

    /// Affine-map containment: the image of any sampled member is a member of
    /// the image zonotope (checked exactly via the support function, not just
    /// the bounding box).
    #[test]
    fn zonotope_affine_member_containment(
        b in boxes(),
        m00 in -2.0..2.0f64, m01 in -2.0..2.0f64, m10 in -2.0..2.0f64, m11 in -2.0..2.0f64,
        a0 in -1.0..1.0f64, a1 in -1.0..1.0f64,
        th in 0.0..std::f64::consts::TAU,
    ) {
        let z = Zonotope::from_box(&b);
        let m = vec![vec![m00, m01], vec![m10, m11]];
        let img = z.affine_image(&m, &[0.25, -0.75]);
        let mut x = z.center().to_vec();
        for (g, a) in z.generators().iter().zip([a0, a1]) {
            for (xi, gi) in x.iter_mut().zip(g) {
                *xi += a * gi;
            }
        }
        let y = [
            m[0][0] * x[0] + m[0][1] * x[1] + 0.25,
            m[1][0] * x[0] + m[1][1] * x[1] - 0.75,
        ];
        // A point is in a convex body iff <y, d> <= h(K, d) for all d; a
        // random direction falsifies any escape with positive probability.
        let d = [th.cos(), th.sin()];
        let dot = y[0] * d[0] + y[1] * d[1];
        let scale = 1.0 + y[0].abs() + y[1].abs();
        prop_assert!(img.support(&d) + 1e-9 * scale >= dot, "mapped member escapes image zonotope");
    }
}
