//! Exact convex polygons in the plane.

use crate::{HalfPlane, Vec2};
use dwv_interval::IntervalBox;
use std::fmt;

/// Tolerance for orientation/degeneracy decisions, scaled to the coordinate
/// magnitudes the benchmark systems use (coordinates up to a few hundred).
const EPS: f64 = 1e-12;

/// Error returned when a vertex set does not span a 2-D convex polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegeneratePolygonError;

impl fmt::Display for DegeneratePolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point set does not span a non-degenerate convex polygon")
    }
}

impl std::error::Error for DegeneratePolygonError {}

/// A convex polygon with counter-clockwise vertices.
///
/// Built from arbitrary point sets via a convex hull, this type supports the
/// exact set operations the linear verifier and the geometric metric need:
/// intersection by half-plane clipping, shoelace area, point containment,
/// support functions, affine images, and Euclidean distances between convex
/// sets.
///
/// # Example
///
/// ```
/// use dwv_geom::{ConvexPolygon, Vec2};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = ConvexPolygon::from_points(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(1.0, 0.0),
///     Vec2::new(0.5, 0.5), // interior point, dropped by the hull
///     Vec2::new(1.0, 1.0),
///     Vec2::new(0.0, 1.0),
/// ])?;
/// assert_eq!(p.vertices().len(), 4);
/// assert!((p.area() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolygon {
    /// CCW-ordered hull vertices, no duplicates.
    verts: Vec<Vec2>,
}

impl ConvexPolygon {
    /// Builds the convex hull of `points` (Andrew's monotone chain).
    ///
    /// # Errors
    ///
    /// Returns [`DegeneratePolygonError`] if fewer than 3 non-collinear points
    /// remain after deduplication.
    pub fn from_points(points: Vec<Vec2>) -> Result<Self, DegeneratePolygonError> {
        let hull = convex_hull(points);
        if hull.len() < 3 {
            return Err(DegeneratePolygonError);
        }
        Ok(Self { verts: hull })
    }

    /// Builds the polygon of a 2-D axis-aligned box.
    ///
    /// # Panics
    ///
    /// Panics if the box is not 2-dimensional, not finite, or has zero width
    /// in some dimension.
    #[must_use]
    pub fn from_box(b: &IntervalBox) -> Self {
        assert_eq!(b.dim(), 2, "polygon requires a 2-D box");
        assert!(b.is_finite(), "polygon requires a finite box");
        let (x, y) = (b.interval(0), b.interval(1));
        assert!(
            x.width() > 0.0 && y.width() > 0.0,
            "polygon requires positive widths"
        );
        // The CCW rectangle needs no hull pass: with positive widths the
        // four corners are distinct and already in hull order.
        Self {
            verts: vec![
                Vec2::new(x.lo(), y.lo()),
                Vec2::new(x.hi(), y.lo()),
                Vec2::new(x.hi(), y.hi()),
                Vec2::new(x.lo(), y.hi()),
            ],
        }
    }

    /// The CCW-ordered vertices.
    #[must_use]
    pub fn vertices(&self) -> &[Vec2] {
        &self.verts
    }

    /// The polygon area (shoelace formula).
    #[must_use]
    pub fn area(&self) -> f64 {
        let n = self.verts.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            acc += a.cross(b);
        }
        0.5 * acc
    }

    /// The centroid (area-weighted).
    #[must_use]
    pub fn centroid(&self) -> Vec2 {
        let n = self.verts.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.verts[i];
            let q = self.verts[(i + 1) % n];
            let w = p.cross(q);
            a += w;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        if a.abs() < 1e-300 {
            // Fall back to the vertex mean for near-degenerate polygons.
            let m = self.verts.iter().fold(Vec2::ZERO, |acc, &v| acc + v);
            return m / n as f64;
        }
        Vec2::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains_point(&self, p: Vec2) -> bool {
        let n = self.verts.len();
        let scale = self.verts.iter().map(|v| v.norm()).fold(1.0f64, f64::max);
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            if (b - a).cross(p - a) < -EPS * scale * scale {
                return false;
            }
        }
        true
    }

    /// The support point: vertex maximizing `dir · v`.
    #[must_use]
    pub fn support(&self, dir: Vec2) -> Vec2 {
        *self
            .verts
            .iter()
            .max_by(|a, b| a.dot(dir).total_cmp(&b.dot(dir)))
            .expect("polygon has vertices")
    }

    /// Clips the polygon by the half-plane, returning `None` when the
    /// intersection is empty or degenerate (zero area).
    #[must_use]
    pub fn clip_halfplane(&self, hp: &HalfPlane) -> Option<ConvexPolygon> {
        let mut out: Vec<Vec2> = Vec::with_capacity(self.verts.len() + 2);
        let n = self.verts.len();
        for i in 0..n {
            let cur = self.verts[i];
            let nxt = self.verts[(i + 1) % n];
            let cur_in = hp.signed_slack(cur) >= -EPS;
            let nxt_in = hp.signed_slack(nxt) >= -EPS;
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                if let Some(x) = hp.segment_crossing(cur, nxt) {
                    out.push(x);
                }
            }
        }
        ConvexPolygon::from_points(out).ok()
    }

    /// Exact intersection of two convex polygons, `None` when empty or
    /// degenerate.
    #[must_use]
    pub fn intersect(&self, other: &ConvexPolygon) -> Option<ConvexPolygon> {
        let mut acc = self.clone();
        for hp in other.edge_halfplanes() {
            acc = acc.clip_halfplane(&hp)?;
        }
        Some(acc)
    }

    /// The half-planes whose intersection is this polygon (one per edge,
    /// oriented inward).
    #[must_use]
    pub fn edge_halfplanes(&self) -> Vec<HalfPlane> {
        let n = self.verts.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            // CCW edge a->b: interior is to the left; inward normal = perp.
            let inward = (b - a).perp();
            // HalfPlane is n·x <= c with interior satisfying it: use outward normal.
            let outward = -inward;
            out.push(HalfPlane::new([outward.x, outward.y], outward.dot(a)));
        }
        out
    }

    /// Minimum Euclidean distance between two convex polygons (0 on overlap).
    #[must_use]
    pub fn distance_to(&self, other: &ConvexPolygon) -> f64 {
        if self.intersect(other).is_some() || self.touches(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        let n = self.verts.len();
        let m = other.verts.len();
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            for j in 0..m {
                let c = other.verts[j];
                let d = other.verts[(j + 1) % m];
                best = best
                    .min(c.distance_to_segment(a, b))
                    .min(d.distance_to_segment(a, b))
                    .min(a.distance_to_segment(c, d))
                    .min(b.distance_to_segment(c, d));
            }
        }
        best
    }

    /// Whether the boundaries touch or the interiors overlap (containment of
    /// any vertex either way).
    fn touches(&self, other: &ConvexPolygon) -> bool {
        self.verts.iter().any(|&v| other.contains_point(v))
            || other.verts.iter().any(|&v| self.contains_point(v))
    }

    /// Minimum Euclidean distance from the polygon to a point (0 inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        let n = self.verts.len();
        (0..n)
            .map(|i| p.distance_to_segment(self.verts[i], self.verts[(i + 1) % n]))
            .fold(f64::INFINITY, f64::min)
    }

    /// The image of the polygon under the affine map `x ↦ M x + b`.
    ///
    /// Convexity is preserved by affine maps; the result is the hull of the
    /// mapped vertices. Returns `None` when the map collapses the polygon to
    /// a segment or point (singular `M`).
    #[must_use]
    pub fn affine_image(&self, m: &[[f64; 2]; 2], b: &[f64; 2]) -> Option<ConvexPolygon> {
        let pts = self
            .verts
            .iter()
            .map(|v| {
                Vec2::new(
                    m[0][0] * v.x + m[0][1] * v.y + b[0],
                    m[1][0] * v.x + m[1][1] * v.y + b[1],
                )
            })
            .collect();
        ConvexPolygon::from_points(pts).ok()
    }

    /// The tightest axis-aligned bounding box.
    #[must_use]
    pub fn bounding_box(&self) -> IntervalBox {
        let xs = dwv_interval::Interval::hull_of_values(self.verts.iter().map(|v| v.x))
            .expect("polygon has vertices");
        let ys = dwv_interval::Interval::hull_of_values(self.verts.iter().map(|v| v.y))
            .expect("polygon has vertices");
        IntervalBox::new(vec![xs, ys])
    }

    /// The convex hull of the union of the two polygons.
    #[must_use]
    pub fn hull_with(&self, other: &ConvexPolygon) -> ConvexPolygon {
        let pts = self
            .verts
            .iter()
            .chain(other.verts.iter())
            .copied()
            .collect();
        ConvexPolygon::from_points(pts).expect("union of two polygons is non-degenerate")
    }
}

impl fmt::Display for ConvexPolygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[")?;
        for (i, v) in self.verts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Andrew's monotone-chain convex hull; returns CCW vertices without the
/// closing duplicate. Collinear points on the hull boundary are dropped.
fn convex_hull(mut points: Vec<Vec2>) -> Vec<Vec2> {
    points.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    points.dedup_by(|a, b| (a.x - b.x).abs() < EPS && (a.y - b.y).abs() < EPS);
    let n = points.len();
    if n < 3 {
        return points;
    }
    let mut hull: Vec<Vec2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &points {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in points.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_interval::IntervalBox;

    fn square(lo: f64, hi: f64) -> ConvexPolygon {
        ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(lo, hi), (lo, hi)]))
    }

    #[test]
    fn hull_drops_interior_and_collinear() {
        let p = ConvexPolygon::from_points(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 0.0), // collinear
            Vec2::new(1.0, 0.5), // interior
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 4);
        assert!((p.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rejected() {
        assert!(
            ConvexPolygon::from_points(vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)]).is_err()
        );
        assert!(ConvexPolygon::from_points(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 2.0),
        ])
        .is_err());
    }

    #[test]
    fn area_is_positive_ccw() {
        let p = square(0.0, 3.0);
        assert!((p.area() - 9.0).abs() < 1e-12);
        assert!(p.area() > 0.0);
    }

    #[test]
    fn centroid_of_square() {
        let p = square(0.0, 2.0);
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_point_cases() {
        let p = square(0.0, 1.0);
        assert!(p.contains_point(Vec2::new(0.5, 0.5)));
        assert!(p.contains_point(Vec2::new(0.0, 0.0))); // boundary
        assert!(!p.contains_point(Vec2::new(1.5, 0.5)));
    }

    #[test]
    fn clip_halfplane_halves_square() {
        let p = square(0.0, 2.0);
        // x <= 1
        let hp = HalfPlane::new([1.0, 0.0], 1.0);
        let clipped = p.clip_halfplane(&hp).unwrap();
        assert!((clipped.area() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clip_away_everything() {
        let p = square(0.0, 1.0);
        let hp = HalfPlane::new([1.0, 0.0], -5.0); // x <= -5
        assert!(p.clip_halfplane(&hp).is_none());
    }

    #[test]
    fn intersect_overlapping_squares() {
        let a = square(0.0, 2.0);
        let b = square(1.0, 3.0);
        let ix = a.intersect(&b).unwrap();
        assert!((ix.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = square(0.0, 1.0);
        let b = square(2.0, 3.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn distance_between_squares() {
        let a = square(0.0, 1.0);
        let b = square(3.0, 4.0);
        assert!((a.distance_to(&b) - 8.0f64.sqrt()).abs() < 1e-9);
        let c = square(0.5, 1.5);
        assert_eq!(a.distance_to(&c), 0.0);
    }

    #[test]
    fn distance_to_point() {
        let p = square(0.0, 1.0);
        assert_eq!(p.distance_to_point(Vec2::new(0.5, 0.5)), 0.0);
        assert!((p.distance_to_point(Vec2::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_image_rotation_preserves_area() {
        let p = square(0.0, 2.0);
        let th: f64 = 0.3;
        let m = [[th.cos(), -th.sin()], [th.sin(), th.cos()]];
        let img = p.affine_image(&m, &[1.0, -1.0]).unwrap();
        assert!((img.area() - p.area()).abs() < 1e-9);
    }

    #[test]
    fn affine_image_singular_is_none() {
        let p = square(0.0, 1.0);
        let m = [[1.0, 0.0], [0.0, 0.0]];
        assert!(p.affine_image(&m, &[0.0, 0.0]).is_none());
    }

    #[test]
    fn support_points() {
        let p = square(0.0, 1.0);
        assert_eq!(p.support(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 1.0));
        assert_eq!(p.support(Vec2::new(-1.0, -1.0)), Vec2::new(0.0, 0.0));
    }

    #[test]
    fn bounding_box_roundtrip() {
        let b = IntervalBox::from_bounds(&[(1.0, 2.0), (-1.0, 0.5)]);
        let p = ConvexPolygon::from_box(&b);
        assert_eq!(p.bounding_box(), b);
    }

    #[test]
    fn edge_halfplanes_reconstruct() {
        let p = square(0.0, 1.0);
        for hp in p.edge_halfplanes() {
            // Centroid satisfies all inward constraints strictly.
            assert!(hp.signed_slack(p.centroid()) > 0.0);
        }
    }

    #[test]
    fn hull_with_merges() {
        let a = square(0.0, 1.0);
        let b = square(2.0, 3.0);
        let h = a.hull_with(&b);
        assert!(h.contains_point(Vec2::new(1.5, 1.5)));
    }
}
