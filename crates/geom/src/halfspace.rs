//! Half-planes (2-D) and half-spaces (n-D).

use crate::Vec2;
use dwv_interval::IntervalBox;
use std::fmt;

/// The closed half-plane `{ x ∈ R² : n·x ≤ c }`.
///
/// # Example
///
/// ```
/// use dwv_geom::{HalfPlane, Vec2};
///
/// // The ACC unsafe region {s <= 120} with state (s, v):
/// let unsafe_region = HalfPlane::new([1.0, 0.0], 120.0);
/// assert!(unsafe_region.contains(Vec2::new(100.0, 40.0)));
/// assert!(!unsafe_region.contains(Vec2::new(130.0, 40.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    normal: Vec2,
    offset: f64,
}

impl HalfPlane {
    /// Creates the half-plane `n·x ≤ c`.
    ///
    /// # Panics
    ///
    /// Panics if the normal is (near-)zero.
    #[must_use]
    pub fn new(normal: [f64; 2], offset: f64) -> Self {
        let n = Vec2::new(normal[0], normal[1]);
        assert!(n.norm() > 1e-300, "half-plane normal must be non-zero");
        Self { normal: n, offset }
    }

    /// The outward normal vector.
    #[must_use]
    pub fn normal(&self) -> Vec2 {
        self.normal
    }

    /// The offset `c` in `n·x ≤ c`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Signed slack `c − n·x`: non-negative inside the half-plane.
    #[must_use]
    pub fn signed_slack(&self, p: Vec2) -> f64 {
        self.offset - self.normal.dot(p)
    }

    /// Whether `p` satisfies the constraint.
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        self.signed_slack(p) >= 0.0
    }

    /// Euclidean distance from `p` to the half-plane (0 inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        (-self.signed_slack(p) / self.normal.norm()).max(0.0)
    }

    /// Where the segment `[a, b]` crosses the boundary line, if it does.
    #[must_use]
    pub fn segment_crossing(&self, a: Vec2, b: Vec2) -> Option<Vec2> {
        let fa = self.signed_slack(a);
        let fb = self.signed_slack(b);
        let denom = fa - fb;
        if denom.abs() < 1e-300 {
            return None;
        }
        let t = fa / denom;
        (0.0..=1.0).contains(&t).then(|| a + (b - a) * t)
    }

    /// The complementary half-plane `n·x ≥ c`, i.e. `(-n)·x ≤ -c`.
    #[must_use]
    pub fn complement(&self) -> HalfPlane {
        HalfPlane {
            normal: -self.normal,
            offset: -self.offset,
        }
    }
}

impl fmt::Display for HalfPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{x : {}·x₁ + {}·x₂ ≤ {}}}",
            self.normal.x, self.normal.y, self.offset
        )
    }
}

/// The closed half-space `{ x ∈ Rⁿ : n·x ≤ c }`.
///
/// # Example
///
/// ```
/// use dwv_geom::HalfSpace;
///
/// let hs = HalfSpace::new(vec![1.0, 0.0, 0.0], 2.0);
/// assert!(hs.contains(&[1.0, 5.0, -3.0]));
/// assert!(!hs.contains(&[3.0, 0.0, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpace {
    normal: Vec<f64>,
    offset: f64,
}

impl HalfSpace {
    /// Creates the half-space `n·x ≤ c`.
    ///
    /// # Panics
    ///
    /// Panics if the normal is empty or (near-)zero.
    #[must_use]
    pub fn new(normal: Vec<f64>, offset: f64) -> Self {
        let norm: f64 = normal.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm > 1e-300, "half-space normal must be non-zero");
        Self { normal, offset }
    }

    /// The ambient dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// The outward normal.
    #[must_use]
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// The offset `c`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Signed slack `c − n·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn signed_slack(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.dim(), "dimension mismatch");
        self.offset - self.normal.iter().zip(p).map(|(n, x)| n * x).sum::<f64>()
    }

    /// Whether `p` satisfies the constraint.
    #[must_use]
    pub fn contains(&self, p: &[f64]) -> bool {
        self.signed_slack(p) >= 0.0
    }

    /// Euclidean distance from `p` to the half-space (0 inside).
    #[must_use]
    pub fn distance_to_point(&self, p: &[f64]) -> f64 {
        let norm: f64 = self.normal.iter().map(|v| v * v).sum::<f64>().sqrt();
        (-self.signed_slack(p) / norm).max(0.0)
    }

    /// The infimum of `n·x` over a box (support in direction `-n`, negated).
    #[must_use]
    pub fn min_over_box(&self, b: &IntervalBox) -> f64 {
        assert_eq!(b.dim(), self.dim(), "dimension mismatch");
        self.normal
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let iv = b.interval(i);
                if n >= 0.0 {
                    n * iv.lo()
                } else {
                    n * iv.hi()
                }
            })
            .sum()
    }

    /// The supremum of `n·x` over a box.
    #[must_use]
    pub fn max_over_box(&self, b: &IntervalBox) -> f64 {
        assert_eq!(b.dim(), self.dim(), "dimension mismatch");
        self.normal
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let iv = b.interval(i);
                if n >= 0.0 {
                    n * iv.hi()
                } else {
                    n * iv.lo()
                }
            })
            .sum()
    }

    /// Whether the box intersects the half-space.
    #[must_use]
    pub fn intersects_box(&self, b: &IntervalBox) -> bool {
        self.min_over_box(b) <= self.offset
    }

    /// Whether the box lies entirely inside the half-space.
    #[must_use]
    pub fn contains_box(&self, b: &IntervalBox) -> bool {
        self.max_over_box(b) <= self.offset
    }

    /// Euclidean distance from a box to the half-space (0 on intersection).
    #[must_use]
    pub fn distance_to_box(&self, b: &IntervalBox) -> f64 {
        let norm: f64 = self.normal.iter().map(|v| v * v).sum::<f64>().sqrt();
        ((self.min_over_box(b) - self.offset) / norm).max(0.0)
    }
}

impl fmt::Display for HalfSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{x : n·x ≤ {} , n = {:?}}}", self.offset, self.normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfplane_slack_and_distance() {
        let hp = HalfPlane::new([0.0, 2.0], 4.0); // y <= 2 (normal scaled by 2)
        assert!(hp.contains(Vec2::new(0.0, 2.0)));
        assert!(!hp.contains(Vec2::new(0.0, 3.0)));
        assert!((hp.distance_to_point(Vec2::new(0.0, 3.0)) - 1.0).abs() < 1e-12);
        assert_eq!(hp.distance_to_point(Vec2::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn halfplane_crossing() {
        let hp = HalfPlane::new([1.0, 0.0], 0.5); // x <= 0.5
        let x = hp
            .segment_crossing(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0))
            .unwrap();
        assert!((x.x - 0.5).abs() < 1e-12 && (x.y - 0.5).abs() < 1e-12);
        assert!(hp
            .segment_crossing(Vec2::new(0.0, 0.0), Vec2::new(0.2, 0.0))
            .is_none());
    }

    #[test]
    fn halfplane_complement() {
        let hp = HalfPlane::new([1.0, 0.0], 1.0);
        let c = hp.complement();
        assert!(c.contains(Vec2::new(2.0, 0.0)));
        assert!(!c.contains(Vec2::new(0.0, 0.0)));
        // Boundary belongs to both.
        assert!(hp.contains(Vec2::new(1.0, 0.0)) && c.contains(Vec2::new(1.0, 0.0)));
    }

    #[test]
    fn halfspace_box_queries() {
        let hs = HalfSpace::new(vec![1.0, 0.0], 120.0); // s <= 120
        let x0 = IntervalBox::from_bounds(&[(122.0, 124.0), (48.0, 52.0)]);
        assert!(!hs.intersects_box(&x0));
        assert!((hs.distance_to_box(&x0) - 2.0).abs() < 1e-12);
        let crossing = IntervalBox::from_bounds(&[(119.0, 121.0), (0.0, 1.0)]);
        assert!(hs.intersects_box(&crossing));
        assert!(!hs.contains_box(&crossing));
        let inside = IntervalBox::from_bounds(&[(100.0, 110.0), (0.0, 1.0)]);
        assert!(hs.contains_box(&inside));
        assert_eq!(hs.distance_to_box(&inside), 0.0);
    }

    #[test]
    fn halfspace_min_max_over_box() {
        let hs = HalfSpace::new(vec![1.0, -2.0], 0.0);
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(hs.min_over_box(&b), -2.0);
        assert_eq!(hs.max_over_box(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_normal_panics() {
        let _ = HalfSpace::new(vec![0.0, 0.0], 1.0);
    }
}
