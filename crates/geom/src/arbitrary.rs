//! Seed-driven geometry generators for falsification harnesses.
//!
//! Entropy comes from a caller-supplied `next: &mut impl FnMut() -> u64`
//! word source, keeping generation a pure function of the seed stream.

use crate::{ConvexPolygon, Vec2, Zonotope};
use dwv_interval::arbitrary::{f64_in, index, unit_f64};

/// A random zonotope in `R^dim` with `n_gens` generators: center and
/// generator entries of magnitude at most `mag`.
pub fn zonotope(next: &mut impl FnMut() -> u64, dim: usize, n_gens: usize, mag: f64) -> Zonotope {
    let center: Vec<f64> = (0..dim).map(|_| f64_in(next(), -mag, mag)).collect();
    let generators: Vec<Vec<f64>> = (0..n_gens)
        .map(|_| (0..dim).map(|_| f64_in(next(), -mag, mag)).collect())
        .collect();
    Zonotope::new(center, generators)
}

/// A random coefficient vector `α ∈ [−1, 1]^n` selecting a point of a
/// zonotope (`x = c + Σ αᵢ gᵢ`). Occasionally snaps coordinates to ±1 so the
/// zonotope's vertices are exercised, not just its interior.
pub fn zonotope_coeffs(next: &mut impl FnMut() -> u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w = next();
            match w & 7 {
                0 => 1.0,
                1 => -1.0,
                _ => f64_in(w >> 3, -1.0, 1.0).clamp(-1.0, 1.0),
            }
        })
        .collect()
}

/// The concrete point of `z` selected by coefficients `alphas` (the sampling
/// oracle membership witnesses are built from).
#[must_use]
pub fn zonotope_point(z: &Zonotope, alphas: &[f64]) -> Vec<f64> {
    let mut x = z.center().to_vec();
    for (g, &a) in z.generators().iter().zip(alphas) {
        for (xi, gi) in x.iter_mut().zip(g) {
            *xi += a * gi;
        }
    }
    x
}

/// A random convex polygon: the convex hull of `n_pts` points of magnitude
/// at most `mag` (`None` when the sampled points are degenerate).
pub fn convex_polygon(
    next: &mut impl FnMut() -> u64,
    n_pts: usize,
    mag: f64,
) -> Option<ConvexPolygon> {
    let pts: Vec<Vec2> = (0..n_pts.max(3))
        .map(|_| Vec2::new(f64_in(next(), -mag, mag), f64_in(next(), -mag, mag)))
        .collect();
    ConvexPolygon::from_points(pts).ok()
}

/// A random point inside polygon `p`: a convex combination of its vertices.
pub fn point_in_polygon(next: &mut impl FnMut() -> u64, p: &ConvexPolygon) -> Vec2 {
    let vs = p.vertices();
    let ws: Vec<f64> = vs.iter().map(|_| unit_f64(next()) + 1e-6).collect();
    let total: f64 = ws.iter().sum();
    let mut x = 0.0;
    let mut y = 0.0;
    for (v, w) in vs.iter().zip(&ws) {
        x += v.x * w / total;
        y += v.y * w / total;
    }
    Vec2::new(x, y)
}

/// A random affine map `(M, b)` from `R^dim` to `R^rows` with entries of
/// magnitude at most `mag`.
pub fn affine_map(
    next: &mut impl FnMut() -> u64,
    rows: usize,
    dim: usize,
    mag: f64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let m: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..dim).map(|_| f64_in(next(), -mag, mag)).collect())
        .collect();
    let b: Vec<f64> = (0..rows).map(|_| f64_in(next(), -mag, mag)).collect();
    (m, b)
}

/// A random direction on the unit circle/sphere lattice: `dim` entries in
/// `[−1, 1]`, rejecting the near-zero vector by regenerating one entry.
pub fn direction(next: &mut impl FnMut() -> u64, dim: usize) -> Vec<f64> {
    let mut d: Vec<f64> = (0..dim).map(|_| f64_in(next(), -1.0, 1.0)).collect();
    if d.iter().map(|v| v.abs()).sum::<f64>() < 1e-6 {
        let i = index(next(), dim);
        if let Some(v) = d.get_mut(i) {
            *v = 1.0;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn zonotope_points_under_support() {
        let mut s = stream(13);
        let z = zonotope(&mut s, 3, 5, 2.0);
        for _ in 0..50 {
            let a = zonotope_coeffs(&mut s, 5);
            let x = zonotope_point(&z, &a);
            let d = direction(&mut s, 3);
            let dx: f64 = d.iter().zip(&x).map(|(u, v)| u * v).sum();
            assert!(z.support(&d) >= dx - 1e-9);
        }
    }

    #[test]
    fn polygon_contains_convex_combinations() {
        let mut s = stream(17);
        if let Some(p) = convex_polygon(&mut s, 7, 4.0) {
            for _ in 0..50 {
                let q = point_in_polygon(&mut s, &p);
                assert!(p.distance_to_point(q) <= 1e-9);
            }
        }
    }
}
