//! Plane vectors.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-D vector / point.
///
/// # Example
///
/// ```
/// use dwv_geom::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.dot(Vec2::new(1.0, 0.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// The x coordinate.
    pub x: f64,
    /// The y coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its coordinates.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    ///
    /// Positive when `rhs` is counter-clockwise from `self`.
    #[must_use]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(self, rhs: Vec2) -> f64 {
        (self - rhs).norm()
    }

    /// The vector rotated 90° counter-clockwise.
    #[must_use]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// The unit vector in the same direction, or `None` for (near-)zero input.
    #[must_use]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        (n > 1e-300).then(|| self / n)
    }

    /// Distance from this point to the segment `[a, b]`.
    #[must_use]
    pub fn distance_to_segment(self, a: Vec2, b: Vec2) -> f64 {
        let ab = b - a;
        let len_sq = ab.norm_sq();
        if len_sq <= 1e-300 {
            return self.distance(a);
        }
        let t = ((self - a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.distance(a + ab * t)
    }
}

impl Add for Vec2 {
    type Output = Vec2;

    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;

    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;

    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;

    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;

    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;

    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(v: [f64; 2]) -> Self {
        Vec2::new(v[0], v[1])
    }
}

impl From<Vec2> for [f64; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn cross_orientation() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn normalized_unit_and_zero() {
        let n = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn segment_distance() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 0.0);
        assert_eq!(Vec2::new(1.0, 1.0).distance_to_segment(a, b), 1.0);
        assert_eq!(Vec2::new(-1.0, 0.0).distance_to_segment(a, b), 1.0);
        assert!((Vec2::new(3.0, 4.0).distance_to_segment(a, b) - 17.0f64.sqrt()).abs() < 1e-12);
        // degenerate segment
        assert_eq!(Vec2::new(1.0, 0.0).distance_to_segment(a, a), 1.0);
    }
}
