//! Zonotopes: centrally symmetric convex sets closed under affine maps and
//! Minkowski sums.
//!
//! A zonotope `Z = ⟨c, G⟩ = { c + Σᵢ αᵢ gᵢ : αᵢ ∈ [−1, 1] }` is the workhorse
//! set representation of linear reachability: the affine image of a zonotope
//! is a zonotope (map the center and generators), and the Minkowski sum of
//! two zonotopes just concatenates generators — which is exactly what
//! propagating `X_{t+1} = A X_t ⊕ B U ⊕ W` needs. The disturbance-robust
//! variant of the linear verifier in `dwv-reach` is built on this type.

use crate::{ConvexPolygon, Vec2};
use dwv_interval::{Interval, IntervalBox};
use std::fmt;

/// A zonotope `{ c + Σ αᵢ gᵢ : αᵢ ∈ [−1,1] }` in `Rⁿ`.
///
/// # Example
///
/// ```
/// use dwv_geom::Zonotope;
/// use dwv_interval::IntervalBox;
///
/// // The unit square as a zonotope, translated to (2, 3).
/// let z = Zonotope::from_box(&IntervalBox::from_bounds(&[(1.5, 2.5), (2.5, 3.5)]));
/// assert_eq!(z.dim(), 2);
/// assert_eq!(z.order(), 1.0); // one generator per dimension
/// assert!(z.bounding_box().contains_point(&[2.0, 3.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zonotope {
    center: Vec<f64>,
    /// Generators, each of length `dim`.
    generators: Vec<Vec<f64>>,
}

impl Zonotope {
    /// Creates a zonotope from its center and generators.
    ///
    /// # Panics
    ///
    /// Panics if any generator's length differs from the center's.
    #[must_use]
    pub fn new(center: Vec<f64>, generators: Vec<Vec<f64>>) -> Self {
        let n = center.len();
        assert!(
            generators.iter().all(|g| g.len() == n),
            "generator dimension mismatch"
        );
        Self { center, generators }
    }

    /// The degenerate zonotope containing exactly `point`.
    #[must_use]
    pub fn from_point(point: &[f64]) -> Self {
        Self::new(point.to_vec(), Vec::new())
    }

    /// The axis-aligned box as a zonotope (one generator per dimension with
    /// positive width).
    ///
    /// # Panics
    ///
    /// Panics if the box is unbounded.
    #[must_use]
    pub fn from_box(b: &IntervalBox) -> Self {
        assert!(b.is_finite(), "zonotope requires a bounded box");
        let center = b.center();
        let generators = (0..b.dim())
            .filter(|&i| b.interval(i).rad() > 0.0)
            .map(|i| {
                let mut g = vec![0.0; b.dim()];
                g[i] = b.interval(i).rad();
                g
            })
            .collect();
        Self::new(center, generators)
    }

    /// The ambient dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// The center.
    #[must_use]
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The generators.
    #[must_use]
    pub fn generators(&self) -> &[Vec<f64>] {
        &self.generators
    }

    /// The order: generators per dimension (a complexity measure).
    #[must_use]
    pub fn order(&self) -> f64 {
        self.generators.len() as f64 / self.dim().max(1) as f64
    }

    /// The tightest axis-aligned bounding box:
    /// `cᵢ ± Σⱼ |gⱼᵢ|` per dimension.
    #[must_use]
    pub fn bounding_box(&self) -> IntervalBox {
        (0..self.dim())
            .map(|i| {
                let r: f64 = self.generators.iter().map(|g| g[i].abs()).sum();
                Interval::new(self.center[i] - r, self.center[i] + r)
            })
            .collect()
    }

    /// The support value `max { d·x : x ∈ Z } = d·c + Σ |d·gⱼ|`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn support(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.dim(), "direction dimension mismatch");
        let dc: f64 = d.iter().zip(&self.center).map(|(a, b)| a * b).sum();
        let spread: f64 = self
            .generators
            .iter()
            .map(|g| d.iter().zip(g).map(|(a, b)| a * b).sum::<f64>().abs())
            .sum();
        dc + spread
    }

    /// The image under the affine map `x ↦ M x + b` (`M` row-major
    /// `rows × dim`).
    ///
    /// # Panics
    ///
    /// Panics if `m`'s column count or `b`'s length are inconsistent.
    #[must_use]
    pub fn affine_image(&self, m: &[Vec<f64>], b: &[f64]) -> Zonotope {
        let rows = m.len();
        assert!(
            m.iter().all(|r| r.len() == self.dim()),
            "matrix shape mismatch"
        );
        assert_eq!(b.len(), rows, "offset length mismatch");
        let apply = |v: &[f64]| -> Vec<f64> {
            m.iter()
                .map(|row| row.iter().zip(v).map(|(a, x)| a * x).sum())
                .collect()
        };
        let mut center = apply(&self.center);
        for (ci, bi) in center.iter_mut().zip(b) {
            *ci += bi;
        }
        let generators = self.generators.iter().map(|g| apply(g)).collect();
        Zonotope::new(center, generators)
    }

    /// The Minkowski sum `Z ⊕ W` (concatenates generators).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn minkowski_sum(&self, other: &Zonotope) -> Zonotope {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let center = self
            .center
            .iter()
            .zip(&other.center)
            .map(|(a, b)| a + b)
            .collect();
        let mut generators = self.generators.clone();
        generators.extend(other.generators.iter().cloned());
        Zonotope::new(center, generators)
    }

    /// Order reduction to at most `max_order` generators per dimension
    /// (Girard's box-reduction: the smallest generators are replaced by an
    /// enclosing axis-aligned box). Always an over-approximation.
    ///
    /// # Panics
    ///
    /// Panics if `max_order < 1.0`.
    #[must_use]
    pub fn reduce_order(&self, max_order: f64) -> Zonotope {
        assert!(max_order >= 1.0, "order must allow at least a box");
        let n = self.dim();
        let max_gens = (max_order * n as f64).floor() as usize;
        if self.generators.len() <= max_gens {
            return self.clone();
        }
        // Keep the longest generators; box the rest. Reserve n slots for the
        // box generators.
        let keep = max_gens.saturating_sub(n);
        let mut idx: Vec<usize> = (0..self.generators.len()).collect();
        idx.sort_by(|&a, &b| {
            let la: f64 = self.generators[a].iter().map(|v| v * v).sum();
            let lb: f64 = self.generators[b].iter().map(|v| v * v).sum();
            lb.total_cmp(&la)
        });
        let mut generators: Vec<Vec<f64>> = idx[..keep]
            .iter()
            .map(|&i| self.generators[i].clone())
            .collect();
        // Box enclosure of the discarded part.
        let mut radii = vec![0.0f64; n];
        for &i in &idx[keep..] {
            for (r, v) in radii.iter_mut().zip(&self.generators[i]) {
                *r += v.abs();
            }
        }
        for (i, &r) in radii.iter().enumerate() {
            if r > 0.0 {
                let mut g = vec![0.0; n];
                g[i] = r;
                generators.push(g);
            }
        }
        Zonotope::new(self.center.clone(), generators)
    }

    /// Whether `other`'s bounding description is contained in this
    /// zonotope's *bounding box* (a cheap sufficient check used in tests).
    #[must_use]
    pub fn box_contains(&self, p: &[f64]) -> bool {
        self.bounding_box().contains_point(p)
    }

    /// The exact convex polygon of a 2-D zonotope (generators sorted by
    /// angle trace out the boundary).
    ///
    /// # Panics
    ///
    /// Panics if the zonotope is not 2-dimensional.
    #[must_use]
    pub fn to_polygon(&self) -> Option<ConvexPolygon> {
        assert_eq!(self.dim(), 2, "to_polygon requires a 2-D zonotope");
        // Normalize generator signs into the upper half-plane and sort by
        // angle; walking them forward then backward traces the boundary.
        let mut gens: Vec<Vec2> = self
            .generators
            .iter()
            .map(|g| {
                let v = Vec2::new(g[0], g[1]);
                if v.y < 0.0 || (v.y == 0.0 && v.x < 0.0) {
                    -v
                } else {
                    v
                }
            })
            .filter(|v| v.norm() > 1e-300)
            .collect();
        gens.sort_by(|a, b| a.y.atan2(a.x).total_cmp(&b.y.atan2(b.x)));
        let c = Vec2::new(self.center[0], self.center[1]);
        // Start at the vertex minimizing y (all generators subtracted).
        let mut start = c;
        for g in &gens {
            start = start - *g;
        }
        let mut pts = Vec::with_capacity(2 * gens.len() + 2);
        let mut cur = start;
        pts.push(cur);
        for g in &gens {
            cur = cur + *g * 2.0;
            pts.push(cur);
        }
        for g in &gens {
            cur = cur - *g * 2.0;
            pts.push(cur);
        }
        ConvexPolygon::from_points(pts).ok()
    }
}

impl fmt::Display for Zonotope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Zonotope(c = {:?}, {} generators)",
            self.center,
            self.generators.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(z: &Zonotope, alphas: &[f64]) -> Vec<f64> {
        let mut x = z.center().to_vec();
        for (g, &a) in z.generators().iter().zip(alphas) {
            for (xi, gi) in x.iter_mut().zip(g) {
                *xi += a * gi;
            }
        }
        x
    }

    #[test]
    fn from_box_roundtrip() {
        let b = IntervalBox::from_bounds(&[(1.0, 3.0), (-2.0, 0.0)]);
        let z = Zonotope::from_box(&b);
        assert_eq!(z.bounding_box(), b);
        assert_eq!(z.generators().len(), 2);
    }

    #[test]
    fn degenerate_box_drops_zero_generators() {
        let b = IntervalBox::from_bounds(&[(1.0, 1.0), (0.0, 2.0)]);
        let z = Zonotope::from_box(&b);
        assert_eq!(z.generators().len(), 1);
    }

    #[test]
    fn affine_image_encloses_mapped_samples() {
        let z = Zonotope::from_box(&IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]));
        let m = vec![vec![1.0, 2.0], vec![-0.5, 1.0]];
        let b = vec![3.0, -1.0];
        let img = z.affine_image(&m, &b);
        for a0 in [-1.0, 0.0, 1.0] {
            for a1 in [-1.0, 0.3, 1.0] {
                let x = sample(&z, &[a0, a1]);
                let y = [
                    m[0][0] * x[0] + m[0][1] * x[1] + b[0],
                    m[1][0] * x[0] + m[1][1] * x[1] + b[1],
                ];
                assert!(img.bounding_box().inflate(1e-12).contains_point(&y));
            }
        }
    }

    #[test]
    fn minkowski_sum_support_adds() {
        let a = Zonotope::from_box(&IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]));
        let b = Zonotope::from_box(&IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]));
        let s = a.minkowski_sum(&b);
        for d in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [-1.0, 2.0]] {
            assert!((s.support(&d) - (a.support(&d) + b.support(&d))).abs() < 1e-12);
        }
    }

    #[test]
    fn support_matches_bounding_box_on_axes() {
        let z = Zonotope::new(vec![1.0, 2.0], vec![vec![0.5, 0.5], vec![-0.25, 0.75]]);
        let bb = z.bounding_box();
        assert!((z.support(&[1.0, 0.0]) - bb.interval(0).hi()).abs() < 1e-12);
        assert!((z.support(&[0.0, -1.0]) + bb.interval(1).lo()).abs() < 1e-12);
    }

    #[test]
    fn reduce_order_overapproximates() {
        let z = Zonotope::new(
            vec![0.0, 0.0],
            vec![
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![0.3, 0.3],
                vec![0.1, -0.2],
                vec![0.05, 0.02],
            ],
        );
        let r = z.reduce_order(1.5); // at most 3 generators
        assert!(r.generators().len() <= 3);
        // Support in every direction must not shrink.
        for k in 0..16 {
            let th = k as f64 * std::f64::consts::PI / 8.0;
            let d = [th.cos(), th.sin()];
            assert!(r.support(&d) >= z.support(&d) - 1e-12);
        }
    }

    #[test]
    fn reduce_order_noop_when_small() {
        let z = Zonotope::from_box(&IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]));
        assert_eq!(z.reduce_order(4.0), z);
    }

    #[test]
    fn to_polygon_matches_support() {
        let z = Zonotope::new(
            vec![1.0, -1.0],
            vec![vec![1.0, 0.2], vec![-0.3, 0.8], vec![0.5, 0.5]],
        );
        let p = z.to_polygon().expect("non-degenerate");
        // The polygon's support must match the zonotope's in many directions.
        for k in 0..24 {
            let th = k as f64 * std::f64::consts::PI / 12.0;
            let d = Vec2::new(th.cos(), th.sin());
            let ps = p.support(d).dot(d);
            let zs = z.support(&[d.x, d.y]);
            assert!(
                (ps - zs).abs() < 1e-9,
                "support mismatch at angle {th}: polygon {ps} vs zonotope {zs}"
            );
        }
        // Area of a zonotope: Σ_{i<j} 2·|gᵢ × gⱼ| ... cross-check numerically.
        let gens = z.generators();
        let mut area = 0.0;
        for i in 0..gens.len() {
            for j in (i + 1)..gens.len() {
                area += 4.0 * (gens[i][0] * gens[j][1] - gens[i][1] * gens[j][0]).abs();
            }
        }
        assert!((p.area() - area).abs() < 1e-9, "{} vs {area}", p.area());
    }

    #[test]
    fn point_zonotope() {
        let z = Zonotope::from_point(&[1.0, 2.0, 3.0]);
        assert_eq!(z.order(), 0.0);
        let bb = z.bounding_box();
        assert_eq!(bb.volume(), 0.0);
        assert!(bb.contains_point(&[1.0, 2.0, 3.0]));
    }
}
