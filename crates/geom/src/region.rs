//! Goal / unsafe region abstraction.

use crate::{ConvexPolygon, HalfSpace, Vec2};
use dwv_interval::{Interval, IntervalBox};
use std::fmt;

/// A goal or unsafe region of the state space.
///
/// The DAC'22 benchmarks use two region shapes:
///
/// * axis-aligned boxes, possibly unbounded in some dimensions — e.g. the ACC
///   unsafe set `{(s,v) : s ≤ 120}` is `[-∞,120] × [-∞,∞]`, and the 3-D
///   system's sets constrain only `x₁,x₂`;
/// * general half-spaces `n·x ≤ c`.
///
/// Measures of unbounded regions (the `|X_r ∩ X_u|` term of Eq. (2)) are
/// taken after clipping against a caller-supplied *universe* box; clipping
/// preserves the sign and monotonicity of the metric, which is all the
/// approximate gradient of Algorithm 1 consumes.
///
/// # Example
///
/// ```
/// use dwv_geom::Region;
/// use dwv_interval::IntervalBox;
///
/// // ACC unsafe region {s <= 120}:
/// let unsafe_region = Region::box_constraints(&[(f64::NEG_INFINITY, 120.0)], 2);
/// assert!(unsafe_region.contains_point(&[100.0, 40.0]));
/// let reach = IntervalBox::from_bounds(&[(122.0, 124.0), (48.0, 52.0)]);
/// assert!(!unsafe_region.intersects_box(&reach));
/// assert!((unsafe_region.distance_to_box(&reach) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// An axis-aligned box, possibly with infinite endpoints.
    Box(IntervalBox),
    /// A general half-space `n·x ≤ c`.
    HalfSpace(HalfSpace),
}

impl Region {
    /// Creates a box region from explicit bounds in every dimension.
    #[must_use]
    pub fn from_box(b: IntervalBox) -> Self {
        Region::Box(b)
    }

    /// Creates a box region that constrains only the first `bounds.len()`
    /// dimensions, leaving the remaining of `dim` dimensions unbounded.
    ///
    /// This matches how the paper specifies the 3-D system's goal/unsafe sets
    /// (constraints on `x₁, x₂` only).
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() > dim`.
    #[must_use]
    pub fn box_constraints(bounds: &[(f64, f64)], dim: usize) -> Self {
        assert!(bounds.len() <= dim, "more constraints than dimensions");
        let mut dims: Vec<Interval> = bounds.iter().map(|&(l, h)| Interval::new(l, h)).collect();
        dims.resize(dim, Interval::ENTIRE);
        Region::Box(IntervalBox::new(dims))
    }

    /// Creates a half-space region `n·x ≤ c`.
    #[must_use]
    pub fn from_halfspace(hs: HalfSpace) -> Self {
        Region::HalfSpace(hs)
    }

    /// The ambient dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Region::Box(b) => b.dim(),
            Region::HalfSpace(h) => h.dim(),
        }
    }

    /// Whether the point lies in the region.
    #[must_use]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        match self {
            Region::Box(b) => b.contains_point(p),
            Region::HalfSpace(h) => h.contains(p),
        }
    }

    /// Whether the region intersects the box.
    #[must_use]
    pub fn intersects_box(&self, b: &IntervalBox) -> bool {
        match self {
            Region::Box(r) => r.intersects(b),
            Region::HalfSpace(h) => h.intersects_box(b),
        }
    }

    /// Whether the box lies entirely inside the region.
    #[must_use]
    pub fn contains_box(&self, b: &IntervalBox) -> bool {
        match self {
            Region::Box(r) => r.contains(b),
            Region::HalfSpace(h) => h.contains_box(b),
        }
    }

    /// Euclidean distance between the region and the box (0 on intersection).
    #[must_use]
    pub fn distance_to_box(&self, b: &IntervalBox) -> f64 {
        match self {
            Region::Box(r) => r.distance(b),
            Region::HalfSpace(h) => h.distance_to_box(b),
        }
    }

    /// Euclidean distance between the region and a point (0 inside).
    #[must_use]
    pub fn distance_to_point(&self, p: &[f64]) -> f64 {
        match self {
            Region::Box(r) => r.distance_to_point(p),
            Region::HalfSpace(h) => h.distance_to_point(p),
        }
    }

    /// Volume of `region ∩ b`, clipped against `universe` so unbounded
    /// regions produce finite measures.
    ///
    /// Exact for box regions; for half-space regions in 2-D this is exact via
    /// polygon clipping, and in higher dimensions a deterministic grid
    /// estimate is used (documented approximation — the benchmark systems
    /// only use axis-aligned regions, which take the exact path).
    #[must_use]
    pub fn intersection_volume(&self, b: &IntervalBox, universe: &IntervalBox) -> f64 {
        let Some(b) = b.intersection(universe) else {
            return 0.0;
        };
        match self {
            Region::Box(r) => r.intersection(&b).map(|ix| ix.volume()).unwrap_or(0.0),
            Region::HalfSpace(h) => {
                if h.contains_box(&b) {
                    return b.volume();
                }
                if !h.intersects_box(&b) {
                    return 0.0;
                }
                if b.dim() == 2 {
                    let poly = ConvexPolygon::from_box(&b);
                    let hp = crate::HalfPlane::new([h.normal()[0], h.normal()[1]], h.offset());
                    poly.clip_halfplane(&hp).map(|p| p.area()).unwrap_or(0.0)
                } else {
                    grid_volume_estimate(h, &b)
                }
            }
        }
    }

    /// Area of `region ∩ polygon` (2-D, exact), clipped against `universe`.
    ///
    /// # Panics
    ///
    /// Panics if the region is not 2-dimensional.
    #[must_use]
    pub fn intersection_area(&self, poly: &ConvexPolygon, universe: &IntervalBox) -> f64 {
        assert_eq!(self.dim(), 2, "intersection_area requires a 2-D region");
        let Some(region_poly) = self.to_polygon(universe) else {
            return 0.0;
        };
        poly.intersect(&region_poly)
            .map(|p| p.area())
            .unwrap_or(0.0)
    }

    /// Euclidean distance between the region and a convex polygon (2-D,
    /// exact; 0 on intersection).
    ///
    /// # Panics
    ///
    /// Panics if the region is not 2-dimensional.
    #[must_use]
    pub fn distance_to_polygon(&self, poly: &ConvexPolygon) -> f64 {
        assert_eq!(self.dim(), 2, "distance_to_polygon requires a 2-D region");
        match self {
            Region::HalfSpace(h) => {
                // Convex: the min of n·x over the polygon is at a vertex.
                let n = Vec2::new(h.normal()[0], h.normal()[1]);
                let min_nx = poly
                    .vertices()
                    .iter()
                    .map(|v| n.dot(*v))
                    .fold(f64::INFINITY, f64::min);
                ((min_nx - h.offset()) / n.norm()).max(0.0)
            }
            Region::Box(_) => {
                // Clip-free exact distance: build a bounded polygon from the
                // region using the polygon's own bounding box (inflated) as
                // the universe; distance only depends on the nearby geometry.
                let pad = 10.0
                    * poly
                        .bounding_box()
                        .intervals()
                        .iter()
                        .map(|iv| iv.width() + iv.mid().abs())
                        .fold(1.0, f64::max);
                let local = poly.bounding_box().inflate(pad);
                match self.to_polygon(&local) {
                    Some(rp) => poly.distance_to(&rp),
                    None => f64::INFINITY,
                }
            }
        }
    }

    /// The region clipped to `universe`, as a convex polygon (2-D only).
    ///
    /// Returns `None` when the clipped region is empty or degenerate.
    ///
    /// # Panics
    ///
    /// Panics if the region or universe is not 2-dimensional or the universe
    /// is unbounded.
    #[must_use]
    pub fn to_polygon(&self, universe: &IntervalBox) -> Option<ConvexPolygon> {
        assert_eq!(self.dim(), 2, "to_polygon requires a 2-D region");
        assert_eq!(universe.dim(), 2, "universe must be 2-D");
        match self {
            Region::Box(r) => {
                let clipped = r.intersection(universe)?;
                if clipped.volume() <= 0.0 {
                    return None;
                }
                Some(ConvexPolygon::from_box(&clipped))
            }
            Region::HalfSpace(h) => {
                let hp = crate::HalfPlane::new([h.normal()[0], h.normal()[1]], h.offset());
                ConvexPolygon::from_box(universe).clip_halfplane(&hp)
            }
        }
    }

    /// A representative interior point of the region (clipped to
    /// `universe`): the clipped-box center for box regions, the universe
    /// center projected onto the half-space for half-space regions.
    ///
    /// Used as a shaping anchor by learners when a reach set has drifted so
    /// far that set-distance metrics saturate.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with `universe`.
    #[must_use]
    pub fn anchor(&self, universe: &IntervalBox) -> Vec<f64> {
        assert_eq!(self.dim(), universe.dim(), "dimension mismatch");
        match self {
            Region::Box(r) => r
                .intersection(universe)
                .map(|c| c.center())
                .unwrap_or_else(|| universe.center()),
            Region::HalfSpace(h) => {
                let c = universe.center();
                if h.contains(&c) {
                    return c;
                }
                // Project onto the boundary n·x = offset.
                let n = h.normal();
                let norm_sq: f64 = n.iter().map(|v| v * v).sum();
                let slack = h.signed_slack(&c); // negative outside
                c.iter()
                    .zip(n)
                    .map(|(ci, ni)| ci + ni * slack / norm_sq)
                    .collect()
            }
        }
    }

    /// The region clipped to `universe` as a box, when the region is a box.
    ///
    /// Half-space regions return `None` (they are not axis-aligned); callers
    /// needing samples from half-space regions should rejection-sample with
    /// [`Region::contains_point`].
    #[must_use]
    pub fn clipped_box(&self, universe: &IntervalBox) -> Option<IntervalBox> {
        match self {
            Region::Box(r) => r.intersection(universe),
            Region::HalfSpace(_) => None,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Box(b) => write!(f, "Box{b}"),
            Region::HalfSpace(h) => write!(f, "{h}"),
        }
    }
}

impl From<IntervalBox> for Region {
    fn from(b: IntervalBox) -> Self {
        Region::Box(b)
    }
}

impl From<HalfSpace> for Region {
    fn from(h: HalfSpace) -> Self {
        Region::HalfSpace(h)
    }
}

/// Deterministic mid-point grid estimate of `|halfspace ∩ box|` for n-D
/// half-spaces (n > 2). Resolution 16 per axis.
fn grid_volume_estimate(h: &HalfSpace, b: &IntervalBox) -> f64 {
    const RES: usize = 16;
    let cells = b.partition(&vec![RES; b.dim()]);
    let cell_vol = b.volume() / cells.len() as f64;
    cells.iter().filter(|c| h.contains(&c.center())).count() as f64 * cell_vol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> IntervalBox {
        IntervalBox::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)])
    }

    #[test]
    fn box_constraints_pads_unbounded() {
        let r = Region::box_constraints(&[(0.0, 1.0)], 3);
        assert_eq!(r.dim(), 3);
        assert!(r.contains_point(&[0.5, 1e9, -1e9]));
        assert!(!r.contains_point(&[2.0, 0.0, 0.0]));
    }

    #[test]
    fn intersection_volume_box_exact() {
        let r = Region::from_box(IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]));
        let b = IntervalBox::from_bounds(&[(1.0, 3.0), (1.0, 3.0)]);
        assert!((r.intersection_volume(&b, &universe()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_volume_unbounded_region_clipped() {
        // {x <= 0} over universe [-10,10]^2 intersected with [-1,1]x[0,1]
        let r = Region::box_constraints(&[(f64::NEG_INFINITY, 0.0)], 2);
        let b = IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 1.0)]);
        assert!((r.intersection_volume(&b, &universe()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_volume_halfspace_2d_exact() {
        let r = Region::from_halfspace(HalfSpace::new(vec![1.0, 1.0], 1.0)); // x+y <= 1
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        // Triangle below x+y=1 in the unit square has area 1/2.
        assert!((r.intersection_volume(&b, &universe()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn intersection_volume_halfspace_3d_estimate() {
        let r = Region::from_halfspace(HalfSpace::new(vec![1.0, 0.0, 0.0], 0.5));
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]);
        let u = IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0), (-2.0, 2.0)]);
        let v = r.intersection_volume(&b, &u);
        assert!((v - 0.5).abs() < 0.1, "grid estimate {v} too far from 0.5");
    }

    #[test]
    fn distance_box_region() {
        let r = Region::from_box(IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]));
        let b = IntervalBox::from_bounds(&[(3.0, 4.0), (0.0, 1.0)]);
        assert!((r.distance_to_box(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_halfspace_polygon() {
        let r = Region::from_halfspace(HalfSpace::new(vec![1.0, 0.0], 0.0)); // x <= 0
        let poly = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 1.0)]));
        assert!((r.distance_to_polygon(&poly) - 2.0).abs() < 1e-12);
        let touching =
            ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(-1.0, 1.0), (0.0, 1.0)]));
        assert_eq!(r.distance_to_polygon(&touching), 0.0);
    }

    #[test]
    fn distance_box_region_polygon() {
        let r = Region::from_box(IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]));
        let poly = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(4.0, 5.0), (0.0, 1.0)]));
        assert!((r.distance_to_polygon(&poly) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_area_with_polygon() {
        let r = Region::from_box(IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]));
        let poly = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(1.0, 3.0), (1.0, 3.0)]));
        assert!((r.intersection_area(&poly, &universe()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn to_polygon_halfspace() {
        let r = Region::from_halfspace(HalfSpace::new(vec![0.0, 1.0], 0.0)); // y <= 0
        let p = r.to_polygon(&universe()).unwrap();
        assert!((p.area() - 200.0).abs() < 1e-9); // half of the 20x20 universe
    }

    #[test]
    fn contains_box_region() {
        let r = Region::box_constraints(&[(0.0, 10.0)], 2);
        let inside = IntervalBox::from_bounds(&[(1.0, 2.0), (-50.0, 50.0)]);
        assert!(r.contains_box(&inside));
        let outside = IntervalBox::from_bounds(&[(9.0, 11.0), (0.0, 1.0)]);
        assert!(!r.contains_box(&outside));
    }

    #[test]
    fn anchor_points() {
        let r = Region::from_box(IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]));
        assert_eq!(r.anchor(&universe()), vec![1.0, 1.0]);
        let unbounded = Region::box_constraints(&[(0.0, 2.0)], 2);
        assert_eq!(unbounded.anchor(&universe()), vec![1.0, 0.0]);
        let hs = Region::from_halfspace(HalfSpace::new(vec![1.0, 0.0], -5.0));
        let a = hs.anchor(&universe());
        assert!((a[0] - -5.0).abs() < 1e-12 && a[1].abs() < 1e-12);
        // Universe center already inside: returned unchanged.
        let hs_in = Region::from_halfspace(HalfSpace::new(vec![1.0, 0.0], 100.0));
        assert_eq!(hs_in.anchor(&universe()), vec![0.0, 0.0]);
    }

    #[test]
    fn clipped_box_cases() {
        let r = Region::box_constraints(&[(f64::NEG_INFINITY, 0.0)], 2);
        let c = r.clipped_box(&universe()).unwrap();
        assert_eq!(c, IntervalBox::from_bounds(&[(-10.0, 0.0), (-10.0, 10.0)]));
        let h = Region::from_halfspace(HalfSpace::new(vec![1.0, 1.0], 0.0));
        assert!(h.clipped_box(&universe()).is_none());
    }
}
