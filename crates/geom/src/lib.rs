//! Convex geometry for reachable-set metrics.
//!
//! The Design-while-Verify framework measures reachable sets against goal and
//! unsafe regions (paper §3.2, Fig. 1). This crate supplies the geometric
//! machinery:
//!
//! * [`Vec2`] — plane vectors,
//! * [`ConvexPolygon`] — exact 2-D convex sets with Sutherland–Hodgman
//!   clipping, shoelace area, affine images and set–set distances (the linear
//!   verifier's reach sets are convex polygons, computed exactly),
//! * [`HalfPlane`] / [`HalfSpace`] — linear constraints in 2-D / n-D,
//! * [`Region`] — the goal/unsafe region abstraction shared by the metrics
//!   crate: axis-aligned boxes (possibly unbounded, which models the ACC
//!   unsafe set `{s ≤ 120}`) and general half-spaces.
//!
//! # Example
//!
//! ```
//! use dwv_geom::{ConvexPolygon, Vec2};
//!
//! let square = ConvexPolygon::from_points(vec![
//!     Vec2::new(0.0, 0.0),
//!     Vec2::new(2.0, 0.0),
//!     Vec2::new(2.0, 2.0),
//!     Vec2::new(0.0, 2.0),
//! ]).expect("square is non-degenerate");
//! let tri = ConvexPolygon::from_points(vec![
//!     Vec2::new(1.0, 1.0),
//!     Vec2::new(3.0, 1.0),
//!     Vec2::new(1.0, 3.0),
//! ]).expect("triangle is non-degenerate");
//! let inter = square.intersect(&tri).expect("they overlap");
//! assert!(inter.area() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
mod halfspace;
mod polygon;
mod region;
mod vec2;
mod zonotope;

pub use halfspace::{HalfPlane, HalfSpace};
pub use polygon::{ConvexPolygon, DegeneratePolygonError};
pub use region::Region;
pub use vec2::Vec2;
pub use zonotope::Zonotope;
