//! Stochastic value gradients (SVG), the model-based baseline.
//!
//! Heess et al., NIPS 2015. The variant here exploits that the benchmark
//! dynamics are *known*: each iteration rolls the deterministic policy out
//! through the true model from sampled initial states and back-propagates
//! the discounted reward through the model (SVG(∞)-style), with the
//! per-step discrete-dynamics Jacobians obtained by central differences of
//! the RK4 step. Like DDPG it is *design-then-verify*: no verifier feedback
//! during training.

use crate::convergence::{ConvergenceChecker, TrainOutcome};
use crate::reward::Reward;
use dwv_dynamics::{simulate::Simulator, NnController, ReachAvoidProblem};
use dwv_nn::{Activation, Adam, Network, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVG hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvgConfig {
    /// Policy hidden sizes.
    pub hidden: Vec<usize>,
    /// Policy output scale.
    pub action_scale: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Learning rate.
    pub lr: f64,
    /// Rollouts averaged per update.
    pub rollouts_per_update: usize,
    /// Convergence check cadence (updates).
    pub check_every: usize,
    /// Exploration noise added to initial states (fraction of X₀ radius).
    pub init_jitter: f64,
}

impl Default for SvgConfig {
    fn default() -> Self {
        Self {
            hidden: vec![16],
            action_scale: 1.0,
            gamma: 0.99,
            lr: 5e-3,
            rollouts_per_update: 4,
            check_every: 5,
            init_jitter: 0.0,
        }
    }
}

/// The SVG agent.
///
/// # Example
///
/// ```no_run
/// use dwv_baselines::{Svg, SvgConfig};
/// use dwv_dynamics::oscillator;
///
/// let problem = oscillator::reach_avoid_problem();
/// let mut agent = Svg::new(&problem, SvgConfig::default(), 0);
/// let outcome = agent.train(400);
/// println!("converged: {:?}", outcome.convergence_episode);
/// ```
pub struct Svg {
    problem: ReachAvoidProblem,
    config: SvgConfig,
    reward: Reward,
    policy: Network,
    opt: Adam,
    rng: StdRng,
    checker: ConvergenceChecker,
}

impl Svg {
    /// Creates an agent (deterministic in `seed`).
    #[must_use]
    pub fn new(problem: &ReachAvoidProblem, config: SvgConfig, seed: u64) -> Self {
        let mut sizes = vec![problem.n_state()];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(problem.n_input());
        let policy = Network::new(&sizes, Activation::ReLU, Activation::Tanh, seed);
        let opt = Adam::new(policy.num_params(), config.lr);
        Self {
            reward: Reward::for_problem(problem),
            checker: ConvergenceChecker::new(problem),
            problem: problem.clone(),
            policy,
            opt,
            rng: StdRng::seed_from_u64(seed ^ 0x57A9),
            config,
        }
    }

    /// The current policy as a controller.
    #[must_use]
    pub fn policy(&self) -> NnController {
        NnController::with_output_scale(self.policy.clone(), self.config.action_scale)
    }

    /// Trains for up to `max_updates` value-gradient updates, stopping early
    /// on convergence.
    pub fn train(&mut self, max_updates: usize) -> TrainOutcome {
        let sim = Simulator::new(self.problem.dynamics.clone(), self.problem.delta);
        let mut converged_at = None;
        let mut updates = 0;
        for it in 1..=max_updates {
            updates = it;
            let mut grad = vec![0.0; self.policy.num_params()];
            for _ in 0..self.config.rollouts_per_update {
                let g = self.rollout_gradient(&sim);
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b / self.config.rollouts_per_update as f64;
                }
            }
            // Ascend the value: Adam minimizes, so negate.
            let neg: Vec<f64> = grad.iter().map(|g| -g).collect();
            let mut params = self.policy.params();
            self.opt.step(&mut params, &neg);
            self.policy.set_params(&params);
            if it % self.config.check_every == 0 && self.checker.converged(&self.policy()) {
                converged_at = Some(it);
                break;
            }
        }
        TrainOutcome {
            controller: self.policy(),
            convergence_episode: converged_at,
            episodes_run: updates,
        }
    }

    /// `∂(Σ_t γᵗ r(s_t))/∂θ` for one rollout, by forward-mode sensitivity
    /// propagation through the known model.
    fn rollout_gradient(&mut self, sim: &Simulator) -> Vec<f64> {
        let n = self.problem.n_state();
        let m = self.problem.n_input();
        let np = self.policy.num_params();
        let scale = self.config.action_scale;
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                let iv = self.problem.x0.interval(i);
                let jitter = self.config.init_jitter * iv.rad();
                self.rng.gen_range(iv.lo() - jitter..=iv.hi() + jitter)
            })
            .collect();
        // Sensitivity S = ds/dθ (n × np), initially zero.
        let mut s = vec![vec![0.0; np]; n];
        let mut grad = vec![0.0; np];
        let mut discount = 1.0;
        for _ in 0..self.problem.horizon_steps {
            let a: Vec<f64> = self
                .policy
                .forward(&x)
                .into_iter()
                .map(|v| v * scale)
                .collect();
            // Policy Jacobians.
            let da_dx: Vec<Vec<f64>> = self
                .policy
                .input_jacobian(&x)
                .into_iter()
                .map(|row| row.into_iter().map(|v| v * scale).collect())
                .collect();
            let da_dtheta: Vec<Vec<f64>> = (0..m)
                .map(|o| {
                    let mut d = vec![0.0; m];
                    d[o] = scale;
                    self.policy.gradient(&x, &d).0
                })
                .collect();
            // Discrete-step Jacobians by central differences of the ZOH map.
            let step = |x: &[f64], a: &[f64]| -> Vec<f64> {
                let mut y = x.to_vec();
                let h = self.problem.delta / 10.0;
                for _ in 0..10 {
                    y = sim.rk4_step(&y, a, h);
                }
                y
            };
            let eps = 1e-6;
            let mut fx = vec![vec![0.0; n]; n];
            for j in 0..n {
                let mut xp = x.clone();
                xp[j] += eps;
                let mut xm = x.clone();
                xm[j] -= eps;
                let yp = step(&xp, &a);
                let ym = step(&xm, &a);
                for i in 0..n {
                    fx[i][j] = (yp[i] - ym[i]) / (2.0 * eps);
                }
            }
            let mut fa = vec![vec![0.0; m]; n];
            for j in 0..m {
                let mut ap = a.clone();
                ap[j] += eps;
                let mut am = a.clone();
                am[j] -= eps;
                let yp = step(&x, &ap);
                let ym = step(&x, &am);
                for i in 0..n {
                    fa[i][j] = (yp[i] - ym[i]) / (2.0 * eps);
                }
            }
            // Total action sensitivity: dA = da_dθ + da_dx · S.
            let mut da = da_dtheta.clone();
            for o in 0..m {
                for p in 0..np {
                    let mut acc = da_dtheta[o][p];
                    for j in 0..n {
                        acc += da_dx[o][j] * s[j][p];
                    }
                    da[o][p] = acc;
                }
            }
            // S ← Fx·S + Fa·dA.
            let mut s_next = vec![vec![0.0; np]; n];
            for i in 0..n {
                for p in 0..np {
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += fx[i][j] * s[j][p];
                    }
                    for o in 0..m {
                        acc += fa[i][o] * da[o][p];
                    }
                    s_next[i][p] = acc;
                }
            }
            s = s_next;
            x = step(&x, &a);
            discount *= self.config.gamma;
            // Accumulate γᵗ ∇_s r(s_{t+1})ᵀ · S.
            let dr = self.reward.gradient(&x);
            for p in 0..np {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += dr[i] * s[i][p];
                }
                grad[p] += discount * acc;
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::{eval::rates, oscillator, Controller};

    #[test]
    fn gradient_matches_finite_difference_of_return() {
        // Tiny policy for a cheap FD cross-check of the BPTT machinery.
        let p = oscillator::reach_avoid_problem();
        let mut short = p.clone();
        short.horizon_steps = 4;
        let cfg = SvgConfig {
            hidden: vec![3],
            ..SvgConfig::default()
        };
        let mut agent = Svg::new(&short, cfg.clone(), 5);
        let sim = Simulator::new(short.dynamics.clone(), short.delta);

        // Deterministic start for the comparison.
        let x0 = [-0.5, 0.5];
        let reward = Reward::for_problem(&short);
        let ret = |policy: &Network| -> f64 {
            let ctrl = NnController::with_output_scale(policy.clone(), cfg.action_scale);
            let traj = sim.rollout(&x0, &ctrl, short.horizon_steps);
            let mut acc = 0.0;
            let mut disc = 1.0;
            for st in traj.states.iter().skip(1) {
                disc *= cfg.gamma;
                acc += disc * reward.reward(st);
            }
            acc
        };
        // Compute analytic gradient from the same fixed x0 by temporarily
        // pinning X0 to a point.
        agent.problem.x0 = dwv_interval::IntervalBox::from_point(&x0);
        let g = agent.rollout_gradient(&sim);
        let theta = agent.policy.params();
        let h = 1e-6;
        for idx in (0..theta.len()).step_by(4) {
            let mut tp = theta.clone();
            tp[idx] += h;
            agent.policy.set_params(&tp);
            let rp = ret(&agent.policy);
            let mut tm = theta.clone();
            tm[idx] -= h;
            agent.policy.set_params(&tm);
            let rm = ret(&agent.policy);
            agent.policy.set_params(&theta);
            let fd = (rp - rm) / (2.0 * h);
            assert!(
                (g[idx] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {idx}: bptt {} vs fd {fd}",
                g[idx]
            );
        }
    }

    #[test]
    fn svg_improves_goal_distance_on_oscillator() {
        let p = oscillator::reach_avoid_problem();
        let mut agent = Svg::new(&p, SvgConfig::default(), 11);
        let before = rates(&p, &agent.policy(), 50, 1);
        let _ = agent.train(60);
        let after = rates(&p, &agent.policy(), 50, 1);
        // Goal-reaching should not get worse and usually improves a lot.
        assert!(
            after.goal_rate >= before.goal_rate,
            "GR degraded: {} -> {}",
            before.goal_rate,
            after.goal_rate
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let p = oscillator::reach_avoid_problem();
        let mut a = Svg::new(&p, SvgConfig::default(), 9);
        let mut b = Svg::new(&p, SvgConfig::default(), 9);
        let _ = a.train(3);
        let _ = b.train(3);
        assert_eq!(a.policy().params(), b.policy().params());
    }
}
