//! Shared convergence accounting for the baselines.
//!
//! Table 1's CI column needs a convergence criterion comparable across
//! methods. For the RL baselines we declare convergence when a validation
//! batch of simulated rollouts achieves 100% safe-control *and* 100%
//! goal-reaching — the same empirical property the table's SC/GR columns
//! measure.

use dwv_dynamics::{eval::rates, Controller, NnController, ReachAvoidProblem};

/// Periodic empirical convergence check.
#[derive(Debug, Clone)]
pub struct ConvergenceChecker {
    problem: ReachAvoidProblem,
    /// Validation rollouts per check.
    pub n_samples: usize,
    /// RNG seed for the validation batch.
    pub seed: u64,
}

impl ConvergenceChecker {
    /// Creates a checker with a 100-rollout validation batch.
    #[must_use]
    pub fn new(problem: &ReachAvoidProblem) -> Self {
        Self {
            problem: problem.clone(),
            n_samples: 100,
            seed: 0xC0FFEE,
        }
    }

    /// Whether the controller empirically reach-avoids on the validation
    /// batch.
    #[must_use]
    pub fn converged<C: Controller + ?Sized>(&self, controller: &C) -> bool {
        rates(&self.problem, controller, self.n_samples, self.seed).is_perfect()
    }
}

/// The outcome of a baseline training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained policy.
    pub controller: NnController,
    /// Training iteration (episodes for DDPG, model rollouts for SVG) at
    /// which the convergence criterion first held; `None` when the budget
    /// ran out first.
    pub convergence_episode: Option<usize>,
    /// Iterations actually executed.
    pub episodes_run: usize,
}

impl TrainOutcome {
    /// Whether training converged within its budget.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.convergence_episode.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::acc;
    use dwv_dynamics::LinearController;

    #[test]
    fn known_good_controller_converges() {
        let p = acc::reach_avoid_problem();
        let c = ConvergenceChecker::new(&p);
        assert!(c.converged(&LinearController::new(2, 1, vec![0.5867, -2.0])));
        assert!(!c.converged(&LinearController::zeros(2, 1)));
    }
}
