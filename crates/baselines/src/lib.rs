//! Design-then-verify baselines: DDPG and SVG.
//!
//! The paper compares Design-while-Verify against two reinforcement-learning
//! baselines that follow the conventional open-loop *design-then-verify*
//! process (§4):
//!
//! * [`Ddpg`] — model-free deep deterministic policy gradient [Lillicrap et
//!   al., ICLR'16]: actor/critic MLPs, replay buffer, soft target updates,
//!   Ornstein–Uhlenbeck exploration noise;
//! * [`Svg`] — model-based stochastic value gradients [Heess et al.,
//!   NIPS'15]: back-propagation of the reward through the known dynamics
//!   over a finite horizon (Jacobians by central differences);
//! * [`reward`] — the paper's reward: minimize the Euclidean distance to the
//!   goal-set center while maximizing the distance to the unsafe-set center.
//!
//! Both baselines report *convergence iterations* with the same convergence
//! criterion used for Table 1 (simulated safe-control and goal-reaching on a
//! validation batch), so the CI column is comparable to Algorithm 1's.
//!
//! # Example
//!
//! ```no_run
//! use dwv_baselines::{Ddpg, DdpgConfig};
//! use dwv_dynamics::oscillator;
//!
//! let problem = oscillator::reach_avoid_problem();
//! let mut agent = Ddpg::new(&problem, DdpgConfig::default(), 0);
//! let outcome = agent.train(2_000);
//! println!("converged after {:?} episodes", outcome.convergence_episode);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convergence;
mod ddpg;
pub mod reward;
mod svg;

pub use convergence::{ConvergenceChecker, TrainOutcome};
pub use ddpg::{Ddpg, DdpgConfig};
pub use svg::{Svg, SvgConfig};
