//! The baselines' reward function.
//!
//! Per the paper (§4): "The reward functions in DDPG and SVG are designed to
//! minimize the Euclidean distance to the goal set center and maximize the
//! distance to the unsafe set center."

use dwv_dynamics::ReachAvoidProblem;

/// The reward `r(x) = −‖x − g_c‖ + λ·min(‖x − u_c‖, cap)`.
///
/// The unsafe-distance term is capped so that running arbitrarily far from
/// the unsafe center cannot dominate goal progress (without a cap the reward
/// is unbounded above and both baselines diverge to infinity — an honest
/// hazard of the paper's reward shape that we tame the standard way).
#[derive(Debug, Clone)]
pub struct Reward {
    goal_center: Vec<f64>,
    unsafe_center: Vec<f64>,
    /// Weight λ of the unsafe-distance term.
    pub unsafe_weight: f64,
    /// Cap on the unsafe-distance term.
    pub unsafe_cap: f64,
}

impl Reward {
    /// Builds the paper's reward for a problem.
    #[must_use]
    pub fn for_problem(problem: &ReachAvoidProblem) -> Self {
        Self {
            goal_center: problem.goal_region.anchor(&problem.universe),
            unsafe_center: problem.unsafe_region.anchor(&problem.universe),
            unsafe_weight: 0.2,
            unsafe_cap: 2.0
                * problem
                    .universe
                    .radii()
                    .iter()
                    .fold(0.0f64, |m, &r| m.max(r)),
        }
    }

    /// The reward at a state.
    #[must_use]
    pub fn reward(&self, x: &[f64]) -> f64 {
        -dist(x, &self.goal_center)
            + self.unsafe_weight * dist(x, &self.unsafe_center).min(self.unsafe_cap)
    }

    /// The reward gradient `∂r/∂x` (used by SVG's backprop through the
    /// model; smooth except exactly at the centers, where we return 0).
    #[must_use]
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let dg = dist(x, &self.goal_center);
        let du = dist(x, &self.unsafe_center);
        (0..x.len())
            .map(|i| {
                let mut g = 0.0;
                if dg > 1e-9 {
                    g -= (x[i] - self.goal_center[i]) / dg;
                }
                if du > 1e-9 && du < self.unsafe_cap {
                    g += self.unsafe_weight * (x[i] - self.unsafe_center[i]) / du;
                }
                g
            })
            .collect()
    }

    /// The goal anchor.
    #[must_use]
    pub fn goal_center(&self) -> &[f64] {
        &self.goal_center
    }
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::acc;

    #[test]
    fn reward_highest_at_goal_center() {
        let p = acc::reach_avoid_problem();
        let r = Reward::for_problem(&p);
        let at_goal = r.reward(r.goal_center().to_vec().as_slice());
        let away = r.reward(&[123.0, 50.0]);
        assert!(at_goal > away);
    }

    #[test]
    fn reward_penalizes_unsafe_proximity() {
        let p = acc::reach_avoid_problem();
        let r = Reward::for_problem(&p);
        // Same distance to goal along the s axis, nearer/farther from unsafe.
        let near_unsafe = r.reward(&[130.0, 40.0]);
        let far_unsafe = r.reward(&[170.0, 40.0]);
        // 130 and 170 are both 20 from goal center s=150; 170 is farther
        // from the unsafe anchor.
        assert!(far_unsafe > near_unsafe);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = acc::reach_avoid_problem();
        let r = Reward::for_problem(&p);
        let x = [130.0, 45.0];
        let g = r.gradient(&x);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (r.reward(&xp) - r.reward(&xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "dim {i}: {} vs {fd}", g[i]);
        }
    }
}
