//! Deep deterministic policy gradient (DDPG), the model-free baseline.
//!
//! Lillicrap et al., ICLR 2016 — actor/critic MLPs, experience replay, soft
//! target networks and Ornstein–Uhlenbeck exploration noise, trained on the
//! paper's distance-shaped reward. DDPG follows the open-loop
//! *design-then-verify* process: no verifier is consulted during training;
//! the trained policy is verified afterwards (usually unsuccessfully —
//! Table 1's `Unknown`/`Unsafe` rows).

use crate::convergence::{ConvergenceChecker, TrainOutcome};
use crate::reward::Reward;
use dwv_dynamics::{simulate::Simulator, Controller, NnController, ReachAvoidProblem};
use dwv_nn::{Activation, Adam, Network, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DDPG hyper-parameters.
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Actor/critic hidden sizes.
    pub hidden: Vec<usize>,
    /// Actor output scale (Tanh output × scale).
    pub action_scale: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Soft target-update coefficient τ.
    pub tau: f64,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Gradient updates per environment step.
    pub updates_per_step: usize,
    /// OU noise stiffness.
    pub ou_theta: f64,
    /// OU noise scale.
    pub ou_sigma: f64,
    /// Convergence check cadence (episodes).
    pub check_every: usize,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32],
            action_scale: 1.0,
            gamma: 0.99,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            tau: 0.01,
            replay_capacity: 100_000,
            batch_size: 32,
            updates_per_step: 1,
            ou_theta: 0.15,
            ou_sigma: 0.2,
            check_every: 10,
        }
    }
}

/// One replay transition.
#[derive(Debug, Clone)]
struct Transition {
    s: Vec<f64>,
    a: Vec<f64>,
    r: f64,
    s2: Vec<f64>,
    done: bool,
}

/// The DDPG agent.
///
/// # Example
///
/// ```no_run
/// use dwv_baselines::{Ddpg, DdpgConfig};
/// use dwv_dynamics::oscillator;
///
/// let problem = oscillator::reach_avoid_problem();
/// let mut agent = Ddpg::new(&problem, DdpgConfig::default(), 0);
/// let outcome = agent.train(500);
/// println!("converged: {:?}", outcome.convergence_episode);
/// ```
pub struct Ddpg {
    problem: ReachAvoidProblem,
    config: DdpgConfig,
    reward: Reward,
    actor: Network,
    critic: Network,
    actor_target: Network,
    critic_target: Network,
    actor_opt: Adam,
    critic_opt: Adam,
    replay: Vec<Transition>,
    replay_head: usize,
    rng: StdRng,
    checker: ConvergenceChecker,
}

impl Ddpg {
    /// Creates an agent (deterministic in `seed`).
    #[must_use]
    pub fn new(problem: &ReachAvoidProblem, config: DdpgConfig, seed: u64) -> Self {
        let n = problem.n_state();
        let m = problem.n_input();
        let mut actor_sizes = vec![n];
        actor_sizes.extend_from_slice(&config.hidden);
        actor_sizes.push(m);
        let mut critic_sizes = vec![n + m];
        critic_sizes.extend_from_slice(&config.hidden);
        critic_sizes.push(1);
        let actor = Network::new(&actor_sizes, Activation::ReLU, Activation::Tanh, seed);
        let critic = Network::new(
            &critic_sizes,
            Activation::ReLU,
            Activation::Identity,
            seed ^ 0xAB,
        );
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic_opt = Adam::new(critic.num_params(), config.critic_lr);
        Self {
            reward: Reward::for_problem(problem),
            checker: ConvergenceChecker::new(problem),
            problem: problem.clone(),
            actor_target: actor.clone(),
            critic_target: critic.clone(),
            actor,
            critic,
            actor_opt,
            critic_opt,
            replay: Vec::new(),
            replay_head: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xDD96),
            config,
        }
    }

    /// The current policy as a controller.
    #[must_use]
    pub fn policy(&self) -> NnController {
        NnController::with_output_scale(self.actor.clone(), self.config.action_scale)
    }

    /// Trains for up to `max_episodes` episodes, checking convergence
    /// periodically; stops early on convergence.
    pub fn train(&mut self, max_episodes: usize) -> TrainOutcome {
        let sim = Simulator::new(self.problem.dynamics.clone(), self.problem.delta);
        let mut converged_at = None;
        let mut episodes = 0;
        for ep in 1..=max_episodes {
            episodes = ep;
            self.run_episode(&sim);
            if ep % self.config.check_every == 0 && self.checker.converged(&self.policy()) {
                converged_at = Some(ep);
                break;
            }
        }
        TrainOutcome {
            controller: self.policy(),
            convergence_episode: converged_at,
            episodes_run: episodes,
        }
    }

    fn run_episode(&mut self, sim: &Simulator) {
        let mut x: Vec<f64> = (0..self.problem.x0.dim())
            .map(|i| {
                let iv = self.problem.x0.interval(i);
                self.rng.gen_range(iv.lo()..=iv.hi())
            })
            .collect();
        let m = self.problem.n_input();
        let mut noise = vec![0.0f64; m];
        let h = self.problem.delta / 10.0;
        for step in 0..self.problem.horizon_steps {
            // OU noise.
            for nz in noise.iter_mut() {
                *nz += -self.config.ou_theta * *nz
                    + self.config.ou_sigma * self.rng.gen_range(-1.0..1.0);
            }
            let mut a = self.policy().control(&x);
            for (ai, nz) in a.iter_mut().zip(&noise) {
                *ai = (*ai + nz * self.config.action_scale)
                    .clamp(-self.config.action_scale, self.config.action_scale);
            }
            // One zero-order-hold period.
            let mut x2 = x.clone();
            for _ in 0..10 {
                x2 = sim.rk4_step(&x2, &a, h);
            }
            let r = self.reward.reward(&x2);
            let done = step + 1 == self.problem.horizon_steps;
            self.push_replay(Transition {
                s: x.clone(),
                a,
                r,
                s2: x2.clone(),
                done,
            });
            for _ in 0..self.config.updates_per_step {
                self.update();
            }
            x = x2;
        }
    }

    fn push_replay(&mut self, t: Transition) {
        if self.replay.len() < self.config.replay_capacity {
            self.replay.push(t);
        } else {
            self.replay[self.replay_head] = t;
            self.replay_head = (self.replay_head + 1) % self.config.replay_capacity;
        }
    }

    /// One mini-batch actor/critic update.
    fn update(&mut self) {
        if self.replay.len() < self.config.batch_size {
            return;
        }
        let b = self.config.batch_size;
        let scale = self.config.action_scale;
        let mut critic_grad = vec![0.0; self.critic.num_params()];
        let mut actor_grad = vec![0.0; self.actor.num_params()];
        for _ in 0..b {
            let t = &self.replay[self.rng.gen_range(0..self.replay.len())];
            // Critic target y = r + γ(1 − done)·Q'(s', μ'(s')).
            let a2: Vec<f64> = self
                .actor_target
                .forward(&t.s2)
                .into_iter()
                .map(|v| v * scale)
                .collect();
            let q2 = self.critic_target.forward(&concat(&t.s2, &a2))[0];
            let y = t.r + if t.done { 0.0 } else { self.config.gamma * q2 };
            let sa = concat(&t.s, &t.a);
            let q = self.critic.forward(&sa)[0];
            let dq = 2.0 * (q - y) / b as f64;
            let (cg, _) = self.critic.gradient(&sa, &[dq]);
            add_into(&mut critic_grad, &cg);
            // Actor: ascend Q(s, μ(s)): dQ/da chains into the actor.
            let a_pi: Vec<f64> = self
                .actor
                .forward(&t.s)
                .into_iter()
                .map(|v| v * scale)
                .collect();
            let sa_pi = concat(&t.s, &a_pi);
            let (_, d_in) = self.critic.gradient(&sa_pi, &[1.0]);
            let dq_da = &d_in[t.s.len()..];
            // μ output is tanh×scale: chain the scale; descend −Q.
            let d_out: Vec<f64> = dq_da.iter().map(|g| -g * scale / b as f64).collect();
            let (ag, _) = self.actor.gradient(&t.s, &d_out);
            add_into(&mut actor_grad, &ag);
        }
        let mut cp = self.critic.params();
        self.critic_opt.step(&mut cp, &critic_grad);
        self.critic.set_params(&cp);
        let mut ap = self.actor.params();
        self.actor_opt.step(&mut ap, &actor_grad);
        self.actor.set_params(&ap);
        // Soft target updates.
        soft_update(&mut self.actor_target, &self.actor, self.config.tau);
        soft_update(&mut self.critic_target, &self.critic, self.config.tau);
    }
}

fn concat(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

fn add_into(acc: &mut [f64], g: &[f64]) {
    for (a, b) in acc.iter_mut().zip(g) {
        *a += b;
    }
}

fn soft_update(target: &mut Network, source: &Network, tau: f64) {
    let tp = target.params();
    let sp = source.params();
    let mixed: Vec<f64> = tp
        .iter()
        .zip(&sp)
        .map(|(t, s)| (1.0 - tau) * t + tau * s)
        .collect();
    target.set_params(&mixed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::oscillator;

    fn small_config() -> DdpgConfig {
        DdpgConfig {
            hidden: vec![16, 16],
            check_every: 5,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn replay_ring_buffer_wraps() {
        let p = oscillator::reach_avoid_problem();
        let mut agent = Ddpg::new(
            &p,
            DdpgConfig {
                replay_capacity: 50,
                ..small_config()
            },
            0,
        );
        let sim = Simulator::new(p.dynamics.clone(), p.delta);
        for _ in 0..3 {
            agent.run_episode(&sim); // 35 steps each → wraps at 50
        }
        assert_eq!(agent.replay.len(), 50);
    }

    #[test]
    fn training_changes_the_policy() {
        let p = oscillator::reach_avoid_problem();
        let mut agent = Ddpg::new(&p, small_config(), 1);
        let before = agent.policy().params();
        let _ = agent.train(3);
        let after = agent.policy().params();
        assert_ne!(before, after);
    }

    #[test]
    fn deterministic_in_seed() {
        let p = oscillator::reach_avoid_problem();
        let mut a = Ddpg::new(&p, small_config(), 7);
        let mut b = Ddpg::new(&p, small_config(), 7);
        let _ = a.train(2);
        let _ = b.train(2);
        assert_eq!(a.policy().params(), b.policy().params());
    }

    #[test]
    fn outcome_reports_budget_exhaustion() {
        let p = oscillator::reach_avoid_problem();
        let mut agent = Ddpg::new(&p, small_config(), 2);
        let out = agent.train(2);
        assert_eq!(out.episodes_run, 2);
        assert!(!out.converged());
    }
}
