//! Integration tests for `dwv-obs`: concurrent aggregation guarantees and
//! JSONL sink round-trips.
//!
//! These tests mutate the process-wide enable flag and sink, so everything
//! that does lives behind one mutex ([`obs_lock`]) to keep the harness'
//! default parallel execution deterministic.

use dwv_obs::json::JsonValue;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serializes tests that toggle global observability state.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A `Write` sink backed by a shared buffer the test can inspect.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        Self(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn concurrent_counters_lose_no_updates() {
    let _g = obs_lock();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let name = "it.concurrent.counter";
    let before = dwv_obs::counter(name).get();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                let c = dwv_obs::counter(name);
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(dwv_obs::counter(name).get() - before, THREADS * PER_THREAD);
}

#[test]
fn concurrent_histograms_aggregate_deterministically() {
    let _g = obs_lock();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;
    let name = "it.concurrent.histogram";
    assert_eq!(
        dwv_obs::histogram(name).stats().count,
        0,
        "test requires a fresh instrument name"
    );
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let h = dwv_obs::histogram(name);
                for i in 0..PER_THREAD {
                    // Values 1..=16000, each recorded exactly once overall.
                    h.record((t * PER_THREAD + i + 1) as f64);
                }
            });
        }
    });
    let stats = dwv_obs::histogram(name).stats();
    let n = (THREADS * PER_THREAD) as f64;
    // Count, min and max are order-independent and must be exact.
    assert_eq!(stats.count, THREADS as u64 * PER_THREAD as u64);
    assert_eq!(stats.min, 1.0);
    assert_eq!(stats.max, n);
    // The sum is accumulated by CAS so no update is lost; only float
    // association order varies. 1+2+…+n with n=16000 is exactly
    // representable term-by-term, so allow a tight relative tolerance.
    let expected = n * (n + 1.0) / 2.0;
    assert!(
        (stats.sum - expected).abs() / expected < 1e-12,
        "sum {} vs expected {}",
        stats.sum,
        expected
    );
}

#[test]
fn concurrent_spans_count_once_per_scope() {
    let _g = obs_lock();
    dwv_obs::set_enabled(true);
    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    let name = "it.concurrent.span";
    let before = dwv_obs::histogram(name).stats().count;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    let _span = dwv_obs::span(name);
                }
            });
        }
    });
    dwv_obs::shutdown();
    let stats = dwv_obs::histogram(name).stats();
    assert_eq!(
        stats.count - before,
        (THREADS * PER_THREAD) as u64,
        "every span drop must record exactly one duration"
    );
    assert!(stats.min >= 0.0 && stats.max.is_finite());
}

#[test]
fn jsonl_round_trip_through_sink() {
    let _g = obs_lock();
    let buf = SharedBuf::new();
    dwv_obs::init_jsonl_writer(Box::new(buf.clone()));

    {
        let _span = dwv_obs::span("it.roundtrip.phase");
        dwv_obs::event(
            "it.roundtrip.step",
            &[("width", 0.125), ("iters", 3.0), ("bad", f64::NAN)],
        );
    }
    dwv_obs::counter("it.roundtrip.counter").add(7);
    dwv_obs::emit_snapshot();
    dwv_obs::shutdown();

    let text = buf.contents();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "event, span, snapshot: {text:?}");

    let parsed: Vec<JsonValue> = lines
        .iter()
        .map(|l| dwv_obs::json::parse(l).expect("every line is standalone JSON"))
        .collect();
    for v in &parsed {
        for field in ["t_us", "tid"] {
            assert!(
                v.get(field).and_then(JsonValue::as_number).is_some(),
                "line missing numeric {field}: {v:?}"
            );
        }
        assert!(v.get("kind").and_then(JsonValue::as_str).is_some());
        assert!(v.get("name").and_then(JsonValue::as_str).is_some());
    }

    // The event closes before the span guard drops, so it is line 0.
    let event = &parsed[0];
    assert_eq!(event.get("kind").unwrap().as_str(), Some("event"));
    assert_eq!(
        event.get("name").unwrap().as_str(),
        Some("it.roundtrip.step")
    );
    assert_eq!(event.get("width").unwrap().as_number(), Some(0.125));
    assert_eq!(event.get("iters").unwrap().as_number(), Some(3.0));
    assert_eq!(event.get("bad"), Some(&JsonValue::Null));

    let span = &parsed[1];
    assert_eq!(span.get("kind").unwrap().as_str(), Some("span"));
    assert_eq!(
        span.get("name").unwrap().as_str(),
        Some("it.roundtrip.phase")
    );
    assert!(span.get("dur_us").unwrap().as_number().unwrap() >= 0.0);

    let snap = &parsed[2];
    assert_eq!(snap.get("kind").unwrap().as_str(), Some("snapshot"));
    let metrics = snap.get("metrics").expect("snapshot carries metrics");
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(
        counters.get("it.roundtrip.counter").unwrap().as_number(),
        Some(7.0)
    );
    let hists = metrics.get("histograms").expect("histograms object");
    let phase = hists
        .get("it.roundtrip.phase")
        .expect("span duration became a histogram");
    assert!(phase.get("count").unwrap().as_number().unwrap() >= 1.0);
}

#[test]
fn disabled_emits_nothing_but_metrics_still_count() {
    let _g = obs_lock();
    dwv_obs::shutdown();
    let buf = SharedBuf::new();
    // Install the sink by hand, then disable: gated call sites must stay
    // silent even with a sink present.
    dwv_obs::init_jsonl_writer(Box::new(buf.clone()));
    dwv_obs::set_enabled(false);

    assert!(!dwv_obs::enabled());
    let name = "it.disabled.counter";
    let before = dwv_obs::counter(name).get();
    {
        let _span = dwv_obs::span("it.disabled.span");
        dwv_obs::event("it.disabled.event", &[("x", 1.0)]);
    }
    dwv_obs::emit_snapshot();
    // Instruments themselves are always live (callers gate on enabled()).
    dwv_obs::counter(name).inc();
    dwv_obs::shutdown();

    assert_eq!(buf.contents(), "", "disabled run must write no trace lines");
    assert_eq!(dwv_obs::counter(name).get(), before + 1);
}

#[test]
fn panic_dump_covers_the_panicking_span() {
    let _g = obs_lock();
    // Silence the default hook's backtrace chatter for the forced panic,
    // then chain the flight hook onto the silent one.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    dwv_obs::install_flight_panic_hook();
    dwv_obs::set_flight_enabled(true);

    let result = std::panic::catch_unwind(|| {
        let _doomed = dwv_obs::span("it.flight.doomed");
        panic!("forced for the flight recorder");
    });
    assert!(result.is_err(), "the probe must actually panic");
    std::panic::set_hook(default_hook);

    // No DWV_FLIGHT file in the harness; dump the ring by hand and check
    // the same invariant the CI smoke run checks end-to-end: the panicking
    // span's open event is in the ring, and the hook's "panic" anomaly
    // lands after it.
    let mut buf: Vec<u8> = Vec::new();
    let n = dwv_obs::flight_dump_to(&mut buf, "test").expect("dump to memory");
    assert!(n > 0, "ring must not be empty after a recorded panic");
    let text = String::from_utf8(buf).expect("dump is UTF-8");
    let mut open_seq = None;
    let mut panic_seq = None;
    for line in text.lines() {
        let v = dwv_obs::json::parse(line).expect("every dump line is standalone JSON");
        let (name, ev) = (
            v.get("name").and_then(JsonValue::as_str),
            v.get("ev").and_then(JsonValue::as_str),
        );
        let seq = v.get("seq").and_then(JsonValue::as_number);
        if name == Some("it.flight.doomed") && ev == Some("span_open") {
            open_seq = seq;
        }
        if name == Some("panic") && ev == Some("anomaly") {
            panic_seq = seq;
        }
    }
    let (open, pan) = (
        open_seq.expect("dump contains the panicking span's open"),
        panic_seq.expect("dump contains the panic anomaly"),
    );
    assert!(
        open < pan,
        "span opened (seq {open}) before the panic (seq {pan})"
    );
}

#[test]
fn summary_lists_recorded_instruments() {
    let _g = obs_lock();
    dwv_obs::counter("it.summary.counter").add(3);
    dwv_obs::histogram("it.summary.hist").record(2.5);
    let text = dwv_obs::summary();
    assert!(text.contains("it.summary.counter"), "{text}");
    assert!(text.contains("it.summary.hist"), "{text}");
    assert!(!text.contains("(no metrics recorded)"), "{text}");
}
