//! Span and event tracing: RAII timing guards and structured JSONL events.
//!
//! A [`Span`] measures a lexical scope with monotonic clocks. Closing a span
//! records its duration into the histogram registered under the span's name
//! (so `snapshot()` carries per-phase timings even without a sink) and, when
//! a JSONL sink is installed, appends a `{"kind":"span",…}` line.
//!
//! # Span identity and nesting
//!
//! Every traced span draws a process-unique `span_id` from one atomic
//! counter and captures its `parent_id` from a per-thread span stack, so
//! the JSONL stream is a *forest*, not a flat list: `dwv-trace` rebuilds
//! the tree from these two fields alone. `parent_id` 0 means "root on its
//! thread". Span lines are emitted at *close* (RAII drop), so children
//! always appear in the stream before their parents; analyzers must collect
//! all records before linking.
//!
//! When observability is disabled ([`crate::enabled`] is false) and the
//! flight recorder is off, [`span`] and [`event`] cost two relaxed atomic
//! loads and touch nothing else — no clock read, no registry lookup, no
//! allocation. With only the (default-on) flight recorder active, a span
//! additionally pays one clock read and a handful of relaxed atomic stores
//! into the fixed ring — no locks, no allocation, no I/O.

use crate::{recorder, sink};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch: the instant of the first observation.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense per-thread ids for trace lines (0 is the first observing
/// thread, usually `main`).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// `(microseconds since epoch, thread id)` for stamping a trace line.
pub(crate) fn stamp() -> (u128, u64) {
    (epoch().elapsed().as_micros(), thread_id())
}

/// Process-unique span ids; 0 is reserved for "no span" (root parent).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The stack of currently-open *traced* span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timing guard created by [`span`]. Dropping it records the
/// elapsed time (see the module docs). Inert when created while disabled.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// Epoch stamp (µs) taken at open. The emitted `dur_us` is the close
    /// stamp minus this, NOT `start.elapsed()`: both ends then come from
    /// the same clock reads that order the stream, so a child's interval
    /// is contained in its parent's *exactly* (RAII drop order), even when
    /// the scheduler preempts the process mid-drop.
    open_us: u128,
    span_id: u64,
    parent_id: u64,
    /// Whether the JSONL/metrics side is live for this span (the flight
    /// ring records opens/closes whenever `start` is set, traced or not).
    traced: bool,
}

impl Span {
    /// A guard that records nothing on drop.
    pub fn disabled(name: &'static str) -> Self {
        Self {
            name,
            start: None,
            open_us: 0,
            span_id: 0,
            parent_id: 0,
            traced: false,
        }
    }

    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The process-unique id of this span (0 when the span is inert).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The id of the enclosing traced span on the opening thread, or 0 when
    /// the span is a root (or inert).
    #[must_use]
    pub fn parent_id(&self) -> u64 {
        self.parent_id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let dur_us = dur.as_secs_f64() * 1e6;
        if recorder::flight_enabled() {
            recorder::record_span_close(self.name, dur_us);
        }
        if !self.traced {
            return;
        }
        crate::metrics::histogram(self.name).record_duration(dur);
        // Pop this span from its thread's stack. A span dropped on a thread
        // other than its opener (or out of order) simply is not found; the
        // search from the top keeps the common LIFO case O(1).
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == self.span_id) {
                s.remove(pos);
            }
        });
        let (t_us, tid) = stamp();
        // Stamp-difference duration (see the `open_us` field): µs-integer
        // resolution, but exact containment between parent and child
        // intervals. The histogram above keeps the sub-µs Instant reading.
        let stamped_dur_us = t_us.saturating_sub(self.open_us) as f64;
        sink::emit_line(&format!(
            "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"span\",\"name\":{},\"span_id\":{},\"parent_id\":{},\"dur_us\":{}}}",
            sink::json_string(self.name),
            self.span_id,
            self.parent_id,
            sink::json_number(stamped_dur_us),
        ));
    }
}

/// Opens a timing span over the enclosing scope.
///
/// ```
/// let _guard = dwv_obs::span("verify");
/// // … timed work …
/// // guard drop records the duration
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    let traced = sink::enabled();
    if !traced && !recorder::flight_enabled() {
        return Span::disabled(name);
    }
    // Pin the epoch before reading the clock so t_us is never negative.
    let _ = epoch();
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent_id, open_us) = if traced {
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(span_id);
            parent
        });
        (parent, epoch().elapsed().as_micros())
    } else {
        (0, 0)
    };
    if recorder::flight_enabled() {
        recorder::record_span_open(name, span_id);
    }
    Span {
        name,
        start: Some(Instant::now()),
        open_us,
        span_id,
        parent_id,
        traced,
    }
}

/// Emits a structured event with numeric fields as one JSONL line (and a
/// copy into the flight ring — events are for the stream, counters and
/// histograms for the aggregate view). No-op while disabled.
///
/// Field names must be plain identifiers and must not collide with the
/// reserved line fields (`t_us`, `tid`, `kind`, `name`).
pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
    if !sink::enabled() {
        return;
    }
    if recorder::flight_enabled() {
        recorder::record_event(name, fields.first().map_or(0.0, |(_, v)| *v));
    }
    let (t_us, tid) = stamp();
    let mut line = format!(
        "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"event\",\"name\":{}",
        sink::json_string(name)
    );
    for (k, v) in fields {
        debug_assert!(!matches!(*k, "t_us" | "tid" | "kind" | "name"));
        line.push_str(&format!(
            ",{}:{}",
            sink::json_string(k),
            sink::json_number(*v)
        ));
    }
    line.push('}');
    sink::emit_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes the unit tests that flip the process-global enabled flag.
    fn flag_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = flag_lock();
        sink::set_enabled(false);
        let name = "test.trace.disabled_span";
        let before = crate::metrics::histogram(name).stats().count;
        {
            let _s = span(name);
        }
        assert_eq!(crate::metrics::histogram(name).stats().count, before);
    }

    #[test]
    fn span_name_accessor() {
        let s = Span::disabled("x");
        assert_eq!(s.name(), "x");
        assert_eq!(s.span_id(), 0);
        assert_eq!(s.parent_id(), 0);
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        assert_eq!(thread_id(), thread_id());
    }

    #[test]
    fn nested_spans_link_parent_ids() {
        let _g = flag_lock();
        sink::set_enabled(true);
        let outer = span("test.trace.outer");
        let inner = span("test.trace.inner");
        assert_ne!(outer.span_id(), 0);
        assert_ne!(inner.span_id(), outer.span_id());
        assert_eq!(inner.parent_id(), outer.span_id());
        drop(inner);
        let sibling = span("test.trace.sibling");
        assert_eq!(sibling.parent_id(), outer.span_id());
        drop(sibling);
        drop(outer);
        sink::set_enabled(false);
    }

    #[test]
    fn sibling_roots_have_zero_parent() {
        let _g = flag_lock();
        sink::set_enabled(true);
        let a = span("test.trace.root_a");
        let a_parent = a.parent_id();
        drop(a);
        let b = span("test.trace.root_b");
        // Whatever enclosing test-harness state exists, a and b must agree.
        assert_eq!(b.parent_id(), a_parent);
        drop(b);
        sink::set_enabled(false);
    }
}
