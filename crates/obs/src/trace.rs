//! Span and event tracing: RAII timing guards and structured JSONL events.
//!
//! A [`Span`] measures a lexical scope with monotonic clocks. Closing a span
//! records its duration into the histogram registered under the span's name
//! (so `snapshot()` carries per-phase timings even without a sink) and, when
//! a JSONL sink is installed, appends a `{"kind":"span",…}` line.
//!
//! When observability is disabled ([`crate::enabled`] is false), [`span`]
//! and [`event`] cost a single relaxed atomic load and touch nothing else —
//! no clock read, no registry lookup, no allocation.

use crate::sink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch: the instant of the first observation.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense per-thread ids for trace lines (0 is the first observing
/// thread, usually `main`).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// `(microseconds since epoch, thread id)` for stamping a trace line.
pub(crate) fn stamp() -> (u128, u64) {
    (epoch().elapsed().as_micros(), thread_id())
}

/// An RAII timing guard created by [`span`]. Dropping it records the
/// elapsed time (see the module docs). Inert when created while disabled.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// A guard that records nothing on drop.
    pub fn disabled(name: &'static str) -> Self {
        Self { name, start: None }
    }

    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        crate::metrics::histogram(self.name).record_duration(dur);
        let (t_us, tid) = stamp();
        sink::emit_line(&format!(
            "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"span\",\"name\":{},\"dur_us\":{}}}",
            sink::json_string(self.name),
            sink::json_number(dur.as_secs_f64() * 1e6),
        ));
    }
}

/// Opens a timing span over the enclosing scope.
///
/// ```
/// let _guard = dwv_obs::span("verify");
/// // … timed work …
/// // guard drop records the duration
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    if !sink::enabled() {
        return Span::disabled(name);
    }
    // Pin the epoch before reading the clock so t_us is never negative.
    let _ = epoch();
    Span {
        name,
        start: Some(Instant::now()),
    }
}

/// Emits a structured event with numeric fields as one JSONL line (and
/// nothing else — events are for the stream, counters/histograms for the
/// aggregate view). No-op while disabled or without a sink.
///
/// Field names must be plain identifiers and must not collide with the
/// reserved line fields (`t_us`, `tid`, `kind`, `name`).
pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
    if !sink::enabled() {
        return;
    }
    let (t_us, tid) = stamp();
    let mut line = format!(
        "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"event\",\"name\":{}",
        sink::json_string(name)
    );
    for (k, v) in fields {
        debug_assert!(!matches!(*k, "t_us" | "tid" | "kind" | "name"));
        line.push_str(&format!(
            ",{}:{}",
            sink::json_string(k),
            sink::json_number(*v)
        ));
    }
    line.push('}');
    sink::emit_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        sink::set_enabled(false);
        let name = "test.trace.disabled_span";
        let before = crate::metrics::histogram(name).stats().count;
        {
            let _s = span(name);
        }
        assert_eq!(crate::metrics::histogram(name).stats().count, before);
    }

    #[test]
    fn span_name_accessor() {
        let s = Span::disabled("x");
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        assert_eq!(thread_id(), thread_id());
    }
}
