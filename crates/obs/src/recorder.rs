//! The flight recorder: a fixed-capacity lock-free ring of recent events.
//!
//! Post-mortem debugging of a verification run needs the *last few thousand*
//! observations — which span was open, which anomaly fired — far more than
//! it needs a full trace. The flight recorder keeps exactly that: every
//! span open/close, structured event and anomaly is also written into a
//! fixed ring of atomic slots, cheap enough to leave on in production runs
//! where `DWV_TRACE` is unset (the `bench_core --check` overhead guard
//! enforces the ≤10% envelope).
//!
//! # Overhead contract
//!
//! Recording is allocation-free and lock-free: one `fetch_add` claims a
//! slot, a handful of relaxed stores fill it, and a release store of the
//! sequence number publishes it. Name interning takes a lock only the
//! *first* time a given `&'static str` is seen; afterwards it is a single
//! probe into a fixed open-addressed table of atomics. Turning the recorder
//! off ([`set_flight_enabled`]) reduces every call site to one relaxed load.
//!
//! # Dumping
//!
//! The ring is dumped to JSONL (parseable by [`crate::json`]) by
//! [`flight_dump_to`], and automatically to the `DWV_FLIGHT=path` file
//! from a chained panic hook ([`install_flight_panic_hook`]) and from
//! anomaly sites ([`flight_anomaly`]: Picard retry exhaustion, Algorithm 1
//! divergence). A torn slot — one being overwritten while the dump reads
//! it — is detected by its sequence number and skipped: a crash dump is
//! best-effort by construction, never blocking and never unsound.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Number of ring slots. Power of two so the modulo is a mask; 4096 events
/// is plenty to cover the final iterations leading up to a crash.
const RING_CAP: usize = 4096;

/// Event kinds stored in a slot's `kind` word.
const KIND_EVENT: u64 = 0;
const KIND_SPAN_OPEN: u64 = 1;
const KIND_SPAN_CLOSE: u64 = 2;
const KIND_ANOMALY: u64 = 3;

/// One ring slot. `seq` is 0 while a writer is mid-flight and `ticket + 1`
/// once published, so readers can detect torn slots without locking.
struct Slot {
    seq: AtomicU64,
    t_us: AtomicU64,
    tid: AtomicU64,
    kind: AtomicU64,
    name_id: AtomicU64,
    bits: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as an array initializer
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    t_us: AtomicU64::new(0),
    tid: AtomicU64::new(0),
    kind: AtomicU64::new(0),
    name_id: AtomicU64::new(0),
    bits: AtomicU64::new(0),
};

static RING: [Slot; RING_CAP] = [EMPTY_SLOT; RING_CAP];
/// Next ticket; slot index is `ticket % RING_CAP`, published seq is
/// `ticket + 1` (so 0 always means "never written / in flight").
static HEAD: AtomicU64 = AtomicU64::new(0);

/// Default-on: the ring must be cheap enough to always run.
static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether the flight recorder is on. One relaxed atomic load.
#[inline]
#[must_use]
pub fn flight_enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off. It is on by default; benchmarks
/// turn it off to measure the bare computation.
pub fn set_flight_enabled(on: bool) {
    FLIGHT_ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Name interning: &'static str -> small id, lock-free after first sighting.
// ---------------------------------------------------------------------------

/// Open-addressed probe table capacity (must exceed the number of distinct
/// instrumentation names by a healthy margin; the slow path still works if
/// it fills, it just always takes the lock).
const INTERN_CAP: usize = 512;

#[allow(clippy::declare_interior_mutable_const)] // const used only as an array initializer
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

/// Keys are the `&'static str` data pointers (never 0 for a live str).
static INTERN_KEYS: [AtomicU64; INTERN_CAP] = [ZERO_U64; INTERN_CAP];
/// Values are `id + 1` (0 = not yet published).
static INTERN_VALS: [AtomicU64; INTERN_CAP] = [ZERO_U64; INTERN_CAP];
/// The id -> name table, appended under lock on first sighting only.
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn probe_start(key: u64) -> usize {
    // Fibonacci hashing of the pointer; the table is a power of two.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % INTERN_CAP
}

fn intern(name: &'static str) -> u64 {
    let key = name.as_ptr() as u64;
    let mut i = probe_start(key);
    for _ in 0..INTERN_CAP {
        match INTERN_KEYS.get(i).map(|k| k.load(Ordering::Acquire)) {
            Some(k) if k == key => {
                if let Some(v) = INTERN_VALS.get(i) {
                    let v = v.load(Ordering::Acquire);
                    if v != 0 {
                        return v - 1;
                    }
                }
                break; // publisher mid-flight: fall through to the lock
            }
            Some(0) => break, // unseen pointer
            Some(_) => i = (i + 1) % INTERN_CAP,
            None => break,
        }
    }
    intern_slow(name, key)
}

/// The locked slow path: resolves content-equal names (two equal literals
/// may have distinct pointers) to one id and publishes the pointer key.
fn intern_slow(name: &'static str, key: u64) -> u64 {
    let id = {
        let mut names = NAMES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match names.iter().position(|n| *n == name) {
            Some(p) => p as u64,
            None => {
                names.push(name);
                (names.len() - 1) as u64
            }
        }
    };
    let mut i = probe_start(key);
    for _ in 0..INTERN_CAP {
        let (Some(k_slot), Some(v_slot)) = (INTERN_KEYS.get(i), INTERN_VALS.get(i)) else {
            break;
        };
        match k_slot.compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                v_slot.store(id + 1, Ordering::Release);
                break;
            }
            Err(k) if k == key => {
                v_slot.store(id + 1, Ordering::Release);
                break;
            }
            Err(_) => i = (i + 1) % INTERN_CAP,
        }
        // Table full: every future sighting pays the lock — degraded, not
        // broken.
    }
    id
}

fn name_of(id: u64) -> &'static str {
    NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------------------

fn record(kind: u64, name: &'static str, value: f64) {
    let (t_us, tid) = crate::trace::stamp();
    let name_id = intern(name);
    let ticket = HEAD.fetch_add(1, Ordering::Relaxed);
    let Some(slot) = RING.get(ticket as usize % RING_CAP) else {
        return;
    };
    // Invalidate, fill, publish: readers seeing seq 0 or a seq that does not
    // match the fields' ticket skip the slot.
    slot.seq.store(0, Ordering::Release);
    slot.t_us.store(t_us as u64, Ordering::Relaxed);
    slot.tid.store(tid, Ordering::Relaxed);
    slot.kind.store(kind, Ordering::Relaxed);
    slot.name_id.store(name_id, Ordering::Relaxed);
    slot.bits.store(value.to_bits(), Ordering::Relaxed);
    slot.seq.store(ticket + 1, Ordering::Release);
}

/// Records a span open (payload: the span id).
pub(crate) fn record_span_open(name: &'static str, span_id: u64) {
    record(KIND_SPAN_OPEN, name, span_id as f64);
}

/// Records a span close (payload: the duration in µs).
pub(crate) fn record_span_close(name: &'static str, dur_us: f64) {
    record(KIND_SPAN_CLOSE, name, dur_us);
}

/// Records a structured event's first field value.
pub(crate) fn record_event(name: &'static str, value: f64) {
    record(KIND_EVENT, name, value);
}

/// Records an anomaly into the flight ring and, when `DWV_FLIGHT` is
/// configured, dumps the ring so the evidence survives whatever happens
/// next. Dump volume is capped process-wide (see [`flight_dump_to`] docs);
/// recording itself is always cheap. No-op while the recorder is off.
///
/// Anomaly sites in the workspace: Picard retry exhaustion / divergence in
/// `dwv-taylor`, verifier divergence in Algorithm 1.
pub fn flight_anomaly(name: &'static str, value: f64) {
    if !flight_enabled() {
        return;
    }
    record(KIND_ANOMALY, name, value);
    dump_to_configured_path(name);
}

// ---------------------------------------------------------------------------
// Dumping.
// ---------------------------------------------------------------------------

/// The `DWV_FLIGHT` dump path, read once.
fn dump_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| match std::env::var("DWV_FLIGHT") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    })
    .as_deref()
}

/// Anomaly-triggered dumps are capped so a hot divergence loop cannot turn
/// the recorder into an I/O amplifier (the panic hook is not capped).
const MAX_ANOMALY_DUMPS: u64 = 8;
static ANOMALY_DUMPS: AtomicU64 = AtomicU64::new(0);

fn dump_to_configured_path(reason: &str) {
    let Some(path) = dump_path() else { return };
    if ANOMALY_DUMPS.fetch_add(1, Ordering::Relaxed) >= MAX_ANOMALY_DUMPS {
        return;
    }
    dump_to_path(path, reason);
}

fn dump_to_path(path: &str, reason: &str) {
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = flight_dump_to(&mut f, reason);
    }
}

/// Writes the ring's surviving events to `w` as JSONL, oldest first,
/// preceded by one `{"kind":"flight_dump",…}` header line carrying the dump
/// `reason` and the number of events that follow. Returns the event count.
///
/// Torn or never-written slots are skipped, so at most the ring capacity
/// (4096) events appear, fewer under concurrent writes; each line has the
/// reserved fields `t_us`/`tid`/`kind`/`name`
/// plus `ev` (`span_open` | `span_close` | `event` | `anomaly`), `seq` (the
/// global ticket, monotone across the whole run) and `v` (span id,
/// duration in µs, or event value).
///
/// # Errors
///
/// Propagates the first write error.
pub fn flight_dump_to<W: Write>(w: &mut W, reason: &str) -> std::io::Result<usize> {
    let mut events: Vec<(u64, u64, u64, u64, u64, f64)> = Vec::with_capacity(RING_CAP);
    for slot in &RING {
        let seq1 = slot.seq.load(Ordering::Acquire);
        if seq1 == 0 {
            continue;
        }
        let t_us = slot.t_us.load(Ordering::Relaxed);
        let tid = slot.tid.load(Ordering::Relaxed);
        let kind = slot.kind.load(Ordering::Relaxed);
        let name_id = slot.name_id.load(Ordering::Relaxed);
        let bits = slot.bits.load(Ordering::Relaxed);
        let seq2 = slot.seq.load(Ordering::Acquire);
        if seq1 != seq2 {
            continue; // torn: a writer raced the dump
        }
        events.push((seq1 - 1, t_us, tid, kind, name_id, f64::from_bits(bits)));
    }
    events.sort_unstable_by_key(|e| e.0);
    let (t_us, tid) = crate::trace::stamp();
    writeln!(
        w,
        "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"flight_dump\",\"name\":{},\"events\":{}}}",
        crate::sink::json_string(reason),
        events.len()
    )?;
    for (seq, t_us, tid, kind, name_id, v) in &events {
        let ev = match *kind {
            KIND_SPAN_OPEN => "span_open",
            KIND_SPAN_CLOSE => "span_close",
            KIND_ANOMALY => "anomaly",
            _ => "event",
        };
        writeln!(
            w,
            "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"flight\",\"name\":{},\"ev\":\"{ev}\",\"seq\":{seq},\"v\":{}}}",
            crate::sink::json_string(name_of(*name_id)),
            crate::sink::json_number(*v)
        )?;
    }
    w.flush()?;
    Ok(events.len())
}

/// Chains a panic hook that records a final `"panic"` anomaly event and
/// dumps the flight ring to the `DWV_FLIGHT` path (no-op without one), then
/// defers to the previously installed hook. Idempotent; called from
/// [`crate::init_from_env`] and [`init_flight_from_env`] — never from
/// library code, so test harnesses keep their default hooks unless a binary
/// opts in.
pub fn install_flight_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if flight_enabled() {
                record(KIND_ANOMALY, "panic", 0.0);
                if let Some(path) = dump_path() {
                    dump_to_path(path, "panic");
                }
            }
            previous(info);
        }));
    });
}

/// Honors the `DWV_FLIGHT` environment variable: when set and non-empty,
/// its value is the flight-dump JSONL path; the panic hook is installed so
/// a crash leaves the ring's last events behind. Returns whether a dump
/// path is configured.
///
/// Like [`crate::init_from_env`], call this once near the top of a binary.
pub fn init_flight_from_env() -> bool {
    let configured = dump_path().is_some();
    if configured {
        install_flight_panic_hook();
    }
    configured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_content_based() {
        let a = intern("test.recorder.name_a");
        let b = intern("test.recorder.name_b");
        assert_ne!(a, b);
        assert_eq!(intern("test.recorder.name_a"), a);
        assert_eq!(name_of(a), "test.recorder.name_a");
        assert_eq!(name_of(u64::MAX), "?");
    }

    #[test]
    fn ring_records_and_dumps_in_order() {
        set_flight_enabled(true);
        record_event("test.recorder.first", 1.0);
        record_span_open("test.recorder.span", 42);
        record_span_close("test.recorder.span", 12.5);
        flight_anomaly("test.recorder.anomaly", 3.0);
        let mut buf: Vec<u8> = Vec::new();
        let n = flight_dump_to(&mut buf, "test").expect("dump to memory");
        assert!(n >= 4, "at least our 4 events survive, got {n}");
        let text = String::from_utf8(buf).expect("dump is UTF-8");
        let mut lines = text.lines();
        let header = crate::json::parse(lines.next().expect("header line")).expect("header JSON");
        assert_eq!(
            header.get("kind").and_then(|v| v.as_str()),
            Some("flight_dump")
        );
        let mut last_seq = -1i64;
        let mut saw_anomaly = false;
        for line in lines {
            let v = crate::json::parse(line).expect("event line parses");
            assert_eq!(v.get("kind").and_then(|v| v.as_str()), Some("flight"));
            let seq = v.get("seq").and_then(|v| v.as_number()).expect("seq") as i64;
            assert!(seq > last_seq, "dump must be ticket-ordered");
            last_seq = seq;
            if v.get("ev").and_then(|v| v.as_str()) == Some("anomaly") {
                saw_anomaly = true;
            }
        }
        assert!(saw_anomaly, "anomaly event survives in the dump:\n{text}");
    }

    #[test]
    fn disabled_recorder_skips_anomalies() {
        set_flight_enabled(false);
        let before = HEAD.load(Ordering::Relaxed);
        flight_anomaly("test.recorder.disabled", 0.0);
        // Other tests may race tickets forward, but *this* call contributed
        // nothing when the head did not move in a single-threaded run.
        let after = HEAD.load(Ordering::Relaxed);
        set_flight_enabled(true);
        // Re-enabled anomaly does move the head.
        flight_anomaly("test.recorder.enabled", 0.0);
        assert!(HEAD.load(Ordering::Relaxed) > after.max(before));
    }
}
