//! The enable gate and the machine-readable JSONL event sink.
//!
//! The entire observability layer hangs off one relaxed [`AtomicBool`]:
//! [`crate::enabled`] is the only cost a disabled run pays at an
//! instrumentation point. Enabling can be done programmatically
//! ([`set_enabled`], [`init_jsonl_writer`]) or from the environment
//! ([`init_from_env`], honoring `DWV_TRACE=path`).
//!
//! When a sink is installed, spans and events additionally stream out as
//! JSON Lines — one self-contained JSON object per line, with the common
//! fields `t_us` (microseconds since the first observation), `tid` (small
//! per-thread id), `kind` (`span` | `event` | `snapshot`) and `name`.
//! Every line is flushed as written, so a trace survives an abrupt process
//! exit at the cost of a syscall per line (only ever paid while tracing).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Whether observability is on. One relaxed atomic load — this is the whole
/// disabled-path overhead of an instrumentation point.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/event recording on or off. Metrics instruments keep working
/// either way; call sites gate on [`enabled`] for the zero-overhead path.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Installs a JSONL sink and enables observability.
pub fn init_jsonl_writer(w: Box<dyn Write + Send>) {
    *SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(w);
    set_enabled(true);
}

/// Opens `path` for writing (truncating), installs it as the JSONL sink and
/// enables observability.
///
/// # Errors
///
/// Propagates the file-creation error; observability state is unchanged on
/// failure.
pub fn init_jsonl_path(path: &str) -> io::Result<()> {
    let f = File::create(path)?;
    init_jsonl_writer(Box::new(BufWriter::new(f)));
    Ok(())
}

/// Honors the `DWV_TRACE` environment variable: when set and non-empty, its
/// value is the JSONL trace path and observability is enabled. Also honors
/// `DWV_FLIGHT` (see [`crate::init_flight_from_env`]) so one call arms both
/// the trace stream and the crash-dump path. Returns whether tracing was
/// turned on.
///
/// Call this once near the top of a binary (`examples/`, benches, CI smoke
/// runs); a library never self-initializes.
pub fn init_from_env() -> bool {
    let _ = crate::recorder::init_flight_from_env();
    match std::env::var("DWV_TRACE") {
        Ok(path) if !path.is_empty() => match init_jsonl_path(&path) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("dwv-obs: cannot open DWV_TRACE={path}: {e}");
                false
            }
        },
        _ => false,
    }
}

/// Flushes the sink (a no-op without one). Lines are flushed as written, so
/// this matters only for exotic buffered writers installed via
/// [`init_jsonl_writer`].
pub fn flush() {
    if let Some(w) = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_mut()
    {
        let _ = w.flush();
    }
}

/// Flushes and removes the sink, and disables observability. Metrics keep
/// their totals (use [`crate::reset`] to zero them).
pub fn shutdown() {
    set_enabled(false);
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
}

/// Writes one pre-rendered JSONL line (the caller supplies everything after
/// the common fields). No-op when no sink is installed.
pub(crate) fn emit_line(line: &str) {
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Renders `s` as a JSON string literal (quotes + escapes).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` as a JSON number (`null` for NaN/infinity).
#[must_use]
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip formatting; always a valid JSON number.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Emits the current [`crate::MetricsSnapshot`] as one `snapshot` JSONL
/// line. No-op when disabled.
pub fn emit_snapshot() {
    if !enabled() {
        return;
    }
    let snap = crate::metrics::snapshot();
    let (t_us, tid) = crate::trace::stamp();
    emit_line(&format!(
        "{{\"t_us\":{t_us},\"tid\":{tid},\"kind\":\"snapshot\",\"name\":\"metrics\",\"metrics\":{}}}",
        snap.to_json()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("ab"), "\"ab\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_number_forms() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3.0");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        // Tiny magnitudes must stay valid JSON numbers.
        let v: f64 = crate::json::parse(&json_number(1e-9))
            .unwrap()
            .as_number()
            .unwrap();
        assert!((v - 1e-9).abs() < 1e-24);
    }
}
