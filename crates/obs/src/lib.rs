//! `dwv-obs`: zero-dependency structured tracing, metrics and profiling
//! hooks for the design-while-verify stack.
//!
//! The crate is a leaf dependency of every other `dwv-*` crate and has no
//! dependencies of its own (the container has no registry access; nothing
//! here needs one). It provides three layers:
//!
//! 1. **Spans and events** ([`span`], [`event`]): RAII timing guards over
//!    monotonic clocks, and structured numeric events, both streamed as
//!    JSON Lines when a sink is installed.
//! 2. **Metrics** ([`counter`], [`gauge`], [`histogram`]): a process-wide
//!    registry of lock-free instruments. Handles are `&'static` and can be
//!    hoisted out of hot loops. [`snapshot`] captures everything into a
//!    serializable [`MetricsSnapshot`].
//! 3. **Sinks**: a human-readable end-of-run [`summary`], and a
//!    machine-readable JSONL stream ([`init_jsonl_path`] /
//!    [`init_from_env`] honoring `DWV_TRACE=path`).
//!
//! # Overhead discipline
//!
//! Everything is gated on one relaxed atomic bool, [`enabled`]. Call sites
//! in the numeric crates follow the pattern
//!
//! ```
//! if dwv_obs::enabled() {
//!     dwv_obs::counter("reach.cache.hits").inc();
//! }
//! ```
//!
//! so a disabled run pays exactly one relaxed load per instrumentation
//! point — no clocks, no allocation, no locks. Instrumentation is pure
//! observation: enabling tracing must never change a verdict, a flowpipe,
//! or an RNG draw (the workspace bit-identity test enforces this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sink;
mod trace;

pub mod json;

pub use metrics::{
    counter, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram, HistogramStats,
    MetricsSnapshot,
};
pub use sink::{
    emit_snapshot, enabled, flush, init_from_env, init_jsonl_path, init_jsonl_writer, json_number,
    json_string, set_enabled, shutdown,
};
pub use trace::{event, span, Span};

/// Renders the current metrics as the human-readable end-of-run summary
/// (the [`MetricsSnapshot`] `Display` table). Cheap enough to call
/// unconditionally at the end of a binary.
#[must_use]
pub fn summary() -> String {
    snapshot().to_string()
}
