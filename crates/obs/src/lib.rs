//! `dwv-obs`: zero-dependency structured tracing, metrics and profiling
//! hooks for the design-while-verify stack.
//!
//! The crate is a leaf dependency of every other `dwv-*` crate and has no
//! dependencies of its own (the container has no registry access; nothing
//! here needs one). It provides three layers:
//!
//! 1. **Spans and events** ([`span`], [`event`]): RAII timing guards over
//!    monotonic clocks, and structured numeric events, both streamed as
//!    JSON Lines when a sink is installed. Spans carry `span_id` /
//!    `parent_id` from per-thread stacks, so the stream is a
//!    reconstructable forest (see `dwv-trace`).
//! 2. **Metrics** ([`counter`], [`gauge`], [`histogram`]): a process-wide
//!    registry of lock-free instruments. Handles are `&'static` and can be
//!    hoisted out of hot loops. Histograms keep fixed log buckets, so
//!    [`snapshot`] carries p50/p90/p99 alongside count/mean/min/max in a
//!    serializable [`MetricsSnapshot`].
//! 3. **The flight recorder** ([`flight_anomaly`], [`flight_dump_to`]):
//!    a fixed lock-free ring of the most recent span opens/closes, events
//!    and anomalies, on by default, dumped to the `DWV_FLIGHT=path` file
//!    from a panic hook and from anomaly sites.
//! 4. **Sinks**: a human-readable end-of-run [`summary`], and a
//!    machine-readable JSONL stream ([`init_jsonl_path`] /
//!    [`init_from_env`] honoring `DWV_TRACE=path`).
//!
//! # Overhead discipline
//!
//! The JSONL/metrics side is gated on one relaxed atomic bool, [`enabled`].
//! Call sites in the numeric crates follow the pattern
//!
//! ```
//! if dwv_obs::enabled() {
//!     dwv_obs::counter("reach.cache.hits").inc();
//! }
//! ```
//!
//! so a fully disabled run (tracing off, flight recorder off) pays relaxed
//! atomic loads per instrumentation point and nothing else — no clocks, no
//! allocation, no locks. The default-on flight recorder adds only a clock
//! read and a few relaxed stores per *span*, an envelope `bench_core
//! --check` enforces (≤10% on the end-to-end iteration benches).
//! Instrumentation is pure observation: enabling tracing must never change
//! a verdict, a flowpipe, or an RNG draw (the workspace bit-identity test
//! enforces this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
mod sink;
mod trace;

pub mod json;

pub use metrics::{
    counter, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram, HistogramStats,
    MetricsSnapshot,
};
pub use recorder::{
    flight_anomaly, flight_dump_to, flight_enabled, init_flight_from_env,
    install_flight_panic_hook, set_flight_enabled,
};
pub use sink::{
    emit_snapshot, enabled, flush, init_from_env, init_jsonl_path, init_jsonl_writer, json_number,
    json_string, set_enabled, shutdown,
};
pub use trace::{event, span, Span};

/// Renders the current metrics as the human-readable end-of-run summary
/// (the [`MetricsSnapshot`] `Display` table). Cheap enough to call
/// unconditionally at the end of a binary.
#[must_use]
pub fn summary() -> String {
    snapshot().to_string()
}
