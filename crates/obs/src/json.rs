//! A minimal JSON reader for validating and round-tripping trace output.
//!
//! The repository is built without registry access, so there is no `serde`;
//! this hand-rolled recursive-descent parser covers the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null) and is
//! used by the JSONL round-trip tests and by the `trace_check` CI validator.
//! It is a *reader* for machine-written traces, not a general-purpose
//! serializer — emission lives in [`crate::sink`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (keys may repeat in malformed input; the
    /// accessors return the first match).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object's members, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses one complete JSON value, requiring it to consume the whole input
/// (modulo surrounding whitespace).
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Object(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our emitter;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(format!("invalid UTF-8 at byte {start}")),
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".to_string());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.0),
                JsonValue::Object(vec![("b".to_string(), JsonValue::String("c".to_string()))]),
            ])
        );
        assert_eq!(v.get("d").unwrap().get("e").unwrap(), &JsonValue::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"π ≈ 3\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "π ≈ 3");
        let v = parse("\"\\u0041\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "A");
    }
}
