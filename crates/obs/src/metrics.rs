//! The process-wide metrics registry: named counters, gauges and histograms.
//!
//! Instruments are **always live**: incrementing a [`Counter`] works whether
//! or not tracing is enabled, and costs one relaxed atomic RMW. The
//! near-zero-overhead *disabled* path of the observability layer is a
//! property of the call sites — hot loops guard their instrumentation with
//! [`crate::enabled`] so a disabled run performs a single relaxed atomic
//! load per potential instrumentation point and nothing else.
//!
//! # Aggregation guarantees
//!
//! Every update is a lock-free atomic RMW, so **no update is ever lost**,
//! regardless of how many worker threads record concurrently. Counter
//! totals, gauge last-writes, histogram counts and histogram min/max are
//! fully order-independent (deterministic for a fixed multiset of updates).
//! Histogram *sums* accumulate `f64` values via a compare-and-swap loop:
//! no addend is dropped, but floating-point addition is not associative, so
//! the final sum (and hence the mean) may differ across interleavings by
//! rounding error — document ~ulp-level, never structural.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The most recently stored value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A streaming summary of recorded samples: count, sum, min and max.
///
/// Lock-free; see the module docs for the exact determinism guarantees.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// `f64` bit pattern, updated by CAS (`fetch_update`) so concurrent adds
    /// are never lost.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// Records one sample. Non-finite samples are counted but excluded from
    /// sum/min/max so one NaN cannot poison the summary.
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            return;
        }
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then_some(v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then_some(v.to_bits())
            });
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// A consistent-enough point-in-time summary (each field is read
    /// atomically; fields may straddle a concurrent record).
    #[must_use]
    pub fn stats(&self) -> HistogramStats {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramStats {
            count,
            sum,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// Point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of the finite samples.
    pub sum: f64,
    /// Smallest finite sample (0.0 when none).
    pub min: f64,
    /// Largest finite sample (0.0 when none).
    pub max: f64,
}

impl HistogramStats {
    /// Mean of the finite samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One family of named instruments. Instruments are allocated once and
/// leaked, so the returned `&'static` handles can be hoisted out of hot
/// loops and used without any registry lookup.
struct Family<T: Default + 'static> {
    map: Mutex<HashMap<String, &'static T>>,
}

impl<T: Default + 'static> Family<T> {
    fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, name: &str) -> &'static T {
        let mut map = self.map.lock().expect("obs registry poisoned");
        if let Some(v) = map.get(name) {
            return v;
        }
        let leaked: &'static T = Box::leak(Box::new(T::default()));
        map.insert(name.to_string(), leaked);
        leaked
    }

    fn sorted(&self) -> Vec<(String, &'static T)> {
        let map = self.map.lock().expect("obs registry poisoned");
        let mut v: Vec<(String, &'static T)> = map.iter().map(|(k, &t)| (k.clone(), t)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn for_each(&self, f: impl Fn(&T)) {
        for (_, t) in self.map.lock().expect("obs registry poisoned").iter() {
            f(t);
        }
    }
}

struct Registry {
    counters: Family<Counter>,
    gauges: Family<Gauge>,
    histograms: Family<Histogram>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Family::new(),
        gauges: Family::new(),
        histograms: Family::new(),
    })
}

/// The counter registered under `name` (created on first use).
#[must_use]
pub fn counter(name: &str) -> &'static Counter {
    registry().counters.get(name)
}

/// The gauge registered under `name` (created on first use).
#[must_use]
pub fn gauge(name: &str) -> &'static Gauge {
    registry().gauges.get(name)
}

/// The histogram registered under `name` (created on first use).
#[must_use]
pub fn histogram(name: &str) -> &'static Histogram {
    registry().histograms.get(name)
}

/// Zeroes every registered instrument (names stay registered). Intended for
/// tests and benchmark harnesses that want per-section snapshots.
pub fn reset() {
    let r = registry();
    r.counters.for_each(Counter::reset);
    r.gauges.for_each(Gauge::reset);
    r.histograms.for_each(Histogram::reset);
}

/// A point-in-time copy of every registered instrument, sorted by name.
///
/// This is the machine-readable export threaded into `VerificationReport`
/// and the `bench_core` output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stats)` pairs, name-sorted.
    pub histograms: Vec<(String, HistogramStats)>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0.0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
    }

    /// The counter total under `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram stats under `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{"name":{"count":…}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", crate::sink::json_string(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{}",
                crate::sink::json_string(name),
                crate::sink::json_number(*v)
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                crate::sink::json_string(name),
                h.count,
                crate::sink::json_number(h.sum),
                crate::sink::json_number(h.min),
                crate::sink::json_number(h.max),
                crate::sink::json_number(h.mean()),
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let live_counters: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        let live_hists: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if live_counters.is_empty() && live_hists.is_empty() && live_gauges.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        if !live_hists.is_empty() {
            writeln!(
                f,
                "{:<28} {:>9} {:>12} {:>12} {:>12}",
                "timer/histogram", "count", "mean", "min", "max"
            )?;
            for (name, h) in live_hists {
                writeln!(
                    f,
                    "{name:<28} {:>9} {:>12.4e} {:>12.4e} {:>12.4e}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                )?;
            }
        }
        for (name, v) in live_counters {
            writeln!(f, "{name:<28} {v:>9}")?;
        }
        for (name, v) in live_gauges {
            writeln!(f, "{name:<28} {v:>9.4e}")?;
        }
        Ok(())
    }
}

/// Takes a [`MetricsSnapshot`] of every registered instrument.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .sorted()
            .into_iter()
            .map(|(n, c)| (n, c.get()))
            .collect(),
        gauges: r
            .gauges
            .sorted()
            .into_iter()
            .map(|(n, g)| (n, g.get()))
            .collect(),
        histograms: r
            .histograms
            .sorted()
            .into_iter()
            .map(|(n, h)| (n, h.stats()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = counter("test.metrics.counter_accumulates");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
    }

    #[test]
    fn same_name_same_instrument() {
        let a = counter("test.metrics.same_name");
        let b = counter("test.metrics.same_name");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_stats_track_samples() {
        let h = histogram("test.metrics.hist");
        for v in [2.0, 8.0, 4.0] {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert!((s.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_non_finite_values_in_summary() {
        let h = histogram("test.metrics.hist_nan");
        h.record(f64::NAN);
        h.record(1.0);
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.sum, 1.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        counter("test.snap.b").inc();
        counter("test.snap.a").add(2);
        histogram("test.snap.h").record(3.0);
        let s = snapshot();
        let names: Vec<&String> = s.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(s.counter("test.snap.a").unwrap() >= 2);
        assert!(s.histogram("test.snap.h").unwrap().count >= 1);
        assert!(s.counter("test.snap.missing").is_none());
        assert!(!s.is_empty());
    }

    #[test]
    fn snapshot_json_is_parseable() {
        counter("test.snap_json.c").inc();
        histogram("test.snap_json.h").record(0.5);
        let json = snapshot().to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        let obj = v.as_object().expect("top-level object");
        assert!(obj.iter().any(|(k, _)| k == "counters"));
        assert!(obj.iter().any(|(k, _)| k == "histograms"));
    }

    #[test]
    fn empty_display_mentions_nothing_recorded() {
        let s = MetricsSnapshot::default();
        assert!(s.to_string().contains("no metrics recorded"));
    }
}
