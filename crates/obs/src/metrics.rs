//! The process-wide metrics registry: named counters, gauges and histograms.
//!
//! Instruments are **always live**: incrementing a [`Counter`] works whether
//! or not tracing is enabled, and costs one relaxed atomic RMW. The
//! near-zero-overhead *disabled* path of the observability layer is a
//! property of the call sites — hot loops guard their instrumentation with
//! [`crate::enabled`] so a disabled run performs a single relaxed atomic
//! load per potential instrumentation point and nothing else.
//!
//! # Aggregation guarantees
//!
//! Every update is a lock-free atomic RMW, so **no update is ever lost**,
//! regardless of how many worker threads record concurrently. Counter
//! totals, gauge last-writes, histogram counts and histogram min/max are
//! fully order-independent (deterministic for a fixed multiset of updates).
//! Histogram *sums* accumulate `f64` values via a compare-and-swap loop:
//! no addend is dropped, but floating-point addition is not associative, so
//! the final sum (and hence the mean) may differ across interleavings by
//! rounding error — document ~ulp-level, never structural.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The most recently stored value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of fixed log-spaced quantile buckets per histogram.
const N_BUCKETS: usize = 64;

/// Binary exponent covered by bucket 0: everything at or below
/// `2^BUCKET_EXP_MIN` (including zero, subnormals and — by magnitude —
/// negatives) lands there. With 64 buckets the top bucket starts at
/// `2^(BUCKET_EXP_MIN + 63)` ≈ 8.4e6, so span durations in seconds and the
/// workspace's remainder widths all fall in range.
const BUCKET_EXP_MIN: i32 = -40;

/// The bucket index for a finite sample: its unbiased binary exponent,
/// clamped to the covered range. Pure bit arithmetic — no branches on the
/// value, no floating-point comparisons.
fn bucket_index(v: f64) -> usize {
    let unbiased = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (unbiased - BUCKET_EXP_MIN).clamp(0, N_BUCKETS as i32 - 1) as usize
}

/// The representative value reported for a bucket: the geometric midpoint
/// `1.5·2^k` of its `[2^k, 2^(k+1))` range, giving ≤ 50% relative error —
/// the usual contract for log-bucketed quantiles.
fn bucket_value(idx: usize) -> f64 {
    1.5 * 2.0f64.powi(BUCKET_EXP_MIN + idx as i32)
}

/// A streaming summary of recorded samples: count, sum, min, max and a
/// fixed log-bucketed distribution for p50/p90/p99 quantiles.
///
/// Lock-free and allocation-free on the record path; see the module docs
/// for the exact determinism guarantees. Quantiles are exact to within one
/// power-of-two bucket (≤ 50% relative error), which is the right fidelity
/// for SLO-style latency reporting.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// `f64` bit pattern, updated by CAS (`fetch_update`) so concurrent adds
    /// are never lost.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Per-bucket sample counts (finite samples only), keyed by binary
    /// exponent — see [`bucket_index`].
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample. Non-finite samples are counted but excluded from
    /// sum/min/max/quantiles so one NaN cannot poison the summary.
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            return;
        }
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then_some(v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then_some(v.to_bits())
            });
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// A consistent-enough point-in-time summary (each field is read
    /// atomically; fields may straddle a concurrent record).
    #[must_use]
    pub fn stats(&self) -> HistogramStats {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let buckets: [u64; N_BUCKETS] =
            std::array::from_fn(|i| self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed)));
        let quantile = |q: f64| quantile_from_buckets(&buckets, q);
        HistogramStats {
            count,
            sum,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The representative value of the bucket containing the `ceil(q·n)`-th
/// smallest bucketed sample (0.0 when no finite sample was recorded).
fn quantile_from_buckets(buckets: &[u64; N_BUCKETS], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (idx, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_value(idx);
        }
    }
    bucket_value(N_BUCKETS - 1)
}

/// Point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of the finite samples.
    pub sum: f64,
    /// Smallest finite sample (0.0 when none).
    pub min: f64,
    /// Largest finite sample (0.0 when none).
    pub max: f64,
    /// Median, as the representative of its log bucket (0.0 when empty).
    pub p50: f64,
    /// 90th percentile, bucket-representative (0.0 when empty).
    pub p90: f64,
    /// 99th percentile, bucket-representative (0.0 when empty).
    pub p99: f64,
}

impl HistogramStats {
    /// Mean of the finite samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One family of named instruments. Instruments are allocated once and
/// leaked, so the returned `&'static` handles can be hoisted out of hot
/// loops and used without any registry lookup.
struct Family<T: Default + 'static> {
    map: Mutex<HashMap<String, &'static T>>,
}

impl<T: Default + 'static> Family<T> {
    fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, name: &str) -> &'static T {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(v) = map.get(name) {
            return v;
        }
        let leaked: &'static T = Box::leak(Box::new(T::default()));
        map.insert(name.to_string(), leaked);
        leaked
    }

    fn sorted(&self) -> Vec<(String, &'static T)> {
        let map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut v: Vec<(String, &'static T)> = map.iter().map(|(k, &t)| (k.clone(), t)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn for_each(&self, f: impl Fn(&T)) {
        for (_, t) in self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            f(t);
        }
    }
}

struct Registry {
    counters: Family<Counter>,
    gauges: Family<Gauge>,
    histograms: Family<Histogram>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Family::new(),
        gauges: Family::new(),
        histograms: Family::new(),
    })
}

/// The counter registered under `name` (created on first use).
#[must_use]
pub fn counter(name: &str) -> &'static Counter {
    registry().counters.get(name)
}

/// The gauge registered under `name` (created on first use).
#[must_use]
pub fn gauge(name: &str) -> &'static Gauge {
    registry().gauges.get(name)
}

/// The histogram registered under `name` (created on first use).
#[must_use]
pub fn histogram(name: &str) -> &'static Histogram {
    registry().histograms.get(name)
}

/// Zeroes every registered instrument (names stay registered). Intended for
/// tests and benchmark harnesses that want per-section snapshots.
pub fn reset() {
    let r = registry();
    r.counters.for_each(Counter::reset);
    r.gauges.for_each(Gauge::reset);
    r.histograms.for_each(Histogram::reset);
}

/// A point-in-time copy of every registered instrument, sorted by name.
///
/// This is the machine-readable export threaded into `VerificationReport`
/// and the `bench_core` output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stats)` pairs, name-sorted.
    pub histograms: Vec<(String, HistogramStats)>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0.0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
    }

    /// The counter total under `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram stats under `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{"name":{"count":…}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", crate::sink::json_string(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{}",
                crate::sink::json_string(name),
                crate::sink::json_number(*v)
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                crate::sink::json_string(name),
                h.count,
                crate::sink::json_number(h.sum),
                crate::sink::json_number(h.min),
                crate::sink::json_number(h.max),
                crate::sink::json_number(h.mean()),
                crate::sink::json_number(h.p50),
                crate::sink::json_number(h.p90),
                crate::sink::json_number(h.p99),
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let live_counters: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        let live_hists: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if live_counters.is_empty() && live_hists.is_empty() && live_gauges.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        if !live_hists.is_empty() {
            writeln!(
                f,
                "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "timer/histogram", "count", "mean", "min", "max", "p50", "p99"
            )?;
            for (name, h) in live_hists {
                writeln!(
                    f,
                    "{name:<28} {:>9} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                    h.p50,
                    h.p99
                )?;
            }
        }
        for (name, v) in live_counters {
            writeln!(f, "{name:<28} {v:>9}")?;
        }
        for (name, v) in live_gauges {
            writeln!(f, "{name:<28} {v:>9.4e}")?;
        }
        Ok(())
    }
}

/// Takes a [`MetricsSnapshot`] of every registered instrument.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .sorted()
            .into_iter()
            .map(|(n, c)| (n, c.get()))
            .collect(),
        gauges: r
            .gauges
            .sorted()
            .into_iter()
            .map(|(n, g)| (n, g.get()))
            .collect(),
        histograms: r
            .histograms
            .sorted()
            .into_iter()
            .map(|(n, h)| (n, h.stats()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = counter("test.metrics.counter_accumulates");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
    }

    #[test]
    fn same_name_same_instrument() {
        let a = counter("test.metrics.same_name");
        let b = counter("test.metrics.same_name");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_stats_track_samples() {
        let h = histogram("test.metrics.hist");
        for v in [2.0, 8.0, 4.0] {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert!((s.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_non_finite_values_in_summary() {
        let h = histogram("test.metrics.hist_nan");
        h.record(f64::NAN);
        h.record(1.0);
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.sum, 1.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        counter("test.snap.b").inc();
        counter("test.snap.a").add(2);
        histogram("test.snap.h").record(3.0);
        let s = snapshot();
        let names: Vec<&String> = s.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(s.counter("test.snap.a").unwrap() >= 2);
        assert!(s.histogram("test.snap.h").unwrap().count >= 1);
        assert!(s.counter("test.snap.missing").is_none());
        assert!(!s.is_empty());
    }

    #[test]
    fn quantiles_track_log_buckets() {
        let h = histogram("test.metrics.quantiles");
        // 100 samples: 89 at ~1e-3, 10 at ~1e-1, 1 at ~10.0 — p50 must sit
        // in the small band, p90 on its boundary rank, p99 in the middle
        // band, and everything within one log2 bucket (factor of 2).
        for _ in 0..89 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1e-1);
        }
        h.record(10.0);
        let s = h.stats();
        let within = |got: f64, want: f64| got >= want / 2.0 && got <= want * 2.0;
        assert!(within(s.p50, 1e-3), "p50 {} vs 1e-3", s.p50);
        assert!(within(s.p90, 1e-1), "p90 {} vs 1e-1", s.p90);
        assert!(within(s.p99, 1e-1), "p99 {} vs 1e-1", s.p99);
    }

    #[test]
    fn quantiles_handle_edge_samples() {
        let h = histogram("test.metrics.quantile_edges");
        assert_eq!(h.stats().p50, 0.0, "empty histogram quantile is 0");
        h.record(0.0);
        h.record(f64::NAN); // counted, never bucketed
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert!(
            s.p50 > 0.0 && s.p50 < 1e-11,
            "zero lands in the bottom bucket: {}",
            s.p50
        );
        // A sample far above the covered range clamps to the top bucket.
        h.record(1e30);
        assert!(h.stats().p99 > 1e6);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let values = [0.0, 1e-12, 1e-6, 1e-3, 1.0, 1e3, 1e6, 1e9];
        let idx: Vec<usize> = values.iter().map(|&v| bucket_index(v)).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted, "log buckets must preserve order: {idx:?}");
        assert!(bucket_value(1) > bucket_value(0));
    }

    #[test]
    fn snapshot_json_is_parseable() {
        counter("test.snap_json.c").inc();
        histogram("test.snap_json.h").record(0.5);
        let json = snapshot().to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        let obj = v.as_object().expect("top-level object");
        assert!(obj.iter().any(|(k, _)| k == "counters"));
        assert!(obj.iter().any(|(k, _)| k == "histograms"));
        let h = v
            .get("histograms")
            .and_then(|h| h.get("test.snap_json.h"))
            .expect("recorded histogram present");
        for q in ["p50", "p90", "p99"] {
            assert!(
                h.get(q).and_then(|v| v.as_number()).is_some(),
                "snapshot histogram missing {q}"
            );
        }
    }

    #[test]
    fn empty_display_mentions_nothing_recorded() {
        let s = MetricsSnapshot::default();
        assert!(s.to_string().contains("no metrics recorded"));
    }
}
