//! Observability invariants at workspace level.
//!
//! The central promise of `dwv-obs` is that instrumentation is *pure
//! observation*: turning tracing on must not change a single bit of any
//! verdict, flowpipe, learned parameter or RNG draw. These tests run the
//! same computations with tracing off and on and demand bit-identity, and
//! check that the metrics that ride along (worker-pool counters, report
//! snapshots) are complete and consistent.
//!
//! The enabled flag is process-global, so every test that toggles it holds
//! [`obs_lock`] for its whole body.

use design_while_verify::core::{assess, Algorithm1, LearnConfig, MetricKind, WorkerPool};
use design_while_verify::dynamics::{acc, oscillator, Controller, LinearController, NnController};
use design_while_verify::interval::IntervalBox;
use design_while_verify::nn::{Activation, Network};
use design_while_verify::obs;
use design_while_verify::reach::{Flowpipe, LinearReach, TaylorAbstraction, TaylorReach};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the global enabled flag or install a sink.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A `Write` sink that discards everything (the trace content is not under
/// test here, only its side effects — or lack thereof).
struct NullSink;

impl std::io::Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn learn_acc() -> (String, Vec<f64>, usize) {
    let problem = acc::reach_avoid_problem();
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(200)
        .seed(7)
        .build();
    let outcome = Algorithm1::new(problem, config)
        .learn_linear()
        .expect("ACC is affine");
    (
        outcome.verified.to_string(),
        outcome.controller.params().to_vec(),
        outcome.iterations,
    )
}

#[test]
fn learning_is_bit_identical_with_tracing_on() {
    let _g = obs_lock();
    obs::shutdown();
    let off = learn_acc();

    obs::init_jsonl_writer(Box::new(NullSink));
    let on = learn_acc();
    obs::shutdown();

    assert_eq!(off.0, on.0, "verdict changed under tracing");
    // Bit-identity, not approximate equality: the learned gains must match
    // to the last ulp, or instrumentation perturbed the computation.
    assert_eq!(off.1, on.1, "learned gains changed under tracing");
    assert_eq!(off.2, on.2, "iteration count changed under tracing");
}

fn taylor_flowpipe(scale: f64) -> Result<Flowpipe, design_while_verify::reach::ReachError> {
    let problem = oscillator::reach_avoid_problem();
    let net = Network::new(&[2, 8, 1], Activation::Tanh, Activation::Tanh, 3);
    let controller = NnController::with_output_scale(net, scale);
    TaylorReach::new(
        &problem,
        TaylorAbstraction::with_order(2),
        Default::default(),
    )
    .reach_from(&problem.x0, &controller)
}

#[test]
fn taylor_flowpipe_is_bit_identical_with_tracing_on() {
    let _g = obs_lock();
    obs::shutdown();
    // A tame controller (contained flowpipe, exercising the per-step
    // remainder instrumentation) and a wild one (divergence path, exercising
    // the Picard retry/divergence accounting).
    for scale in [0.1, 10.0] {
        let off = taylor_flowpipe(scale);

        obs::init_jsonl_writer(Box::new(NullSink));
        let on = taylor_flowpipe(scale);
        obs::shutdown();

        // Derived PartialEq compares every step's Taylor models and interval
        // bounds (or the divergence step and final radius) bit-exactly.
        assert_eq!(off, on, "scale {scale}: flowpipe changed under tracing");
    }
}

#[test]
fn learning_trace_is_identical_with_tracing_on() {
    let _g = obs_lock();
    obs::shutdown();
    let problem = acc::reach_avoid_problem();
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(200)
        .seed(7)
        .build();
    let run = || {
        Algorithm1::new(problem.clone(), config.clone())
            .learn_linear()
            .expect("ACC is affine")
            .trace
    };
    let off = run();
    obs::init_jsonl_writer(Box::new(NullSink));
    let on = run();
    obs::shutdown();

    // Everything except wall-clock time must agree record-by-record
    // (timings legitimately differ between runs).
    assert_eq!(off.len(), on.len());
    for (a, b) in off.records().iter().zip(on.records()) {
        let mut b = b.clone();
        b.elapsed = a.elapsed;
        assert_eq!(*a, b, "iteration {} diverged under tracing", a.iteration);
    }
}

#[test]
fn worker_pool_metrics_lose_no_items_under_concurrency() {
    let _g = obs_lock();
    obs::shutdown();
    obs::reset();
    obs::init_jsonl_writer(Box::new(NullSink));

    let pool = WorkerPool::new(4);
    let items: Vec<u64> = (0..997).collect();
    let out = pool.map(&items, |&x| x * 2);
    obs::shutdown();

    assert_eq!(out.len(), items.len());
    // Results stay in input order regardless of worker interleaving …
    assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    // … and the per-item span histogram saw every item exactly once.
    let snap = obs::snapshot();
    assert_eq!(snap.counter("pool.items"), Some(997));
    assert_eq!(snap.counter("pool.batches"), Some(1));
    let per_item = snap.histogram("pool.item").expect("pool.item histogram");
    assert_eq!(per_item.count, 997);
    let batch = snap.histogram("pool.map").expect("pool.map histogram");
    assert_eq!(batch.count, 1);
}

#[test]
fn report_carries_metrics_snapshot_when_tracing() {
    let _g = obs_lock();
    obs::shutdown();
    obs::reset();

    let problem = acc::reach_avoid_problem();
    let controller = LinearController::new(2, 1, vec![0.818, -2.94]);
    let (a, b, c) = problem.dynamics.linear_parts().expect("affine");
    let delta = problem.delta;
    let steps = problem.horizon_steps;
    let run = |ctrl: LinearController| {
        let (a, b, c) = (a.clone(), b.clone(), c.clone());
        let oracle_ctrl = ctrl.clone();
        assess(&problem, &ctrl, move |cell: &IntervalBox| {
            LinearReach::new(&a, &b, &c, cell.clone(), delta, steps).reach(&oracle_ctrl)
        })
    };

    // Tracing off: the report carries no snapshot.
    let off = run(controller.clone());
    assert!(off.metrics.is_none(), "snapshot attached while disabled");

    obs::init_jsonl_writer(Box::new(NullSink));
    let on = run(controller);
    obs::shutdown();

    // Same verdict either way, and the traced report breaks down its cost.
    assert_eq!(off.verdict.to_string(), on.verdict.to_string());
    let snap = on.metrics.as_ref().expect("snapshot attached");
    for phase in ["verify", "simulate"] {
        let h = snap
            .histogram(phase)
            .unwrap_or_else(|| panic!("missing {phase} phase timing"));
        assert!(h.count >= 1, "{phase} never timed");
    }
    assert!(on.to_string().contains("cost breakdown"));
}
