//! Cross-crate soundness: every verifier's flowpipe must contain every
//! simulated trajectory — the property Theorem 2 rests on, exercised across
//! systems, controllers and abstractions.

use design_while_verify::dynamics::{
    acc, oscillator, simulate::Simulator, three_dim, LinearController, NnController,
    ReachAvoidProblem,
};
use design_while_verify::nn::{Activation, Network};
use design_while_verify::reach::{
    BernsteinAbstraction, DependencyTracking, Flowpipe, LinearReach, TaylorAbstraction,
    TaylorReach, TaylorReachConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_contains_simulations(
    problem: &ReachAvoidProblem,
    fp: &Flowpipe,
    controller: &dyn design_while_verify::dynamics::Controller,
    samples: usize,
    tol: f64,
) {
    let sim = Simulator::new(problem.dynamics.clone(), problem.delta);
    let mut rng = StdRng::seed_from_u64(0x50DA);
    for _ in 0..samples {
        let x0: Vec<f64> = (0..problem.x0.dim())
            .map(|i| {
                let iv = problem.x0.interval(i);
                rng.gen_range(iv.lo()..=iv.hi())
            })
            .collect();
        let traj = sim.rollout(&x0, controller, fp.len() - 1);
        for (k, x) in traj.states.iter().enumerate() {
            let enc = fp.steps()[k].enclosure.inflate(tol);
            assert!(
                enc.contains_point(x),
                "step {k}: simulated state {x:?} outside {enc}"
            );
        }
    }
}

#[test]
fn linear_verifier_contains_simulations() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    for gains in [[0.5867, -2.0], [0.8533, -3.0], [0.1, -0.5]] {
        let k = LinearController::new(2, 1, gains.to_vec());
        let fp = v.reach(&k).expect("finite recursion");
        assert_contains_simulations(&p, &fp, &k, 10, 1e-6);
    }
}

#[test]
fn taylor_verifier_polar_contains_simulations_oscillator() {
    let mut p = oscillator::reach_avoid_problem();
    p.horizon_steps = 10;
    for seed in [1, 9, 33] {
        let ctrl = NnController::new(Network::new(
            &[2, 8, 1],
            Activation::ReLU,
            Activation::Tanh,
            seed,
        ));
        let v = TaylorReach::new(
            &p,
            TaylorAbstraction::with_order(2),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        );
        let fp = v.reach(&ctrl).expect("verifies");
        assert_contains_simulations(&p, &fp, &ctrl, 8, 1e-7);
    }
}

#[test]
fn taylor_verifier_bernstein_contains_simulations_oscillator() {
    let mut p = oscillator::reach_avoid_problem();
    p.horizon_steps = 6;
    let ctrl = NnController::new(Network::new(
        &[2, 8, 1],
        Activation::ReLU,
        Activation::Tanh,
        5,
    ));
    let v = TaylorReach::new(
        &p,
        BernsteinAbstraction::default(),
        TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        },
    );
    let fp = v.reach(&ctrl).expect("verifies");
    assert_contains_simulations(&p, &fp, &ctrl, 8, 1e-7);
}

#[test]
fn taylor_verifier_contains_simulations_three_dim() {
    let mut p = three_dim::reach_avoid_problem();
    p.horizon_steps = 6;
    let ctrl = NnController::with_output_scale(
        Network::new(&[3, 8, 1], Activation::ReLU, Activation::Tanh, 4),
        2.0,
    );
    let v = TaylorReach::new(
        &p,
        TaylorAbstraction::with_order(2),
        TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        },
    );
    let fp = v.reach(&ctrl).expect("verifies");
    assert_contains_simulations(&p, &fp, &ctrl, 8, 1e-7);
}

#[test]
fn symbolic_mode_contains_simulations() {
    let mut p = oscillator::reach_avoid_problem();
    p.horizon_steps = 8;
    let ctrl = NnController::new(Network::new(
        &[2, 8, 1],
        Activation::ReLU,
        Activation::Tanh,
        21,
    ));
    let v = TaylorReach::new(
        &p,
        TaylorAbstraction::with_order(2),
        TaylorReachConfig::default(),
    );
    let fp = v.reach(&ctrl).expect("verifies");
    assert_contains_simulations(&p, &fp, &ctrl, 8, 1e-7);
}
