//! Integration tests for the continuous-time sweep enclosures and the
//! disturbance-robust zonotope verifier.

use design_while_verify::core::{Algorithm1, LearnConfig, MetricKind};
use design_while_verify::dynamics::{acc, simulate::Simulator, Controller, LinearController};
use design_while_verify::interval::IntervalBox;
use design_while_verify::metrics::GeometricMetric;
use design_while_verify::reach::{LinearReach, ZonotopeReach};

/// The sweep enclosures must contain fine-grained simulation states at all
/// sub-step times, not only at the sampling instants.
#[test]
fn linear_sweep_contains_intersample_states() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
    let fp = v.reach(&k).unwrap();
    let sim = Simulator::with_substeps(p.dynamics.clone(), p.delta, 10);
    for x0 in [[122.0, 48.0], [124.0, 52.0], [123.0, 50.3]] {
        let traj = sim.rollout(&x0, &k, p.horizon_steps);
        // fine_states[k*10 + j] is within step k+1's period for j in 1..=10.
        for (idx, x) in traj.fine_states.iter().enumerate().skip(1) {
            let step = idx.div_ceil(10); // 1-based control step covering idx
            let enc = fp.steps()[step].enclosure.inflate(1e-6);
            assert!(
                enc.contains_point(x),
                "sub-step {idx} (step {step}): {x:?} outside sweep {enc}"
            );
        }
    }
}

/// The chord sweep must be tight: only marginally larger than the hull of
/// the adjacent exact sets for the smooth ACC dynamics.
#[test]
fn sweep_is_tight_for_acc() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
    let fp = v.reach(&k).unwrap();
    for w in fp.steps().windows(2).take(20) {
        let hull = w[0].end_box.hull(&w[1].end_box);
        let sweep = &w[1].enclosure;
        // Sweep covers the hull…
        assert!(sweep.inflate(1e-9).contains(&hull));
        // …and is at most a sliver larger (second-order in δ = 0.1).
        for i in 0..2 {
            assert!(
                sweep.interval(i).width() <= hull.interval(i).width() + 0.15,
                "dim {i}: sweep {} much wider than hull {}",
                sweep.interval(i),
                hull.interval(i)
            );
        }
    }
}

/// The whole pipeline remains correct with sweeps: a learned ACC controller
/// still verifies reach-avoid and the metric agrees.
#[test]
fn learning_still_converges_with_sweeps() {
    let outcome = Algorithm1::new(
        acc::reach_avoid_problem(),
        LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(200)
            .seed(5)
            .build(),
    )
    .learn_linear()
    .unwrap();
    assert!(outcome.verified.is_reach_avoid());
    let d = GeometricMetric::for_problem(&acc::reach_avoid_problem())
        .evaluate(outcome.flowpipe.as_ref().unwrap());
    assert!(d.is_reach_avoid());
}

/// Robust verification: with disturbance the verifier's verdict can flip to
/// not-provably-safe exactly when the clearance margin is exceeded.
#[test]
fn robust_verdict_degrades_monotonically_with_disturbance() {
    let p = acc::reach_avoid_problem();
    let k = LinearController::new(2, 1, vec![0.8533, -3.0]);
    let metric = GeometricMetric::for_problem(&p);
    let mut last_du = f64::INFINITY;
    for mag in [0.0, 0.01, 0.05, 0.1] {
        let v = ZonotopeReach::for_problem(&p)
            .unwrap()
            .with_disturbance(IntervalBox::from_bounds(&[(-mag, mag), (-mag, mag)]));
        let fp = v.reach(&k).unwrap();
        let d = metric.evaluate(&fp);
        assert!(
            d.d_unsafe <= last_du + 1e-9,
            "safety margin must shrink with disturbance"
        );
        last_du = d.d_unsafe;
    }
}

/// Zonotope and vertex recursions agree on the undisturbed problem.
#[test]
fn zonotope_agrees_with_vertex_recursion() {
    let p = acc::reach_avoid_problem();
    let k = LinearController::new(2, 1, vec![0.5, -2.5]);
    let fz = ZonotopeReach::for_problem(&p).unwrap().reach(&k).unwrap();
    let fl = LinearReach::for_problem(&p).unwrap().reach(&k).unwrap();
    assert_eq!(fz.len(), fl.len());
    for (a, b) in fz.steps().iter().zip(fl.steps()) {
        assert!(a.end_box.inflate(1e-6).contains(&b.end_box));
        assert!(b.end_box.inflate(1e-6).contains(&a.end_box));
    }
    let _ = k.params();
}
