//! Property-based tests (proptest) on the substrate invariants the
//! verifiers depend on.

use design_while_verify::geom::{ConvexPolygon, HalfPlane, Vec2};
use design_while_verify::interval::{Interval, IntervalBox};
use design_while_verify::metrics::ot;
use design_while_verify::poly::Polynomial;
use design_while_verify::taylor::{unit_domain, TaylorModel};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn interval() -> impl Strategy<Value = Interval> {
    (small_f64(), 0.0..10.0f64).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interval addition encloses all pairwise sums of member values.
    #[test]
    fn interval_add_encloses(a in interval(), b in interval(), ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let x = a.lo() + ta * a.width();
        let y = b.lo() + tb * b.width();
        prop_assert!((a + b).contains_value(x + y));
    }

    /// Interval multiplication encloses all pairwise products.
    #[test]
    fn interval_mul_encloses(a in interval(), b in interval(), ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let x = a.lo() + ta * a.width();
        let y = b.lo() + tb * b.width();
        prop_assert!((a * b).contains_value(x * y));
    }

    /// Square enclosure is never negative and contains member squares.
    #[test]
    fn interval_sqr_encloses(a in interval(), t in 0.0..1.0f64) {
        let x = a.lo() + t * a.width();
        let s = a.sqr();
        prop_assert!(s.lo() >= -1e-9);
        prop_assert!(s.contains_value(x * x));
    }

    /// exp/tanh enclosures contain sampled images.
    #[test]
    fn transcendental_enclosures(a in interval(), t in 0.0..1.0f64) {
        let x = a.lo() + t * a.width();
        prop_assert!(a.exp().contains_value(x.exp()));
        prop_assert!(a.tanh().contains_value(x.tanh()));
        prop_assert!(a.sigmoid().contains_value(1.0 / (1.0 + (-x).exp())));
    }

    /// Hull contains both operands; intersection is contained in both.
    #[test]
    fn interval_lattice_laws(a in interval(), b in interval()) {
        let h = a.hull(&b);
        prop_assert!(h.contains(&a) && h.contains(&b));
        if let Some(ix) = a.intersection(&b) {
            prop_assert!(a.contains(&ix) && b.contains(&ix));
        }
    }

    /// Box bisection partitions exactly (hull restores, volumes sum).
    #[test]
    fn box_bisect_partitions(lo0 in small_f64(), lo1 in small_f64(), w0 in 0.1..5.0f64, w1 in 0.1..5.0f64, dim in 0usize..2) {
        let b = IntervalBox::from_bounds(&[(lo0, lo0 + w0), (lo1, lo1 + w1)]);
        let (l, r) = b.bisect(dim);
        prop_assert_eq!(l.hull(&r), b.clone());
        prop_assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-9 * b.volume().max(1.0));
    }

    /// Polygon intersection area never exceeds either operand's area.
    #[test]
    fn polygon_intersection_area_bound(
        ax in -5.0..5.0f64, ay in -5.0..5.0f64, aw in 0.5..4.0f64, ah in 0.5..4.0f64,
        bx in -5.0..5.0f64, by in -5.0..5.0f64, bw in 0.5..4.0f64, bh in 0.5..4.0f64,
    ) {
        let a = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(ax, ax + aw), (ay, ay + ah)]));
        let b = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(bx, bx + bw), (by, by + bh)]));
        if let Some(ix) = a.intersect(&b) {
            prop_assert!(ix.area() <= a.area() + 1e-9);
            prop_assert!(ix.area() <= b.area() + 1e-9);
            // The intersection is inside both.
            for v in ix.vertices() {
                prop_assert!(a.contains_point(*v));
                prop_assert!(b.contains_point(*v));
            }
        }
    }

    /// Half-plane clipping keeps exactly the satisfying part.
    #[test]
    fn polygon_clip_subset(cx in -3.0..3.0f64, c in -3.0..3.0f64) {
        let p = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]));
        let hp = HalfPlane::new([cx.max(0.1), 1.0], c);
        if let Some(clipped) = p.clip_halfplane(&hp) {
            prop_assert!(clipped.area() <= p.area() + 1e-9);
            prop_assert!(hp.signed_slack(clipped.centroid()) >= -1e-9);
        }
    }

    /// Polynomial evaluation is compatible with ring operations.
    #[test]
    fn poly_ring_compatible(a0 in small_f64(), a1 in small_f64(), b0 in small_f64(), b1 in small_f64(), x in -3.0..3.0f64, y in -3.0..3.0f64) {
        let p = Polynomial::constant(2, a0) + Polynomial::var(2, 0).scale(a1);
        let q = Polynomial::constant(2, b0) + Polynomial::var(2, 1).scale(b1);
        let pt = [x, y];
        let sum = p.clone() + q.clone();
        let prod = p.clone() * q.clone();
        prop_assert!((sum.eval(&pt) - (p.eval(&pt) + q.eval(&pt))).abs() < 1e-9);
        prop_assert!((prod.eval(&pt) - p.eval(&pt) * q.eval(&pt)).abs() < 1e-9);
    }

    /// Interval evaluation of polynomials encloses point evaluation.
    #[test]
    fn poly_interval_eval_encloses(c0 in small_f64(), c1 in small_f64(), c2 in small_f64(), t in -1.0..1.0f64) {
        let p = Polynomial::from_terms(1, vec![
            (vec![0], c0), (vec![1], c1), (vec![2], c2),
        ]);
        let enc = p.eval_interval(&unit_domain(1));
        prop_assert!(enc.inflate(1e-9).contains_value(p.eval(&[t])));
    }

    /// Bernstein range enclosure contains sampled polynomial values.
    #[test]
    fn bernstein_enclosure_sound(c0 in small_f64(), c1 in small_f64(), c2 in small_f64(), c3 in small_f64(), t in -1.0..1.0f64) {
        let p = Polynomial::from_terms(1, vec![
            (vec![0], c0), (vec![1], c1), (vec![2], c2), (vec![3], c3),
        ]);
        let dom = IntervalBox::from_bounds(&[(-1.0, 1.0)]);
        let enc = design_while_verify::poly::bernstein::range_enclosure(&p, &dom);
        prop_assert!(enc.inflate(1e-6).contains_value(p.eval(&[t])));
    }

    /// Taylor-model multiplication encloses the function product.
    #[test]
    fn tm_mul_encloses(a0 in -2.0..2.0f64, a1 in -2.0..2.0f64, r in 0.0..0.2f64, t in -1.0..1.0f64, d in -1.0..1.0f64) {
        let dom = unit_domain(1);
        let p = TaylorModel::new(
            Polynomial::constant(1, a0) + Polynomial::var(1, 0).scale(a1),
            Interval::symmetric(r),
        );
        let q = TaylorModel::var(1, 0);
        let prod = p.mul(&q, 4, &dom);
        // Sample a function in p's set: p(t) + d*r, times q(t) = t.
        let truth = (a0 + a1 * t + d * r) * t;
        prop_assert!(prod.eval(&[t]).inflate(1e-9).contains_value(truth));
    }

    /// Hungarian total cost is a lower bound on any greedy assignment cost
    /// and equal for permuted identity matrices.
    #[test]
    fn hungarian_optimality(perm_seed in 0u64..24) {
        // Build a permuted-identity-favoring cost matrix.
        let n = 4;
        let perm: Vec<usize> = {
            let mut p: Vec<usize> = (0..n).collect();
            let mut s = perm_seed;
            for i in (1..n).rev() {
                let j = (s % (i as u64 + 1)) as usize;
                p.swap(i, j);
                s /= 7;
                s += 1;
            }
            p
        };
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if perm[i] == j { 1.0 } else { 10.0 }).collect())
            .collect();
        let (asg, total) = ot::hungarian(&cost);
        prop_assert_eq!(asg, perm);
        prop_assert!((total - n as f64).abs() < 1e-9);
    }

    /// Segment distance is symmetric in the segment's endpoints.
    #[test]
    fn segment_distance_symmetric(px in small_f64(), py in small_f64(), ax in small_f64(), ay in small_f64(), bx in small_f64(), by in small_f64()) {
        let p = Vec2::new(px, py);
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let d1 = p.distance_to_segment(a, b);
        let d2 = p.distance_to_segment(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 <= p.distance(a) + 1e-9);
    }
}
