//! End-to-end pipeline test on the ACC benchmark: Algorithm 1 learns a
//! linear gain with the exact verifier in the loop, Algorithm 2 certifies
//! an initial set, and 500 simulated rollouts confirm the empirical rates —
//! the full Table-1 row for "Ours(G/W, Flow*)".

use design_while_verify::core::{
    Algorithm1, Algorithm2, GradientEstimator, LearnConfig, MetricKind,
};
use design_while_verify::dynamics::{acc, eval::rates};
use design_while_verify::reach::LinearReach;

fn run(metric: MetricKind, seed: u64) {
    let problem = acc::reach_avoid_problem();
    let config = LearnConfig::builder()
        .metric(metric)
        .max_updates(200)
        .perturbation(0.01)
        .estimator(GradientEstimator::Coordinate)
        .seed(seed)
        .build();
    let outcome = Algorithm1::new(problem.clone(), config)
        .learn_linear()
        .expect("ACC is affine");
    assert!(
        outcome.verified.is_reach_avoid(),
        "{metric} seed {seed}: {} after {} iterations",
        outcome.verified,
        outcome.iterations
    );

    // Empirical rates must be perfect, as in Table 1.
    let r = rates(&problem, &outcome.controller, 500, 42);
    assert_eq!(r.safe_rate, 1.0, "SC below 100%");
    assert_eq!(r.goal_rate, 1.0, "GR below 100%");

    // Algorithm 2 certifies (nearly) all of X0, as the paper reports
    // (X_I = X0 in Fig. 6).
    let (a, b, c) = problem.dynamics.linear_parts().expect("affine");
    let controller = outcome.controller.clone();
    let search = Algorithm2::new(&problem).with_max_rounds(4).search(|cell| {
        LinearReach::new(
            &a,
            &b,
            &c,
            cell.clone(),
            problem.delta,
            problem.horizon_steps,
        )
        .reach(&controller)
    });
    assert!(
        search.coverage > 0.9,
        "{metric}: X_I coverage only {:.1}%",
        search.coverage * 100.0
    );
}

#[test]
fn acc_geometric_full_pipeline() {
    run(MetricKind::Geometric, 7);
}

#[test]
fn acc_wasserstein_full_pipeline() {
    run(MetricKind::Wasserstein, 7);
}

#[test]
fn acc_geometric_other_seed() {
    run(MetricKind::Geometric, 21);
}
