//! Cross-metric consistency: the geometric and Wasserstein metrics must
//! agree on the reach-avoid feasibility of the same flowpipes, and the
//! verdict logic must match both.

use design_while_verify::core::judge;
use design_while_verify::dynamics::{acc, LinearController};
use design_while_verify::metrics::{GeometricMetric, WassersteinMetric};
use design_while_verify::reach::LinearReach;

#[test]
fn metrics_agree_on_good_controller() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
    let fp = v.reach(&k).unwrap();
    let g = GeometricMetric::for_problem(&p).evaluate(&fp);
    let w = WassersteinMetric::for_problem(&p).evaluate(&fp);
    assert!(g.is_reach_avoid(), "geometric disagrees: {g:?}");
    assert!(w.is_reach_avoid(), "wasserstein disagrees: {w:?}");
    // The verdict follows.
    assert!(judge(&p, &k, &Ok(fp), 100, 1).is_reach_avoid());
}

#[test]
fn metrics_agree_on_unsafe_controller() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let k = LinearController::zeros(2, 1);
    let fp = v.reach(&k).unwrap();
    let g = GeometricMetric::for_problem(&p).evaluate(&fp);
    let w = WassersteinMetric::for_problem(&p).evaluate(&fp);
    assert!(!g.is_reach_avoid());
    assert!(
        g.d_unsafe <= 0.0,
        "uncontrolled ACC must hit the unsafe set"
    );
    assert!(w.intersects_unsafe);
    assert_eq!(judge(&p, &k, &Ok(fp), 100, 1).to_string(), "Unsafe");
}

#[test]
fn wasserstein_orders_candidates_like_geometric() {
    // Controllers strictly closer to the goal at the end of the horizon
    // should have smaller W(r, g) and larger (less negative) d^g.
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let near = LinearController::new(2, 1, vec![0.55, -2.0]);
    let far = LinearController::new(2, 1, vec![0.3, -2.0]);
    let fp_near = v.reach(&near).unwrap();
    let fp_far = v.reach(&far).unwrap();
    let gm = GeometricMetric::for_problem(&p);
    let wm = WassersteinMetric::for_problem(&p);
    let (gn, gf) = (gm.evaluate(&fp_near), gm.evaluate(&fp_far));
    let (wn, wf) = (wm.evaluate(&fp_near), wm.evaluate(&fp_far));
    assert!(gn.d_goal > gf.d_goal, "geometric: {gn:?} vs {gf:?}");
    assert!(wn.w_goal < wf.w_goal, "wasserstein: {wn:?} vs {wf:?}");
}

#[test]
fn safety_distance_positive_iff_no_unsafe_intersection() {
    let p = acc::reach_avoid_problem();
    let v = LinearReach::for_problem(&p).unwrap();
    let gm = GeometricMetric::for_problem(&p);
    let wm = WassersteinMetric::for_problem(&p);
    for gains in [[0.5867, -2.0], [0.0, 0.0], [0.3, -1.0], [1.6533, -6.0]] {
        let k = LinearController::new(2, 1, gains.to_vec());
        let fp = v.reach(&k).unwrap();
        let g = gm.evaluate(&fp);
        let w = wm.evaluate(&fp);
        assert_eq!(
            g.d_unsafe > 0.0,
            !w.intersects_unsafe,
            "metrics disagree on safety for gains {gains:?}"
        );
    }
}
