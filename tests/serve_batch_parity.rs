//! Golden serve-vs-batch parity: the repro configurations for all three
//! benchmark problems, submitted over real loopback TCP, must produce
//! `VerificationReport` CSVs **byte-for-byte identical** to in-process
//! batch runs of the same code.
//!
//! This is the contract that makes `dwv-serve` trustworthy: serving adds
//! transport, queueing, batching, and per-tenant caching around the
//! verifier — none of which may perturb a single byte of the result.

use dwv_core::{assess, design_while_verify_linear, LearnConfig, MetricKind, PortfolioMode};
use dwv_dynamics::NnController;
use dwv_interval::IntervalBox;
use dwv_nn::{Activation, Network};
use dwv_reach::{TaylorAbstraction, TaylorReach};
use dwv_serve::job::{nn_verifier_config, problem_for};
use dwv_serve::{Client, Frame, JobKind, JobSpec, ProblemId, ServeConfig, Server};

fn serve_csv(server: &Server, tenant: u64, job_id: u64, spec: JobSpec) -> Vec<u8> {
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.submit(tenant, job_id, 0, spec).expect("submit");
    assert!(matches!(reply, Frame::Accepted { .. }), "{reply:?}");
    client
        .stream_result(tenant, job_id)
        .expect("stream result")
        .report_csv
        .expect("report-bearing job kind")
}

fn nn_repro_spec(problem: ProblemId, output_scale: f64) -> (JobSpec, Vec<f64>) {
    // The examples/ repro configuration: seed-3 untrained network, one
    // hidden layer of 8, POLAR order 2, box-reinit dependency tracking.
    let prob = problem_for(problem);
    let sizes = [prob.n_state(), 8, prob.n_input()];
    let net = Network::new(&sizes, Activation::ReLU, Activation::Tanh, 3);
    let params = net.params();
    (
        JobSpec {
            problem,
            kind: JobKind::AssessNn {
                hidden: vec![8],
                output_scale,
                order: 2,
                params: params.clone(),
            },
        },
        params,
    )
}

fn batch_nn_csv(problem: ProblemId, output_scale: f64, params: &[f64]) -> Vec<u8> {
    let prob = problem_for(problem);
    let sizes = [prob.n_state(), 8, prob.n_input()];
    let mut net = Network::new(&sizes, Activation::ReLU, Activation::Tanh, 3);
    net.set_params(params);
    let controller = NnController::with_output_scale(net, output_scale);
    let verifier = TaylorReach::new(
        &prob,
        TaylorAbstraction::with_order(2),
        nn_verifier_config(),
    );
    let report = assess(&prob, &controller, |cell: &IntervalBox| {
        verifier.reach_from(cell, &controller)
    });
    report.to_csv().into_bytes()
}

#[test]
fn acc_learn_linear_served_equals_batch() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    for (job_id, portfolio) in [(1u64, false), (2u64, true)] {
        let spec = JobSpec {
            problem: ProblemId::Acc,
            kind: JobKind::LearnLinear {
                seed: 42,
                max_updates: 25,
                portfolio,
            },
        };
        let served = serve_csv(&server, 0xACC, job_id, spec);

        let mut builder = LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(25)
            .seed(42);
        if portfolio {
            builder = builder.portfolio(PortfolioMode::Surrogate { confirm_every: 5 });
        }
        let outcome = design_while_verify_linear(problem_for(ProblemId::Acc), builder.build())
            .expect("batch learn");
        let batch = outcome.report.to_csv().into_bytes();
        assert_eq!(
            served,
            batch,
            "ACC LearnLinear (portfolio={portfolio}): served CSV differs from batch\nserved:\n{}\nbatch:\n{}",
            String::from_utf8_lossy(&served),
            String::from_utf8_lossy(&batch),
        );
        // Provenance rows must be present when learning through the
        // portfolio — the served path may not drop them.
        if portfolio {
            assert!(
                String::from_utf8_lossy(&served).contains("provenance,"),
                "portfolio run lost its provenance rows"
            );
        }
    }
    server.shutdown();
}

#[test]
fn van_der_pol_nn_served_equals_batch() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let (spec, params) = nn_repro_spec(ProblemId::VanDerPol, 1.0);
    let served = serve_csv(&server, 0xD9, 1, spec);
    let batch = batch_nn_csv(ProblemId::VanDerPol, 1.0, &params);
    assert_eq!(
        served,
        batch,
        "VdP AssessNn: served CSV differs from batch\nserved:\n{}\nbatch:\n{}",
        String::from_utf8_lossy(&served),
        String::from_utf8_lossy(&batch),
    );
    server.shutdown();
}

#[test]
fn three_dim_nn_served_equals_batch() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    // 3D repro adds nn_output_scale = 2.0.
    let (spec, params) = nn_repro_spec(ProblemId::ThreeDim, 2.0);
    let served = serve_csv(&server, 0x3D, 1, spec);
    let batch = batch_nn_csv(ProblemId::ThreeDim, 2.0, &params);
    assert_eq!(
        served,
        batch,
        "3D AssessNn: served CSV differs from batch\nserved:\n{}\nbatch:\n{}",
        String::from_utf8_lossy(&served),
        String::from_utf8_lossy(&batch),
    );
    server.shutdown();
}

#[test]
fn assess_linear_is_tenant_invariant_and_pool_width_invariant() {
    // One server; the same AssessLinear spec under three tenants and a
    // direct batch run must agree to the byte — the tenant cache shards
    // change *latency*, never *bytes*.
    let server = Server::start(ServeConfig {
        workers: 2,
        pool_threads: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let spec = JobSpec {
        problem: ProblemId::Acc,
        kind: JobKind::AssessLinear {
            gains: vec![0.5867, -2.0],
        },
    };
    let a = serve_csv(&server, 1, 1, spec.clone());
    let b = serve_csv(&server, 2, 1, spec.clone());
    let c = serve_csv(&server, 1, 2, spec.clone()); // warm-cache repeat
    assert_eq!(a, b, "tenant shard changed report bytes");
    assert_eq!(a, c, "cache hit changed report bytes");
    server.shutdown();

    // A second server at a different pool width serves the same bytes.
    let wide = Server::start(ServeConfig {
        workers: 2,
        pool_threads: 8,
        ..ServeConfig::default()
    })
    .expect("bind");
    let d = serve_csv(&wide, 1, 1, spec);
    assert_eq!(a, d, "pool width changed report bytes");
    wide.shutdown();
}
