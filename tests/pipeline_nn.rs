//! End-to-end NN pipeline on the 3-D benchmark (the fastest NN system):
//! one call learns, certifies and reports.

use design_while_verify::core::{
    design_while_verify_nn, AbstractionKind, GradientEstimator, LearnConfig, MetricKind,
};
use design_while_verify::reach::{DependencyTracking, TaylorReachConfig};

#[test]
fn three_dim_nn_pipeline_certifies() {
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(300)
        .perturbation(0.02)
        .estimator(GradientEstimator::Spsa { samples: 2 })
        .seed(3)
        .nn_hidden(vec![8])
        .nn_output_scale(2.0)
        .abstraction(AbstractionKind::Polar { order: 2 })
        .verifier(TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        })
        .build();
    let outcome = design_while_verify_nn(
        design_while_verify::dynamics::three_dim::reach_avoid_problem(),
        config,
    );
    assert!(
        outcome.learning.verified.is_reach_avoid(),
        "learning verdict: {}",
        outcome.learning.verified
    );
    assert!(outcome.is_certified(), "{}", outcome.report);
    let xi = outcome.report.initial_set.as_ref().expect("searched");
    assert!(xi.coverage > 0.2, "X_I coverage {:.2}", xi.coverage);
    // The learned controller also behaves empirically.
    assert!(outcome.report.rates.safe_rate >= 0.99);
    assert!(outcome.report.rates.goal_rate >= 0.95);
}
